//! Property tests on the evaluation protocol, spanning graph generation,
//! hold-out construction and metric computation.

use proptest::prelude::*;

use snaple::eval::{metrics, HoldOut};
use snaple::gas::RunStats;
use snaple::graph::gen;
use snaple::graph::{CsrGraph, VertexId};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn er_graph(n: usize, m: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::erdos_renyi(n, m, &mut rng).into_symmetric_graph()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn holdout_conserves_edges(seed in 0u64..10_000, per_vertex in 1usize..4) {
        let graph = er_graph(120, 500, seed);
        let h = HoldOut::remove_edges(&graph, per_vertex, seed);
        prop_assert_eq!(
            graph.num_edges(),
            h.train.num_edges() + h.num_removed()
        );
        prop_assert_eq!(graph.num_vertices(), h.train.num_vertices());
    }

    #[test]
    fn holdout_respects_min_degree(seed in 0u64..10_000) {
        let graph = er_graph(120, 400, seed);
        let h = HoldOut::remove_edges(&graph, 1, seed);
        for u in graph.vertices() {
            let removed = h.removed.get(&u).map_or(0, Vec::len);
            if graph.out_degree(u) < 4 {
                prop_assert_eq!(removed, 0, "vertex {} deg {}", u, graph.out_degree(u));
            } else {
                prop_assert_eq!(removed, 1);
                // Training keeps at least one out-edge.
                prop_assert!(h.train.out_degree(u) >= 1);
            }
        }
    }

    #[test]
    fn recall_is_bounded_and_monotone_in_hits(seed in 0u64..10_000) {
        let graph = er_graph(100, 400, seed);
        let h = HoldOut::remove_edges(&graph, 1, seed);
        // Oracle prediction: exactly the removed edges.
        let mut perfect: Vec<Vec<(VertexId, f32)>> =
            vec![Vec::new(); graph.num_vertices()];
        for (&u, held) in &h.removed {
            perfect[u.index()] = held.iter().map(|&z| (z, 1.0)).collect();
        }
        let oracle =
            snaple::core::Prediction::from_parts(perfect, RunStats::default());
        prop_assert!((metrics::recall(&oracle, &h) - 1.0).abs() < 1e-12);
        prop_assert!((metrics::precision(&oracle, &h) - 1.0).abs() < 1e-12);
        prop_assert!((metrics::mean_reciprocal_rank(&oracle, &h) - 1.0).abs() < 1e-12);

        // Dropping every other vertex's answers halves-ish the recall and
        // never increases it.
        let mut partial: Vec<Vec<(VertexId, f32)>> =
            vec![Vec::new(); graph.num_vertices()];
        for (&u, held) in &h.removed {
            if u.as_u32() % 2 == 0 {
                partial[u.index()] = held.iter().map(|&z| (z, 1.0)).collect();
            }
        }
        let half = snaple::core::Prediction::from_parts(partial, RunStats::default());
        prop_assert!(metrics::recall(&half, &h) <= metrics::recall(&oracle, &h));
    }

    #[test]
    fn recall_at_k_is_monotone_in_k(seed in 0u64..10_000) {
        let graph = er_graph(100, 400, seed);
        let h = HoldOut::remove_edges(&graph, 1, seed);
        // A noisy prediction: removed edge hidden at a random-ish rank.
        let mut preds: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); graph.num_vertices()];
        for (&u, held) in &h.removed {
            let mut list: Vec<(VertexId, f32)> = (0..10)
                .map(|i| (VertexId::new((u.as_u32() + i + 1) % 100), 1.0 - i as f32 * 0.05))
                .collect();
            if u.as_u32() % 3 == 0 {
                list.insert((u.as_u32() % 7) as usize, (held[0], 2.0));
            }
            preds[u.index()] = list;
        }
        let p = snaple::core::Prediction::from_parts(preds, RunStats::default());
        let mut last = 0.0;
        for k in [1, 2, 5, 8, 12] {
            let r = metrics::recall_at_k(&p, &h, k);
            prop_assert!(r >= last - 1e-12, "recall@{k} {r} < {last}");
            prop_assert!((0.0..=1.0).contains(&r));
            last = r;
        }
    }
}

#[test]
fn graph_generators_feed_the_protocol() {
    // Smoke-check the whole path for each generator family.
    let mut rng = StdRng::seed_from_u64(5);
    let graphs = vec![
        gen::erdos_renyi(200, 800, &mut rng).into_symmetric_graph(),
        gen::barabasi_albert(200, 3, &mut rng).into_symmetric_graph(),
        gen::holme_kim(200, 3, 0.5, &mut rng).into_symmetric_graph(),
        gen::watts_strogatz(200, 6, 0.1, &mut rng).into_symmetric_graph(),
        gen::community_graph(
            200,
            gen::CommunityParams {
                m: 3,
                p_triad: 0.4,
                p_community: 0.7,
                mean_community_size: 12,
            },
            &mut rng,
        )
        .into_symmetric_graph(),
    ];
    for g in graphs {
        let h = HoldOut::remove_edges(&g, 1, 9);
        assert!(h.num_removed() > 0);
        assert!(h.train.num_edges() < g.num_edges());
    }
}
