//! Targeted (query-subset) prediction: the serving contract across every
//! backend.
//!
//! The contract of [`PredictRequest::with_queries`]:
//!
//! 1. **Exactness** — every queried row is bit-identical to the same row
//!    of an all-vertices run with the same configuration and seeds;
//! 2. **Emptiness** — every non-queried row is empty;
//! 3. **Economy** — a strict subset does strictly less accounted work,
//!    and a full query set reproduces the all-vertices run byte for byte.

use proptest::prelude::*;

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::{
    NamedScore, PredictRequest, Prediction, Predictor, QuerySet, Snaple, SnapleConfig,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphBuilder};

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..50, 0u32..50), 1..400)
}

/// All three backends with a fixed seed, boxed behind the unified trait.
fn backends() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        (
            "snaple",
            Box::new(Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .k(5)
                    .klocal(Some(8))
                    .seed(42),
            )),
        ),
        (
            "baseline",
            Box::new(Baseline::new(BaselineConfig::new().k(5).seed(42))),
        ),
        (
            "random-walk-ppr",
            Box::new(RandomWalkPpr::new(
                RandomWalkConfig::new().walks(15).depth(3).seed(42),
            )),
        ),
    ]
}

fn assert_targeted_matches(
    label: &str,
    full: &Prediction,
    targeted: &Prediction,
    queries: &QuerySet,
) {
    assert_eq!(targeted.num_vertices(), full.num_vertices(), "{label}");
    for (u, preds) in targeted.iter() {
        if queries.contains(u) {
            assert_eq!(
                preds,
                full.for_vertex(u),
                "{label}: queried row {u} diverged"
            );
        } else {
            assert!(preds.is_empty(), "{label}: non-queried row {u} not empty");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for a random graph and a random query subset, targeted
    /// prediction returns exactly the subset's rows of the all-vertices
    /// run — for every backend behind the trait.
    #[test]
    fn targeted_rows_equal_full_run_rows(
        edges in edges_strategy(),
        subset_seed in 0u64..1_000,
        subset_frac in 1usize..10,
    ) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(2);
        let count = (graph.num_vertices() * subset_frac / 10).max(1);
        let queries = QuerySet::sample(graph.num_vertices(), count, subset_seed);
        for (label, backend) in backends() {
            let full = backend
                .predict(&PredictRequest::new(&graph, &cluster))
                .unwrap();
            let targeted = backend
                .predict(&PredictRequest::new(&graph, &cluster).with_queries(&queries))
                .unwrap();
            assert_targeted_matches(label, &full, &targeted, &queries);
        }
    }
}

#[test]
fn full_query_set_is_bit_identical_including_accounting() {
    let graph = datasets::GOWALLA.emulate(0.004, 7);
    let cluster = ClusterSpec::type_ii(4);
    let everyone = QuerySet::from_indices(0..graph.num_vertices() as u32);
    for (label, backend) in backends() {
        let full = backend
            .predict(&PredictRequest::new(&graph, &cluster))
            .unwrap();
        let via_queries = backend
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(&everyone))
            .unwrap();
        for (u, preds) in full.iter() {
            assert_eq!(preds, via_queries.for_vertex(u), "{label}: vertex {u}");
        }
        assert_eq!(
            full.stats.total_work_ops(),
            via_queries.stats.total_work_ops(),
            "{label}: work accounting diverged"
        );
        assert_eq!(
            full.stats.total_network_bytes(),
            via_queries.stats.total_network_bytes(),
            "{label}: network accounting diverged"
        );
        assert_eq!(
            full.stats.peak_memory(),
            via_queries.stats.peak_memory(),
            "{label}: memory accounting diverged"
        );
    }
}

#[test]
fn small_subsets_strictly_reduce_accounted_work() {
    let graph = datasets::GOWALLA.emulate(0.008, 3);
    let cluster = ClusterSpec::type_ii(4);
    let one_percent = QuerySet::sample(graph.num_vertices(), graph.num_vertices() / 100, 9);
    assert!(!one_percent.is_empty());
    for (label, backend) in backends() {
        let full = backend
            .predict(&PredictRequest::new(&graph, &cluster))
            .unwrap();
        let targeted = backend
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(&one_percent))
            .unwrap();
        let (full_ops, small_ops) = (full.stats.total_work_ops(), targeted.stats.total_work_ops());
        assert!(
            small_ops < full_ops,
            "{label}: subset work {small_ops} !< full work {full_ops}"
        );
        assert!(
            targeted.simulated_seconds() < full.simulated_seconds(),
            "{label}: subset time must drop"
        );
    }
}

#[test]
fn empty_query_sets_are_valid_and_produce_nothing() {
    let graph = datasets::GOWALLA.emulate(0.002, 3);
    let cluster = ClusterSpec::type_ii(2);
    let none = QuerySet::from_indices(std::iter::empty());
    for (label, backend) in backends() {
        let p = backend
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(&none))
            .unwrap();
        assert_eq!(p.total_predictions(), 0, "{label}");
        assert_eq!(p.num_vertices(), graph.num_vertices(), "{label}");
    }
}

#[test]
fn out_of_range_queries_fail_uniformly() {
    let graph = graph_from(&[(0, 1), (1, 2)]);
    let cluster = ClusterSpec::type_i(1);
    let bad = QuerySet::from_indices([0, 1_000]);
    for (label, backend) in backends() {
        let err = backend
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(&bad))
            .unwrap_err();
        assert!(
            matches!(err, snaple::core::SnapleError::InvalidConfig(_)),
            "{label}: {err}"
        );
    }
}
