//! The concurrent-serving contract.
//!
//! What the [`ConcurrentServer`] runtime guarantees, and what this suite
//! proves:
//!
//! 1. **Equivalence** — for the same requests and seed, responses are
//!    bit-identical to the sequential [`Server`], across backends
//!    (SNAPLE, multi-score plans) and across an epoch swap (post-swap
//!    reads equal a cold rebuild on the mutated graph). Checked for
//!    every seed of a deterministic sweep, the property-test style of
//!    the neighboring suites.
//! 2. **No torn reads** — while N threads hammer `serve` and a delta
//!    stream applies concurrently, every response matches either the
//!    pre-delta oracle or the post-delta oracle in full; no response
//!    ever mixes rows from two epochs.
//! 3. **Backpressure** — the bounded submission queue rejects
//!    `try_submit` with [`SnapleError::QueueFull`] when full; every
//!    *accepted* request is still answered.
//! 4. **Graceful drain** — `drain()` returns only when every accepted
//!    request has a buffered response.

use std::sync::atomic::{AtomicUsize, Ordering};

use snaple::core::concurrent::{ConcurrentOptions, ConcurrentServer, PendingPrediction};
use snaple::core::serve::Server;
use snaple::core::{
    NamedScore, PredictRequest, Prediction, Predictor, QuerySet, ScorePlan, Snaple, SnapleConfig,
    SnapleError,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphDelta};

fn snaple_predictor() -> Snaple {
    Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(10)),
    )
}

fn setup() -> (CsrGraph, ClusterSpec) {
    (datasets::GOWALLA.emulate(0.005, 3), ClusterSpec::type_ii(4))
}

/// A delta touching both directions: retract a few existing edges, add a
/// few fresh ones.
fn churn(graph: &CsrGraph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for (u, v) in graph.edges().take(5) {
        delta.remove(u.as_u32(), v.as_u32());
    }
    let n = graph.num_vertices() as u32;
    delta.insert(0, n - 1).insert(1, n - 2).insert(n - 1, 0);
    delta
}

fn rows_equal(request: &QuerySet, a: &Prediction, b: &Prediction) -> bool {
    request.iter().all(|q| a.for_vertex(q) == b.for_vertex(q))
}

#[test]
fn concurrent_responses_are_bit_identical_to_the_sequential_server() {
    // The acceptance property, swept over seeds: every response out of
    // the worker pool equals the sequential Server's response for the
    // same request — for single-job batches AND coalesced batches.
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    let requests: Vec<QuerySet> = (0..10)
        .map(|seed| QuerySet::sample(graph.num_vertices(), 30 + seed as usize, seed))
        .collect();

    let mut sequential = Server::new(&snaple, &graph, &cluster).unwrap();
    let expected: Vec<Prediction> = requests
        .iter()
        .map(|q| sequential.serve(q).unwrap())
        .collect();

    for (workers, batch) in [(1, 1), (4, 1), (2, 8)] {
        let outcome = ConcurrentServer::run(
            &snaple,
            &graph,
            &cluster,
            ConcurrentOptions::default().workers(workers).batch(batch),
            |handle| {
                let pending: Vec<PendingPrediction> =
                    requests.iter().map(|q| handle.submit(q).unwrap()).collect();
                pending
                    .into_iter()
                    .map(|p| p.wait().unwrap())
                    .collect::<Vec<_>>()
            },
        )
        .unwrap();
        for ((request, concurrent), sequential) in
            requests.iter().zip(&outcome.value).zip(&expected)
        {
            for q in request.iter() {
                assert_eq!(
                    concurrent.for_vertex(q),
                    sequential.for_vertex(q),
                    "workers={workers} batch={batch} row {q} diverged"
                );
            }
        }
        assert_eq!(outcome.stats.requests, requests.len());
        assert_eq!(outcome.stats.workers, workers);
        assert_eq!(outcome.stats.latency.count(), requests.len() as u64);
    }
}

#[test]
fn score_plans_serve_concurrently_too() {
    // The plan path (combined multi-score ranking) through the pool.
    let (graph, cluster) = setup();
    let plan = ScorePlan::parse("linearSum, counter@k3").unwrap();
    let q = QuerySet::sample(graph.num_vertices(), 40, 7);
    let mut sequential = Server::new(&plan, &graph, &cluster).unwrap();
    let expected = sequential.serve(&q).unwrap();
    let outcome = ConcurrentServer::run(
        &plan,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(3),
        |handle| handle.serve(&q).unwrap(),
    )
    .unwrap();
    assert!(rows_equal(&q, &outcome.value, &expected));
}

#[test]
fn post_swap_reads_match_a_cold_rebuild() {
    // The epoch-swap half of the acceptance property: after
    // apply_update, responses are bit-identical to a server prepared
    // cold on the compacted graph — and the update stats are counted.
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    let delta = churn(&graph);
    let mutated = graph.compact(&delta);
    let mut cold = Server::new(&snaple, &mutated, &cluster).unwrap();

    let queries: Vec<QuerySet> = (0..6)
        .map(|seed| QuerySet::sample(graph.num_vertices(), 25, seed))
        .collect();
    let outcome = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(2),
        |handle| {
            assert_eq!(handle.epoch(), 0);
            let applied = handle.apply_update(&delta).unwrap();
            assert_eq!(applied.removed_edges, 5);
            assert_eq!(handle.epoch(), 1);
            queries
                .iter()
                .map(|q| handle.serve(q).unwrap())
                .collect::<Vec<_>>()
        },
    )
    .unwrap();
    for (q, served) in queries.iter().zip(&outcome.value) {
        let expected = cold.serve(q).unwrap();
        for v in q.iter() {
            assert_eq!(served.for_vertex(v), expected.for_vertex(v), "row {v}");
        }
    }
    assert_eq!(outcome.stats.updates, 1);
    assert_eq!(outcome.stats.edges_removed, 5);
    assert!(outcome.stats.delta_apply_seconds > 0.0);
}

#[test]
fn stacked_epoch_swaps_compose() {
    // Two successive updates: the second fork must start from the first's
    // epoch, ending bit-identical to a cold rebuild on both deltas.
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    let first = churn(&graph);
    let after_first = graph.compact(&first);
    let mut second = GraphDelta::new();
    let n = graph.num_vertices() as u32;
    second.insert(2, n - 3).remove(0, n - 1);
    let after_second = after_first.compact(&second);

    let q = QuerySet::sample(graph.num_vertices(), 35, 11);
    let outcome = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(2),
        |handle| {
            handle.apply_update(&first).unwrap();
            handle.apply_update(&second).unwrap();
            assert_eq!(handle.epoch(), 2);
            handle.serve(&q).unwrap()
        },
    )
    .unwrap();
    let mut cold = Server::new(&snaple, &after_second, &cluster).unwrap();
    let expected = cold.serve(&q).unwrap();
    assert!(rows_equal(&q, &outcome.value, &expected));
    assert_eq!(outcome.stats.updates, 2);
}

#[test]
fn hammered_reads_during_updates_are_never_torn() {
    // N threads hammer serve() while the main thread applies a delta
    // stream. Every response must equal the oracle of SOME epoch — the
    // pre-delta rows, the post-first rows, or the post-second rows —
    // entirely; a mix of epochs inside one response is a torn read.
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    let n = graph.num_vertices() as u32;
    // Query the vertices the deltas touch (so epochs actually produce
    // different rows) plus a hash sample.
    let q: QuerySet = QuerySet::sample(graph.num_vertices(), 25, 17)
        .iter()
        .chain(QuerySet::from_indices([0, 1, 2, 3, n - 1, n - 2, n - 3, n - 4]).iter())
        .collect();

    let first = churn(&graph);
    let after_first = graph.compact(&first);
    let mut second = GraphDelta::new();
    second.insert(3, n - 4).remove(1, n - 2);
    let after_second = after_first.compact(&second);

    let oracle = |g: &CsrGraph| -> Prediction {
        Predictor::predict(&snaple, &PredictRequest::new(g, &cluster).with_queries(&q)).unwrap()
    };
    let oracles = [oracle(&graph), oracle(&after_first), oracle(&after_second)];

    let served = AtomicUsize::new(0);
    let outcome = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(4),
        |handle| {
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let served = &served;
                    let q = &q;
                    let oracles = &oracles;
                    scope.spawn(move || {
                        for _ in 0..8 {
                            let response = handle.serve(q).unwrap();
                            // Torn-read check: the response must equal
                            // SOME epoch's oracle in full.
                            assert!(
                                oracles.iter().any(|o| rows_equal(q, &response, o)),
                                "torn read: response matches no epoch oracle"
                            );
                            served.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
                // Interleave the updates with the read storm.
                handle.apply_update(&first).unwrap();
                handle.apply_update(&second).unwrap();
            });
            // The storm is over and both epochs are published: a final
            // read must deterministically see the last epoch.
            assert_eq!(handle.epoch(), 2);
            handle.serve(&q).unwrap()
        },
    )
    .unwrap();
    assert_eq!(served.load(Ordering::Relaxed), 32);
    assert!(
        rows_equal(&q, &outcome.value, &oracles[2]),
        "post-storm read does not match the final epoch"
    );
    assert_eq!(outcome.stats.requests, 33);
    assert_eq!(outcome.stats.updates, 2);
}

#[test]
fn bounded_queue_applies_backpressure_but_answers_every_accepted_request() {
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    let outcome = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(1).queue_capacity(1),
        |handle| {
            let mut accepted: Vec<(u64, PendingPrediction)> = Vec::new();
            let mut rejections = 0usize;
            let mut seed = 0u64;
            // Submit until the 1-slot queue has pushed back a few times
            // (the single worker cannot drain faster than we submit).
            while rejections < 3 && seed < 10_000 {
                let q = QuerySet::sample(graph.num_vertices(), 25, seed);
                match handle.try_submit(&q) {
                    Ok(ticket) => accepted.push((seed, ticket)),
                    Err(SnapleError::QueueFull { capacity }) => {
                        assert_eq!(capacity, 1);
                        rejections += 1;
                    }
                    Err(other) => panic!("unexpected error: {other}"),
                }
                seed += 1;
            }
            assert!(
                rejections >= 3,
                "queue never filled after {seed} submissions"
            );
            assert!(!accepted.is_empty());
            // A blocking submit succeeds even under pressure...
            let q = QuerySet::sample(graph.num_vertices(), 25, 99_999);
            let blocking = handle.submit(&q).unwrap();
            // ...and every accepted request is answered.
            let count = accepted.len();
            for (_seed, ticket) in accepted {
                let response = ticket.wait().unwrap();
                assert_eq!(response.num_vertices(), graph.num_vertices());
            }
            blocking.wait().unwrap();
            count
        },
    )
    .unwrap();
    assert_eq!(outcome.stats.requests, outcome.value + 1);
}

#[test]
fn drain_completes_all_accepted_requests() {
    let (graph, cluster) = setup();
    let snaple = snaple_predictor();
    ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(2).batch(4),
        |handle| {
            let pending: Vec<PendingPrediction> = (0..10)
                .map(|seed| {
                    handle
                        .submit(&QuerySet::sample(graph.num_vertices(), 20, seed))
                        .unwrap()
                })
                .collect();
            handle.drain();
            assert_eq!(handle.queue_len(), 0, "drain left jobs queued");
            // After drain, every response is already buffered: try_wait
            // must succeed immediately for all tickets.
            for ticket in pending {
                match ticket.try_wait() {
                    Ok(result) => {
                        result.unwrap();
                    }
                    Err(_) => panic!("drain returned with a request still unanswered"),
                }
            }
        },
    )
    .unwrap();
}

#[test]
fn random_walk_backend_serves_concurrently() {
    // The partition-free backend shares snapshots and forks epochs too.
    use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
    let graph = datasets::GOWALLA.emulate(0.003, 5);
    let cluster = ClusterSpec::single_machine(20, 128 << 30);
    let walk = RandomWalkPpr::new(RandomWalkConfig::new().walks(10).depth(3).k(5));
    let q = QuerySet::sample(graph.num_vertices(), 20, 3);
    let delta = churn(&graph);
    let mutated = graph.compact(&delta);

    let mut cold_pre = Server::new(&walk, &graph, &cluster).unwrap();
    let expected_pre = cold_pre.serve(&q).unwrap();
    let mut cold_post = Server::new(&walk, &mutated, &cluster).unwrap();
    let expected_post = cold_post.serve(&q).unwrap();

    let outcome = ConcurrentServer::run(
        &walk,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(2),
        |handle| {
            let pre = handle.serve(&q).unwrap();
            handle.apply_update(&delta).unwrap();
            let post = handle.serve(&q).unwrap();
            (pre, post)
        },
    )
    .unwrap();
    assert!(rows_equal(&q, &outcome.value.0, &expected_pre));
    assert!(rows_equal(&q, &outcome.value.1, &expected_post));
}
