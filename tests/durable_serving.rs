//! Crash-recovery properties of the durable serving layer
//! (`snaple-store` + `Server::attach_durability` +
//! `ConcurrentServer::run_prepared_durable`).
//!
//! The contract under test: a server reopened from a data dir is
//! **bit-identical** to one that never crashed, for every prefix of the
//! stream a crash can leave behind — including a kill at an arbitrary
//! byte offset of the commitlog, a corrupted snapshot, and a partial
//! snapshot temp file. Recovery must repair (truncate, fall back,
//! report), never panic.

use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use snaple::core::concurrent::{ConcurrentOptions, ConcurrentServer};
use snaple::core::serve::Server;
use snaple::core::{
    NamedScore, Predictor, PrepareRequest, QuerySet, ScorePlan, Snaple, SnapleConfig,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{io, CsrGraph, GraphDelta};
use snaple::store::{log::LOG_FILE, Durability, DurabilityOptions, FsyncPolicy};

/// Unique scratch dir per test (and per proptest case), cleaned on
/// entry so a previous failed run can't leak state in.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("snaple-durable-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn graph_bytes(g: &CsrGraph) -> Vec<u8> {
    let mut out = Vec::new();
    io::write_binary(g, &mut out).expect("in-memory serialize");
    out
}

fn base_graph() -> CsrGraph {
    CsrGraph::from_edges(
        40,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 0),
            (5, 6),
            (6, 7),
            (7, 5),
        ],
    )
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Deterministic churn: mostly inserts (some with odd weights), some
/// removals, ids within the base graph's vertex range.
fn churn(seed: u64, ops: usize, num_vertices: u32) -> GraphDelta {
    let mut state = seed | 1;
    let mut delta = GraphDelta::new();
    for _ in 0..ops {
        let u = (xorshift(&mut state) % num_vertices as u64) as u32;
        let v = (xorshift(&mut state) % num_vertices as u64) as u32;
        if xorshift(&mut state).is_multiple_of(5) {
            delta.remove(u, v);
        } else {
            let w = 0.25 + (xorshift(&mut state) % 8) as f32 * 0.5;
            delta.insert_weighted(u, v, w);
        }
    }
    delta
}

/// Applies the first `n` deltas sequentially — the state of a server
/// that (durably) saw exactly that prefix of the stream.
fn oracle_graph(base: &CsrGraph, deltas: &[GraphDelta], n: usize) -> CsrGraph {
    let mut g = base.clone();
    for delta in &deltas[..n] {
        g = g.compact(delta);
    }
    g
}

/// Records `deltas` into a fresh data dir and returns, per delta, the
/// log length after its append and the covers_seq of every snapshot
/// written (the seed snapshot's 0 included).
fn build_data_dir(
    dir: &Path,
    base: &CsrGraph,
    deltas: &[GraphDelta],
    opts: DurabilityOptions,
) -> (Vec<u64>, Vec<u64>) {
    let (mut durable, recovered, _report) =
        Durability::open(dir, base, b"test-config", opts).expect("fresh open");
    assert!(recovered.is_none(), "fresh dir must not recover");
    let mut frame_ends = Vec::new();
    let mut covers = vec![0u64];
    let mut snapshots_seen = durable.stats().snapshots_written;
    for delta in deltas {
        durable.record(delta).expect("record");
        frame_ends.push(fs::metadata(dir.join(LOG_FILE)).expect("log meta").len());
        if durable.stats().snapshots_written > snapshots_seen {
            snapshots_seen = durable.stats().snapshots_written;
            covers.push(durable.next_seq());
        }
    }
    (frame_ends, covers)
}

/// Recovered effective graph: newest valid snapshot + replayed tail.
fn recover_effective(dir: &Path, base: &CsrGraph, opts: DurabilityOptions) -> (CsrGraph, usize) {
    let (_durable, recovered, report) =
        Durability::open(dir, base, b"test-config", opts).expect("recovery open never errors");
    let state = recovered.expect("dir had prior state");
    let mut g = state.graph;
    for delta in &state.replay {
        g = g.compact(delta);
    }
    (g, report.frames_replayed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kill the process at an ARBITRARY byte offset of the commitlog:
    /// recovery truncates the torn tail and restores exactly the state
    /// of the deltas that durably made it — bit-identical to a server
    /// that only ever saw that prefix.
    #[test]
    fn kill_at_any_log_byte_recovers_a_durable_prefix(
        seed in 0u64..10_000,
        n_deltas in 1usize..12,
        cadence in 2usize..5,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("cut");
        let base = base_graph();
        let deltas: Vec<GraphDelta> = (0..n_deltas)
            .map(|i| churn(seed.wrapping_mul(31).wrapping_add(i as u64), 1 + i % 5, 40))
            .collect();
        // retain enough snapshots that the log is never trimmed, so
        // the recorded frame offsets stay valid for the cut below.
        let opts = DurabilityOptions::default()
            .fsync(FsyncPolicy::Always)
            .snapshot_every(cadence)
            .retain(16);
        let (frame_ends, covers) = build_data_dir(&dir, &base, &deltas, opts.clone());

        // The crash: truncate the log mid-write at an arbitrary byte.
        let log_path = dir.join(LOG_FILE);
        let len = fs::metadata(&log_path).unwrap().len();
        let cut = (len as f64 * cut_frac) as u64;
        let bytes = fs::read(&log_path).unwrap();
        fs::write(&log_path, &bytes[..cut as usize]).unwrap();

        // Deltas that survive: frames wholly below the cut — except a
        // snapshot may durably cover MORE than the surviving log.
        let k_log = frame_ends.iter().filter(|&&e| e <= cut).count();
        let k_snap = *covers.last().unwrap() as usize;
        let expected_n = k_log.max(k_snap);

        let (effective, _replayed) = recover_effective(&dir, &base, opts);
        let expected = oracle_graph(&base, &deltas, expected_n);
        prop_assert_eq!(
            graph_bytes(&effective),
            graph_bytes(&expected),
            "cut at byte {}/{} must recover the {}-delta prefix",
            cut, len, expected_n
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// Flip one byte anywhere in the commitlog: the checksum catches
    /// it, the log is healed to the prefix before the corrupt frame,
    /// and recovery is bit-identical to the corresponding prefix state
    /// — never a panic, never silently wrong data.
    #[test]
    fn corrupt_log_byte_recovers_the_prefix_before_it(
        seed in 0u64..10_000,
        n_deltas in 1usize..10,
        flip_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("flip");
        let base = base_graph();
        let deltas: Vec<GraphDelta> = (0..n_deltas)
            .map(|i| churn(seed.wrapping_add(777 * i as u64), 2, 40))
            .collect();
        let opts = DurabilityOptions::default()
            .fsync(FsyncPolicy::Always)
            .snapshot_every(4)
            .retain(16);
        let (frame_ends, covers) = build_data_dir(&dir, &base, &deltas, opts.clone());

        let log_path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&log_path).unwrap();
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[at] ^= 0xFF;
        fs::write(&log_path, &bytes).unwrap();

        // Frames strictly before the flipped byte survive the scan.
        let k_log = frame_ends.iter().filter(|&&e| e <= at as u64).count();
        let expected_n = k_log.max(*covers.last().unwrap() as usize);

        let (effective, _) = recover_effective(&dir, &base, opts);
        let expected = oracle_graph(&base, &deltas, expected_n);
        prop_assert_eq!(
            graph_bytes(&effective),
            graph_bytes(&expected),
            "flip at byte {} must recover the {}-delta prefix",
            at, expected_n
        );
        fs::remove_dir_all(&dir).ok();
    }

    /// Corrupt the NEWEST snapshot (kill-mid-snapshot's worst case):
    /// recovery falls back to an older snapshot and replays a longer
    /// log tail — still bit-identical to the never-crashed state,
    /// with the skipped snapshot reported, not fatal.
    #[test]
    fn corrupt_newest_snapshot_falls_back_bit_identically(
        seed in 0u64..10_000,
        flip_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("snapfall");
        let base = base_graph();
        // Cadence 2 over 6 deltas: seed snapshot + 3 more; retain 2.
        let deltas: Vec<GraphDelta> = (0..6)
            .map(|i| churn(seed.wrapping_add(i as u64 * 13), 3, 40))
            .collect();
        let opts = DurabilityOptions::default()
            .fsync(FsyncPolicy::Always)
            .snapshot_every(2)
            .retain(2);
        build_data_dir(&dir, &base, &deltas, opts.clone());

        let mut snaps: Vec<PathBuf> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "snap"))
            .collect();
        snaps.sort();
        prop_assert!(snaps.len() >= 2, "retain=2 keeps two snapshots");
        let newest = snaps.last().unwrap();
        let mut bytes = fs::read(newest).unwrap();
        let at = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[at] ^= 0xFF;
        fs::write(newest, &bytes).unwrap();

        let (_durable, recovered, report) =
            Durability::open(&dir, &base, b"test-config", opts).expect("fallback open");
        prop_assert_eq!(report.snapshots_skipped.len(), 1, "newest snapshot skipped");
        let state = recovered.expect("prior state");
        let mut effective = state.graph;
        for delta in &state.replay {
            effective = effective.compact(delta);
        }
        // All 6 deltas are still on disk (log retained past the older
        // snapshot), so the fallback loses NOTHING.
        let expected = oracle_graph(&base, &deltas, 6);
        prop_assert_eq!(graph_bytes(&effective), graph_bytes(&expected));
        fs::remove_dir_all(&dir).ok();
    }
}

/// A kill mid-snapshot leaves a partial `.snap.tmp` the atomic
/// tmp+rename protocol never published: recovery ignores it, the next
/// checkpoint sweeps it.
#[test]
fn partial_snapshot_tmp_is_ignored_and_swept() {
    let dir = scratch("tmpsweep");
    let base = base_graph();
    let deltas: Vec<GraphDelta> = (0..3).map(|i| churn(90 + i, 2, 40)).collect();
    let opts = DurabilityOptions::default()
        .fsync(FsyncPolicy::Always)
        .snapshot_every(2)
        .retain(2);
    build_data_dir(&dir, &base, &deltas, opts.clone());

    // The crash artifact: a half-written snapshot temp file.
    let tmp = dir.join("snapshot-00000000000000000099.snap.tmp");
    fs::write(&tmp, b"partial garbage from a killed checkpoint").unwrap();

    let (mut durable, recovered, report) =
        Durability::open(&dir, &base, b"test-config", opts).expect("open over tmp");
    assert!(report.snapshots_skipped.is_empty(), "{}", report.summary());
    let state = recovered.expect("prior state");
    let mut effective = state.graph;
    for delta in &state.replay {
        effective = effective.compact(delta);
    }
    assert_eq!(
        graph_bytes(&effective),
        graph_bytes(&oracle_graph(&base, &deltas, 3))
    );

    // The next checkpoint sweeps the stray temp file.
    durable.checkpoint().expect("checkpoint");
    assert!(!tmp.exists(), "checkpoint must sweep .snap.tmp strays");
    fs::remove_dir_all(&dir).ok();
}

/// End-to-end serving bit-identity through the sequential [`Server`]:
/// updates stream into a durable server, the process "dies" (drop), a
/// second server recovers — and serves rows bit-identical to a server
/// that never went down, for both the Snaple and score-plan backends.
#[test]
fn restarted_server_serves_bit_identical_rows_across_backends() {
    let graph = datasets::GOWALLA.emulate(0.003, 11);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(10)),
    );
    let plan = ScorePlan::parse("linearSum, jaccard@k8").expect("plan");
    let backends: [(&str, &dyn Predictor); 2] = [("snaple", &snaple), ("plan", &plan)];

    let deltas: Vec<GraphDelta> = (0..5)
        .map(|i| churn(5000 + i, 4, graph.num_vertices() as u32))
        .collect();
    let request = QuerySet::sample(graph.num_vertices(), 30, 9);

    for (name, predictor) in backends {
        let dir = scratch(&format!("serve-{name}"));
        let opts = DurabilityOptions::default()
            .fsync(FsyncPolicy::Always)
            .snapshot_every(2)
            .retain(2);

        // Phase 1: durable server ingests the update stream, then dies.
        let (durable, recovered, _) =
            Durability::open(&dir, &graph, b"cfg", opts.clone()).expect("fresh");
        assert!(recovered.is_none());
        let mut server = Server::new(predictor, &graph, &cluster).expect("prepare");
        server.attach_durability(durable);
        for delta in &deltas {
            server.apply_update(delta).expect("durable update");
        }
        let live_rows = server.serve(&request).expect("phase-1 serve");
        drop(server); // the crash: no clean shutdown handshake needed

        // Phase 2: recover and serve the same request.
        let (durable, recovered, report) =
            Durability::open(&dir, &graph, b"cfg", opts).expect("recover");
        let state = recovered.expect("prior state");
        assert!(!report.repaired(), "clean files: {}", report.summary());
        let mut restarted = Server::new(predictor, &state.graph, &cluster).expect("re-prepare");
        for delta in &state.replay {
            restarted.apply_update(delta).expect("replay");
        }
        restarted.attach_durability(durable);
        let recovered_rows = restarted.serve(&request).expect("phase-2 serve");

        // The never-crashed oracle: a cold server on the fully-updated
        // graph (updates already proven bit-identical to cold rebuilds).
        let mut oracle = graph.clone();
        for delta in &deltas {
            oracle = oracle.compact(delta);
        }
        let oracle_server_rows = {
            let mut s = Server::new(predictor, &oracle, &cluster).expect("oracle prepare");
            s.serve(&request).expect("oracle serve")
        };
        for q in request.iter() {
            assert_eq!(
                live_rows.for_vertex(q),
                recovered_rows.for_vertex(q),
                "[{name}] restarted row {q} diverged from the live server"
            );
            assert_eq!(
                recovered_rows.for_vertex(q),
                oracle_server_rows.for_vertex(q),
                "[{name}] restarted row {q} diverged from the cold oracle"
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}

/// The concurrent runtime persists through the same store: epoch-swap
/// updates land in the commitlog before they become observable, and a
/// restart recovers rows bit-identical to the sequential oracle.
#[test]
fn concurrent_durable_run_recovers_bit_identical_rows() {
    let graph = datasets::GOWALLA.emulate(0.003, 21);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(10)),
    );
    let deltas: Vec<GraphDelta> = (0..3)
        .map(|i| churn(7000 + i, 5, graph.num_vertices() as u32))
        .collect();
    let request = QuerySet::sample(graph.num_vertices(), 25, 4);
    let dir = scratch("concurrent");
    let opts = DurabilityOptions::default()
        .fsync(FsyncPolicy::Batch) // exercise the batched-fsync path
        .snapshot_every(2)
        .retain(2);

    let (durable, recovered, _) = Durability::open(&dir, &graph, b"cfg", opts.clone()).unwrap();
    assert!(recovered.is_none());
    let prepared = snaple
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .expect("prepare");
    let outcome = ConcurrentServer::run_prepared_durable(
        prepared,
        ConcurrentOptions::default().workers(2),
        durable,
        |handle| {
            for delta in &deltas {
                handle.apply_update(delta).expect("durable epoch swap");
            }
            handle.serve(&request).expect("serve post-updates")
        },
    )
    .expect("durable run");
    let live_rows = outcome.value;
    assert_eq!(
        outcome
            .stats
            .durability
            .as_ref()
            .expect("durable stats")
            .logged_deltas,
        deltas.len()
    );
    drop(outcome.durability); // the crash

    // Recover into a sequential server and compare rows.
    let (_durable, recovered, report) =
        Durability::open(&dir, &graph, b"cfg", opts).expect("recover");
    let state = recovered.expect("prior state");
    assert!(!report.repaired(), "{}", report.summary());
    let mut restarted = Server::new(&snaple, &state.graph, &cluster).expect("re-prepare");
    for delta in &state.replay {
        restarted.apply_update(delta).expect("replay");
    }
    let recovered_rows = restarted.serve(&request).expect("recovered serve");
    for q in request.iter() {
        assert_eq!(
            live_rows.for_vertex(q),
            recovered_rows.for_vertex(q),
            "row {q} diverged across the concurrent restart"
        );
    }
    fs::remove_dir_all(&dir).ok();
}
