//! The prepare-once/execute-many contract and the batching serve layer,
//! across every backend.
//!
//! The contract of [`Predictor::prepare`]:
//!
//! 1. **Determinism** — N sequential `execute` calls against one prepared
//!    predictor, with the same seed, are bit-identical to N fresh
//!    one-shot `predict` calls with the same configuration;
//! 2. **Amortization** — only the one-shot path reports partition build
//!    time in its [`RunStats`]; prepared executes report zero because the
//!    setup was paid once at prepare time;
//! 3. **Coalescing exactness** — a [`Server`] batch unions the requests'
//!    query masks into one shared superstep run, and the demultiplexed
//!    per-request rows are bit-identical to individually-executed
//!    requests.
//!
//! [`RunStats`]: snaple::gas::RunStats

use proptest::prelude::*;

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::serve::Server;
use snaple::core::{
    ExecuteRequest, NamedScore, PredictRequest, Predictor, PrepareRequest, QuerySet, Snaple,
    SnapleConfig,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphBuilder};

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..40, 0u32..40), 1..300)
}

/// All three stateless backends with a fixed seed, behind the trait.
fn backends() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        (
            "snaple",
            Box::new(Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .k(5)
                    .klocal(Some(8))
                    .seed(42),
            )),
        ),
        (
            "baseline",
            Box::new(Baseline::new(BaselineConfig::new().k(5).seed(42))),
        ),
        (
            "random-walk-ppr",
            Box::new(RandomWalkPpr::new(
                RandomWalkConfig::new().walks(15).depth(3).seed(42),
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `prepare` once + `execute` K times (same seed) produces rows
    /// bit-identical to K independent `predict` calls, for every backend,
    /// on arbitrary graphs and query sets.
    #[test]
    fn prepare_execute_matches_fresh_predicts(
        edges in edges_strategy(),
        query_seed in 0u64..1_000,
        query_count in 1usize..20,
    ) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(2);
        for (label, predictor) in backends() {
            let prepared = predictor
                .prepare(&PrepareRequest::new(&graph, &cluster))
                .unwrap();
            for k in 0..3u64 {
                let queries = QuerySet::sample(
                    graph.num_vertices(),
                    query_count.min(graph.num_vertices()),
                    query_seed + k,
                );
                let executed = prepared
                    .execute(&ExecuteRequest::new().with_queries(&queries))
                    .unwrap();
                let fresh = predictor
                    .predict(&PredictRequest::new(&graph, &cluster).with_queries(&queries))
                    .unwrap();
                prop_assert_eq!(executed.num_vertices(), fresh.num_vertices());
                for (u, preds) in executed.iter() {
                    prop_assert_eq!(
                        preds,
                        fresh.for_vertex(u),
                        "{}: row {} diverged on execute #{}",
                        label,
                        u,
                        k
                    );
                }
            }
        }
    }

    /// Server batches demultiplex to exactly the rows individual predicts
    /// produce, on arbitrary graphs and request mixes.
    #[test]
    fn server_batches_match_individual_predicts(
        edges in edges_strategy(),
        request_seed in 0u64..1_000,
    ) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(2);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::Counter).k(4).klocal(Some(6)).seed(7),
        );
        let requests: Vec<QuerySet> = (0..4)
            .map(|i| {
                QuerySet::sample(
                    graph.num_vertices(),
                    (graph.num_vertices() / 4).max(1),
                    request_seed + i,
                )
            })
            .collect();
        let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
        let responses = server.serve_batch(&requests).unwrap();
        for (request, response) in requests.iter().zip(&responses) {
            let individual = snaple
                .predict(&PredictRequest::new(&graph, &cluster).with_queries(request))
                .unwrap();
            for (u, preds) in response.iter() {
                if request.contains(u) {
                    prop_assert_eq!(preds, individual.for_vertex(u), "row {}", u);
                } else {
                    prop_assert!(preds.is_empty(), "non-queried row {} not empty", u);
                }
            }
        }
    }
}

/// Executes with an explicit seed override match fresh predicts whose
/// configuration carries that seed — the "same seed" leg of the
/// determinism contract on a realistic graph.
#[test]
fn seed_override_matches_reseeded_one_shot_runs() {
    let graph = datasets::GOWALLA.emulate(0.004, 11);
    let cluster = ClusterSpec::type_ii(4);
    // Counter scores count paths exactly, so rows are bit-identical even
    // across *different* partitions (the same guarantee the engine's
    // cross-cluster tests rely on); float-summing scorers like linearSum
    // are only bit-stable on an identical partition.
    let base = SnapleConfig::new(NamedScore::Counter).k(5).klocal(Some(10));
    let snaple = Snaple::new(base.clone().seed(1));
    let prepared = snaple
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    let queries = QuerySet::sample(graph.num_vertices(), 60, 5);
    for seed in [2u64, 3, 99] {
        let executed = prepared
            .execute(&ExecuteRequest::new().with_queries(&queries).with_seed(seed))
            .unwrap();
        // A fresh predictor configured with that seed partitions
        // differently (it hashes edge placement with the config seed),
        // but the prediction itself must match.
        let fresh = Snaple::new(base.clone().seed(seed))
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(&queries))
            .unwrap();
        for q in queries.iter() {
            assert_eq!(executed.for_vertex(q), fresh.for_vertex(q), "row {q}");
        }
    }
}

/// The supervised re-ranker also serves: its prepared form shares one
/// deployment across the whole feature panel and matches one-shot rows.
#[test]
fn supervised_prepared_execution_matches_one_shot() {
    use snaple::supervised::{SupervisedConfig, SupervisedSnaple};
    let graph = datasets::GOWALLA.emulate(0.004, 3);
    let cluster = ClusterSpec::type_ii(2);
    let model = SupervisedSnaple::new(SupervisedConfig::new().k(3).seed(3))
        .train(&graph, &cluster)
        .unwrap();
    let prepared = model
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    assert!(prepared.setup().partition_build_seconds > 0.0);
    let queries = QuerySet::sample(graph.num_vertices(), 30, 9);
    let executed = prepared
        .execute(&ExecuteRequest::new().with_queries(&queries))
        .unwrap();
    let one_shot = model
        .predict(&PredictRequest::new(&graph, &cluster).with_queries(&queries))
        .unwrap();
    for (u, preds) in executed.iter() {
        assert_eq!(preds, one_shot.for_vertex(u), "row {u}");
    }
    // The panel's one-shot path builds its shared partition once; the
    // prepared path amortizes even that away.
    assert!(one_shot.stats.partition_build_seconds > 0.0);
    assert_eq!(executed.stats.partition_build_seconds, 0.0);
}

/// A served stream through one `Server` does strictly less host work
/// than repeated one-shot predicts — the amortization the serve layer
/// exists for, measured by the partition builds it skips.
#[test]
fn served_streams_amortize_partition_builds() {
    let graph = datasets::GOWALLA.emulate(0.005, 7);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(10)),
    );
    let requests: Vec<QuerySet> = (0..12)
        .map(|i| QuerySet::sample(graph.num_vertices(), 20, i))
        .collect();

    let mut one_shot_partition_seconds = 0.0;
    for q in &requests {
        let p = snaple
            .predict(&PredictRequest::new(&graph, &cluster).with_queries(q))
            .unwrap();
        assert!(p.stats.partition_build_seconds > 0.0);
        one_shot_partition_seconds += p.stats.partition_build_seconds;
    }

    let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
    for chunk in requests.chunks(4) {
        server.serve_batch(chunk).unwrap();
    }
    let stats = server.stats();
    assert_eq!(stats.requests, 12);
    assert_eq!(stats.batches, 3);
    assert!(
        stats.partition_build_seconds < one_shot_partition_seconds,
        "served stream must pay less partition-build time than {} one-shots \
         ({} vs {})",
        requests.len(),
        stats.partition_build_seconds,
        one_shot_partition_seconds
    );
}
