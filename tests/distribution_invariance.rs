//! The engine's central correctness property: *distribution must not
//! change results*. SNAPLE's predictions on a 1-node deployment must equal
//! its predictions on any cluster, for every partitioning strategy.
//!
//! Exact equality is asserted for integer-valued scoring (counter); the
//! float-valued configurations are compared with prediction-set tolerance
//! (merge order may reassociate f32 additions).

use proptest::prelude::*;

use snaple::core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple::gas::{ClusterSpec, PartitionStrategy};
use snaple::graph::gen::{self, CommunityParams};
use snaple::graph::CsrGraph;

use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_graph(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::community_graph(
        n,
        CommunityParams {
            m: m_per_vertex,
            p_triad: 0.4,
            p_community: 0.7,
            mean_community_size: 15,
        },
        &mut rng,
    )
    .into_symmetric_graph()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn counter_predictions_identical_on_any_cluster(
        seed in 0u64..1_000,
        nodes in 2usize..24,
    ) {
        let graph = random_graph(400, 4, seed);
        let config = SnapleConfig::new(NamedScore::Counter)
            .klocal(Some(8))
            .thr_gamma(Some(50))
            .seed(seed);
        let machine = ClusterSpec::single_machine(8, 32 << 30);
        let single = Predictor::predict(
            &Snaple::new(config.clone()),
            &PredictRequest::new(&graph, &machine),
        )
        .unwrap();
        for strategy in PartitionStrategy::all() {
            let cluster = ClusterSpec::type_i(nodes);
            let clustered = Predictor::predict(
                &Snaple::new(config.clone().partition(strategy)),
                &PredictRequest::new(&graph, &cluster),
            )
            .unwrap();
            for (u, preds) in single.iter() {
                prop_assert_eq!(
                    preds,
                    clustered.for_vertex(u),
                    "vertex {} with {:?} on {} nodes",
                    u,
                    strategy,
                    nodes
                );
            }
        }
    }

    #[test]
    fn float_scores_agree_within_tolerance_across_clusters(
        seed in 0u64..1_000,
    ) {
        let graph = random_graph(300, 4, seed);
        let config = SnapleConfig::new(NamedScore::LinearSum)
            .klocal(Some(8))
            .seed(seed);
        let machine = ClusterSpec::single_machine(8, 32 << 30);
        let single = Predictor::predict(
            &Snaple::new(config.clone()),
            &PredictRequest::new(&graph, &machine),
        )
        .unwrap();
        let cluster = ClusterSpec::type_i(16);
        let clustered =
            Predictor::predict(&Snaple::new(config), &PredictRequest::new(&graph, &cluster))
                .unwrap();
        for (u, a) in single.iter() {
            let b = clustered.for_vertex(u);
            prop_assert_eq!(a.len(), b.len(), "vertex {}", u);
            // Same candidate multisets up to float-tie reordering: compare
            // sorted-by-id lists with score tolerance.
            let mut xs: Vec<_> = a.to_vec();
            let mut ys: Vec<_> = b.to_vec();
            xs.sort_by_key(|&(z, _)| z);
            ys.sort_by_key(|&(z, _)| z);
            for ((za, sa), (zb, sb)) in xs.iter().zip(&ys) {
                // Ties in score may legitimately swap which candidate
                // appears; only flag mismatches with materially different
                // scores.
                if za != zb {
                    prop_assert!(
                        (sa - sb).abs() < 1e-3,
                        "vertex {}: {:?} vs {:?}",
                        u,
                        xs,
                        ys
                    );
                } else {
                    prop_assert!((sa - sb).abs() < 1e-3);
                }
            }
        }
    }

    #[test]
    fn replication_factor_grows_with_cluster_size(seed in 0u64..1_000) {
        let graph = random_graph(300, 4, seed);
        let config = SnapleConfig::new(NamedScore::Counter).seed(seed);
        let two = ClusterSpec::type_i(2);
        let few = Predictor::predict(
            &Snaple::new(config.clone()),
            &PredictRequest::new(&graph, &two),
        )
        .unwrap();
        let thirty_two = ClusterSpec::type_i(32);
        let many = Predictor::predict(
            &Snaple::new(config),
            &PredictRequest::new(&graph, &thirty_two),
        )
        .unwrap();
        prop_assert!(few.stats.replication_factor <= many.stats.replication_factor);
        prop_assert!(few.stats.replication_factor >= 1.0);
    }
}
