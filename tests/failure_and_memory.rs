//! Failure injection and memory-exhaustion behavior across the stack.

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig, SnapleError};
use snaple::gas::{ClusterSpec, Engine, EngineError, NodeId, PartitionStrategy};
use snaple::graph::gen::datasets;

#[test]
fn node_failures_surface_through_the_predictor_stack() {
    // Drive the SNAPLE steps manually so we can inject a failure mid-run.
    use snaple::core::config::SelectionPolicy;
    use snaple::core::state::SnapleVertex;
    use snaple::core::steps::{NeighborhoodStep, SimilarityStep};

    let graph = datasets::GOWALLA.emulate(0.002, 5);
    let mut engine = Engine::new(
        &graph,
        ClusterSpec::type_i(4),
        PartitionStrategy::RandomVertexCut,
        1,
    )
    .unwrap();
    engine.inject_failure(NodeId::new(2), 1);
    let mut state = vec![SnapleVertex::default(); graph.num_vertices()];

    engine
        .run_step(
            &NeighborhoodStep {
                thr_gamma: Some(200),
            },
            &mut state,
        )
        .expect("step 1 precedes the failure");

    let components = NamedScore::LinearSum.resolve(0.9);
    let err = engine
        .run_step(
            &SimilarityStep {
                components: &components,
                klocal: Some(10),
                selection: SelectionPolicy::Max,
            },
            &mut state,
        )
        .unwrap_err();
    assert_eq!(
        err,
        EngineError::NodeFailure {
            node: NodeId::new(2),
            step: "snaple-2-similarity".into()
        }
    );
}

#[test]
fn baseline_oom_crossover_follows_graph_size() {
    // At matched (scaled) memory budgets, BASELINE survives the small
    // dataset and dies on the denser one — the paper's Table 5 crossover.
    let cluster_for = |scale: f64| ClusterSpec::type_ii(4).with_memory_scale(scale);

    let small = datasets::GOWALLA.emulate(0.01, 3);
    let small_cluster = cluster_for(0.01);
    let ok = Predictor::predict(
        &Baseline::new(BaselineConfig::new()),
        &PredictRequest::new(&small, &small_cluster),
    )
    .map(|p| p.total_predictions());
    assert!(ok.is_ok(), "gowalla-scale baseline should fit: {ok:?}");

    let dense = datasets::ORKUT.emulate(0.001, 3);
    let dense_cluster = cluster_for(0.001);
    let err = Predictor::predict(
        &Baseline::new(BaselineConfig::new()),
        &PredictRequest::new(&dense, &dense_cluster),
    )
    .unwrap_err();
    assert!(
        matches!(
            err,
            SnapleError::Engine(EngineError::ResourceExhausted { .. })
        ),
        "orkut-scale baseline should exhaust memory, got {err}"
    );
}

#[test]
fn snaple_survives_where_baseline_dies() {
    let dense = datasets::ORKUT.emulate(0.001, 3);
    let cluster = ClusterSpec::type_ii(4).with_memory_scale(0.001);
    let snaple = Predictor::predict(
        &Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20))),
        &PredictRequest::new(&dense, &cluster),
    );
    assert!(
        snaple.is_ok(),
        "snaple should fit in the same budget: {:?}",
        snaple.err()
    );
}

#[test]
fn memory_errors_carry_actionable_detail() {
    let graph = datasets::GOWALLA.emulate(0.005, 3);
    let starved = ClusterSpec {
        memory_per_node: 50_000,
        ..ClusterSpec::type_i(2)
    };
    let err = Predictor::predict(
        &Baseline::new(BaselineConfig::new()),
        &PredictRequest::new(&graph, &starved),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("exhausted memory"), "{msg}");
    assert!(msg.contains("capacity"), "{msg}");
}
