//! End-to-end smoke tests of the `snaple-cli` binary: every subcommand,
//! both graph formats, and error paths.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_snaple-cli"))
}

fn run(args: &[&str]) -> Output {
    cli().args(args).output().expect("binary runs")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("snaple-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn emulate_stats_predict_evaluate_pipeline() {
    let graph_path = tmp("pipeline.snplg");
    let out = run(&[
        "emulate",
        "--dataset",
        "gowalla",
        "--scale",
        "0.005",
        "--seed",
        "7",
        "--out",
        graph_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(graph_path.exists());

    let out = run(&["stats", "--graph", graph_path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("vertices"), "{stdout}");
    assert!(stdout.contains("reciprocity"), "{stdout}");

    let out = run(&[
        "predict",
        "--graph",
        graph_path.to_str().unwrap(),
        "--score",
        "counter",
        "--k",
        "3",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let first = stdout.lines().next().expect("at least one prediction");
    assert_eq!(first.split('\t').count(), 3, "TSV rows: {first}");

    let out = run(&[
        "evaluate",
        "--graph",
        graph_path.to_str().unwrap(),
        "--score",
        "counter",
        "--removals",
        "1",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recall"), "{stdout}");
    let recall: f64 = stdout
        .lines()
        .find(|l| l.starts_with("recall"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .expect("recall line parses");
    assert!((0.0..=1.0).contains(&recall));
    let _ = std::fs::remove_file(graph_path);
}

#[test]
fn text_edge_lists_work_too() {
    let graph_path = tmp("text.txt");
    std::fs::write(&graph_path, "# tiny\n0 1\n1 2\n2 0\n2 3\n").unwrap();
    let out = run(&["stats", "--graph", graph_path.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("edges         4"));
    let _ = std::fs::remove_file(graph_path);
}

#[test]
fn helpful_errors_for_bad_input() {
    let out = run(&["predict", "--graph", "/nonexistent/file"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    let out = run(&["emulate", "--dataset", "friendster", "--out", "/tmp/x"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown dataset"));

    let out = run(&["frobnicate"]);
    assert!(!out.status.success());

    let graph_path = tmp("err.txt");
    std::fs::write(&graph_path, "0 1\n").unwrap();
    let out = run(&[
        "predict",
        "--graph",
        graph_path.to_str().unwrap(),
        "--score",
        "not-a-score",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown score"));
    let _ = std::fs::remove_file(graph_path);
}

#[test]
fn help_lists_all_commands() {
    let out = run(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    for cmd in ["emulate", "stats", "predict", "serve", "evaluate"] {
        assert!(text.contains(cmd), "help missing {cmd}");
    }
}

#[test]
fn serve_answers_request_streams_from_file_and_synthetic() {
    let graph_path = tmp("serve.snplg");
    let out = run(&[
        "emulate",
        "--dataset",
        "gowalla",
        "--scale",
        "0.004",
        "--seed",
        "3",
        "--out",
        graph_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // A request stream file: three requests, comments and blanks skipped.
    let stream_path = tmp("serve-requests.txt");
    std::fs::write(&stream_path, "# online users\n0,1,2\n\n3, 4\n2,5\n").unwrap();
    let out = run(&[
        "serve",
        "--graph",
        graph_path.to_str().unwrap(),
        "--requests",
        stream_path.to_str().unwrap(),
        "--batch",
        "2",
        "--k",
        "3",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in stdout.lines() {
        assert_eq!(line.split('\t').count(), 4, "TSV rows: {line}");
    }
    // Rows are demultiplexed per request: indices stay in 0..3 (sources
    // with no candidates legitimately produce no rows).
    let request_ids: std::collections::HashSet<usize> = stdout
        .lines()
        .filter_map(|l| l.split('\t').next())
        .map(|id| id.parse().unwrap())
        .collect();
    assert!(!request_ids.is_empty(), "{stdout}");
    assert!(request_ids.iter().all(|&id| id < 3), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("served 3 requests"), "{stderr}");
    assert!(stderr.contains("req/s"), "{stderr}");

    // Synthetic streams work too, and conflicting flags are rejected.
    let out = run(&[
        "serve",
        "--graph",
        graph_path.to_str().unwrap(),
        "--request-count",
        "4",
        "--request-size",
        "10",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = run(&["serve", "--graph", graph_path.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--requests"));

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(stream_path);
}

#[test]
fn serve_with_workers_matches_the_sequential_server() {
    let graph_path = tmp("serve-workers.snplg");
    let out = run(&[
        "emulate",
        "--dataset",
        "gowalla",
        "--scale",
        "0.004",
        "--seed",
        "3",
        "--out",
        graph_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // A mixed predict/update stream, served sequentially and through the
    // worker pool: the emitted TSV rows must be identical.
    let stream_path = tmp("serve-workers-updates.txt");
    std::fs::write(
        &stream_path,
        "predict 0,1,2\nadd 0 40\nremove 1 2\npredict 0,1,2\n3,4,5\n",
    )
    .unwrap();
    let base_args = [
        "serve",
        "--graph",
        graph_path.to_str().unwrap(),
        "--updates",
        stream_path.to_str().unwrap(),
        "--k",
        "3",
        "--batch",
        "2",
    ];
    let sequential = run(&base_args);
    assert!(
        sequential.status.success(),
        "{}",
        String::from_utf8_lossy(&sequential.stderr)
    );
    let concurrent = run(&[&base_args[..], &["--workers", "3"]].concat());
    assert!(
        concurrent.status.success(),
        "{}",
        String::from_utf8_lossy(&concurrent.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&sequential.stdout),
        String::from_utf8_lossy(&concurrent.stdout),
        "worker-pool rows must be bit-identical to the sequential server"
    );
    let stderr = String::from_utf8_lossy(&concurrent.stderr);
    assert!(stderr.contains("3 workers"), "{stderr}");
    assert!(stderr.contains("p50/p95/p99"), "{stderr}");
    assert!(stderr.contains("epoch 1"), "{stderr}");

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(stream_path);
}

#[test]
fn out_of_range_queries_error_up_front_with_the_offending_id() {
    let graph_path = tmp("bad-queries.snplg");
    let out = run(&[
        "emulate",
        "--dataset",
        "gowalla",
        "--scale",
        "0.004",
        "--seed",
        "3",
        "--out",
        graph_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    let out = run(&[
        "predict",
        "--graph",
        graph_path.to_str().unwrap(),
        "--queries",
        "0,999999",
    ]);
    assert!(!out.status.success(), "out-of-range ids must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("vertex id 999999"), "{stderr}");
    assert!(stderr.contains("out of range"), "{stderr}");

    let _ = std::fs::remove_file(graph_path);
}

#[test]
fn serve_with_shards_matches_the_sequential_server_on_both_transports() {
    let graph_path = tmp("serve-shards.snplg");
    let out = run(&[
        "emulate",
        "--dataset",
        "gowalla",
        "--scale",
        "0.004",
        "--seed",
        "3",
        "--out",
        graph_path.to_str().unwrap(),
    ]);
    assert!(out.status.success());

    // The same mixed predict/update stream through the sequential
    // server, the thread-shard router, and the process-shard router:
    // the TSV output must be byte-identical all three ways.
    let stream_path = tmp("serve-shards-updates.txt");
    std::fs::write(
        &stream_path,
        "predict 0,1,2\nadd 0 40\nremove 1 2\npredict 0,1,2\n3,4,5\n",
    )
    .unwrap();
    let base_args = [
        "serve",
        "--graph",
        graph_path.to_str().unwrap(),
        "--updates",
        stream_path.to_str().unwrap(),
        "--k",
        "3",
        "--batch",
        "2",
    ];
    let sequential = run(&base_args);
    assert!(
        sequential.status.success(),
        "{}",
        String::from_utf8_lossy(&sequential.stderr)
    );

    let threads = run(&[&base_args[..], &["--shards", "3"]].concat());
    assert!(
        threads.status.success(),
        "{}",
        String::from_utf8_lossy(&threads.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&sequential.stdout),
        String::from_utf8_lossy(&threads.stdout),
        "thread-shard rows must be byte-identical to the sequential server"
    );
    let stderr = String::from_utf8_lossy(&threads.stderr);
    assert!(stderr.contains("3 thread shard(s)"), "{stderr}");
    assert!(stderr.contains("epoch 1"), "{stderr}");

    let procs = cli()
        .args([&base_args[..], &["--shards", "2", "--shard-procs"]].concat())
        .env("SNAPLE_SHARDD", env!("CARGO_BIN_EXE_snaple-shardd"))
        .output()
        .expect("binary runs");
    assert!(
        procs.status.success(),
        "{}",
        String::from_utf8_lossy(&procs.stderr)
    );
    assert_eq!(
        String::from_utf8_lossy(&sequential.stdout),
        String::from_utf8_lossy(&procs.stdout),
        "process-shard rows must be byte-identical to the sequential server"
    );
    assert!(
        String::from_utf8_lossy(&procs.stderr).contains("2 process shard(s)"),
        "{}",
        String::from_utf8_lossy(&procs.stderr)
    );

    let _ = std::fs::remove_file(graph_path);
    let _ = std::fs::remove_file(stream_path);
}

#[test]
fn unusable_shard_flags_are_rejected_with_specific_messages() {
    // Validation fires before the graph is even loaded, so no fixture
    // file is needed — the flag errors must name the offending value.
    let zero = run(&[
        "serve",
        "--graph",
        "missing.snplg",
        "--request-count",
        "1",
        "--shards",
        "0",
    ]);
    assert!(!zero.status.success());
    let stderr = String::from_utf8_lossy(&zero.stderr);
    assert!(stderr.contains("--shards must be at least 1"), "{stderr}");

    let too_many = run(&[
        "serve",
        "--graph",
        "missing.snplg",
        "--request-count",
        "1",
        "--nodes",
        "4",
        "--shards",
        "9",
    ]);
    assert!(!too_many.status.success());
    let stderr = String::from_utf8_lossy(&too_many.stderr);
    assert!(stderr.contains("--shards 9 exceeds --nodes 4"), "{stderr}");

    let orphan = run(&[
        "serve",
        "--graph",
        "missing.snplg",
        "--request-count",
        "1",
        "--shard-procs",
    ]);
    assert!(!orphan.status.success());
    let stderr = String::from_utf8_lossy(&orphan.stderr);
    assert!(stderr.contains("--shard-procs needs --shards"), "{stderr}");

    let both = run(&[
        "serve",
        "--graph",
        "missing.snplg",
        "--request-count",
        "1",
        "--shards",
        "2",
        "--workers",
        "2",
    ]);
    assert!(!both.status.success());
    let stderr = String::from_utf8_lossy(&both.stderr);
    assert!(stderr.contains("mutually exclusive"), "{stderr}");
}
