//! End-to-end integration: emulated dataset → hold-out → predictors →
//! recall, across the workspace crates.

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::{NamedScore, PathLength, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple::eval::{EvalDataset, Runner};
use snaple::gas::ClusterSpec;

fn gowalla_runner_parts() -> (snaple::graph::CsrGraph, snaple::eval::HoldOut) {
    EvalDataset::by_name("gowalla")
        .unwrap()
        .scaled_by(0.04) // ~2k vertices: fast but structured
        .load_with_holdout(77, 1)
}

#[test]
fn snaple_beats_random_walks_on_community_graphs() {
    let (_g, holdout) = gowalla_runner_parts();
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(4);
    let machine = ClusterSpec::single_machine(20, 128 << 30);

    let snaple = runner.run(
        "linearSum",
        &Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(20))
                .seed(77),
        ),
        &runner.request(&cluster),
    );
    let walks = runner.run(
        "ppr",
        &RandomWalkPpr::new(RandomWalkConfig::new().walks(20).depth(3).seed(77)),
        &runner.request(&machine),
    );
    assert!(snaple.outcome.is_completed());
    assert!(snaple.recall > 0.1, "snaple recall {}", snaple.recall);
    assert!(
        snaple.recall > walks.recall,
        "snaple {} vs walks {}",
        snaple.recall,
        walks.recall
    );
}

#[test]
fn all_table3_configurations_run_end_to_end() {
    let (_g, holdout) = gowalla_runner_parts();
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(2);
    for spec in NamedScore::all() {
        let m = runner.run(
            spec.name(),
            &Snaple::new(SnapleConfig::new(spec).klocal(Some(10)).seed(3)),
            &runner.request(&cluster),
        );
        assert!(m.outcome.is_completed(), "{}: {:?}", spec.name(), m.outcome);
        assert!(
            (0.0..=1.0).contains(&m.recall),
            "{}: recall {}",
            spec.name(),
            m.recall
        );
        assert!(m.simulated_seconds > 0.0, "{}", spec.name());
    }
}

#[test]
fn sampling_reduces_work_without_destroying_recall() {
    let (_g, holdout) = gowalla_runner_parts();
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(4);
    let full = runner.run(
        "full",
        &Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(None)
                .seed(5),
        ),
        &runner.request(&cluster),
    );
    let sampled = runner.run(
        "k20",
        &Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(20))
                .seed(5),
        ),
        &runner.request(&cluster),
    );
    // The paper's §5.3 observation: sampling has minimal recall impact while
    // cutting execution time.
    assert!(sampled.simulated_seconds <= full.simulated_seconds);
    assert!(
        sampled.recall > 0.7 * full.recall,
        "sampled {} vs full {}",
        sampled.recall,
        full.recall
    );
}

#[test]
fn baseline_and_snaple_agree_on_feasible_inputs() {
    let (_g, holdout) = gowalla_runner_parts();
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(4);
    let base = runner.run(
        "BASELINE",
        &Baseline::new(BaselineConfig::new().seed(9)),
        &runner.request(&cluster),
    );
    let snaple = runner.run(
        "counter",
        &Snaple::new(
            SnapleConfig::new(NamedScore::Counter)
                .klocal(None)
                .thr_gamma(None)
                .seed(9),
        ),
        &runner.request(&cluster),
    );
    assert!(base.outcome.is_completed());
    assert!(snaple.outcome.is_completed());
    // Both must find a nontrivial share of held-out edges, and SNAPLE must
    // be cheaper in simulated time (paper Table 5).
    assert!(base.recall > 0.05, "baseline {}", base.recall);
    assert!(snaple.recall > 0.05, "snaple {}", snaple.recall);
    assert!(
        snaple.simulated_seconds < base.simulated_seconds,
        "snaple {} vs baseline {}",
        snaple.simulated_seconds,
        base.simulated_seconds
    );
}

#[test]
fn three_hop_extension_runs_on_real_workloads() {
    let (_g, holdout) = gowalla_runner_parts();
    let runner = Runner::new(&holdout);
    let cluster = ClusterSpec::type_ii(2);
    let three = runner.run(
        "linearSum-3hop",
        &Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(10))
                .path_length(PathLength::Three)
                .seed(5),
        ),
        &runner.request(&cluster),
    );
    assert!(three.outcome.is_completed(), "{:?}", three.outcome);
    assert!((0.0..=1.0).contains(&three.recall));
}

#[test]
fn io_round_trip_preserves_predictions() {
    use snaple::graph::io;

    let (_g, holdout) = gowalla_runner_parts();
    let mut buf = Vec::new();
    io::write_binary(&holdout.train, &mut buf).unwrap();
    let reloaded = io::read_binary(&buf[..]).unwrap();

    let cluster = ClusterSpec::type_ii(2);
    let config = SnapleConfig::new(NamedScore::Counter)
        .klocal(Some(10))
        .seed(1);
    let a = Predictor::predict(
        &Snaple::new(config.clone()),
        &PredictRequest::new(&holdout.train, &cluster),
    )
    .unwrap();
    let b = Predictor::predict(
        &Snaple::new(config),
        &PredictRequest::new(&reloaded, &cluster),
    )
    .unwrap();
    for (u, preds) in a.iter() {
        assert_eq!(preds, b.for_vertex(u), "vertex {u}");
    }
}

#[test]
fn content_based_scoring_works_end_to_end() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snaple::core::config::ScoreComponents;
    use snaple::core::{aggregator, combinator, similarity};
    use snaple::graph::gen::{self, CommunityParams};

    // Paper §3.1's content extension. On graphs whose communities drive
    // both edges and tags, *pure content* (topology weight 0) must carry
    // most of the structural signal on its own — demonstrating the content
    // path works end to end. (Community-level tags are not additive on top
    // of structure here: every intra-community pair looks content-alike,
    // so structure subsumes them; finer-grained content would be needed
    // for a strict lift.)
    let params = CommunityParams {
        m: 3,
        p_triad: 0.2,
        p_community: 0.8,
        mean_community_size: 20,
    };
    let mut rng = StdRng::seed_from_u64(5);
    let (edges, labels) = gen::community_graph_with_labels(3_000, params, &mut rng);
    let graph = edges.into_symmetric_graph();
    let tags = gen::community_tags(&labels, 8, 12, 0.05, &mut rng);
    let holdout = snaple::eval::HoldOut::remove_edges(&graph, 1, 9);
    let cluster = ClusterSpec::type_ii(2);

    let components = |w: f32| ScoreComponents {
        name: format!("blend-{w}"),
        similarity: std::sync::Arc::new(similarity::ContentBlend::new(w)),
        selection_similarity: std::sync::Arc::new(similarity::ContentBlend::new(w)),
        combinator: std::sync::Arc::new(combinator::Linear::new(0.5)),
        aggregator: std::sync::Arc::new(aggregator::Sum),
    };
    let config = SnapleConfig::new(NamedScore::LinearSum)
        .klocal(Some(10))
        .seed(9);

    let pure_structure = Predictor::predict(
        &Snaple::with_components(config.clone(), components(1.0)),
        &PredictRequest::new(&holdout.train, &cluster).with_attributes(&tags),
    )
    .unwrap();
    let pure_content = Predictor::predict(
        &Snaple::with_components(config.clone(), components(0.0)),
        &PredictRequest::new(&holdout.train, &cluster).with_attributes(&tags),
    )
    .unwrap();

    let r_structure = snaple::eval::metrics::recall(&pure_structure, &holdout);
    let r_content = snaple::eval::metrics::recall(&pure_content, &holdout);
    assert!(r_structure > 0.2, "structure sanity: {r_structure}");
    assert!(
        r_content > 0.6 * r_structure,
        "content-only recall {r_content} should approach structure {r_structure}"
    );

    // Without attributes, pure-content scoring collapses (tags are empty
    // so all similarities are zero) — the attributes really are the input.
    let no_tags = Predictor::predict(
        &Snaple::with_components(config, components(0.0)),
        &PredictRequest::new(&holdout.train, &cluster),
    )
    .unwrap();
    let r_no_tags = snaple::eval::metrics::recall(&no_tags, &holdout);
    assert!(
        r_no_tags < r_content,
        "content recall must come from the tags: {r_no_tags} vs {r_content}"
    );
}

#[test]
fn attribute_length_mismatch_is_rejected() {
    let g = snaple::graph::CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
    let cluster = ClusterSpec::type_i(1);
    let attrs = [vec![1]];
    let err = Predictor::predict(
        &Snaple::new(SnapleConfig::new(NamedScore::LinearSum)),
        &PredictRequest::new(&g, &cluster).with_attributes(&attrs),
    )
    .unwrap_err();
    assert!(matches!(err, snaple::core::SnapleError::InvalidConfig(_)));
}
