//! The streaming-update contract, across every backend.
//!
//! The contract of [`PreparedPredictor::apply_delta`]:
//!
//! 1. **Equivalence** — after any sequence of applied deltas, `execute`
//!    returns rows bit-identical to a cold `prepare` on the mutated
//!    graph (for every backend, including the supervised panel);
//! 2. **Composition** — `CsrGraph::compact` agrees with a ground-truth
//!    rebuild of the mutated edge list, so graph, partition, and
//!    prediction all see the same topology;
//! 3. **Serving** — `Server::apply_update` interleaves with prediction
//!    batches without breaking batch demultiplexing.

use proptest::prelude::*;

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::serve::Server;
use snaple::core::{
    ExecuteRequest, NamedScore, Predictor, PrepareRequest, QuerySet, Snaple, SnapleConfig,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphBuilder, GraphDelta};

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..30, 0u32..30), 1..200)
}

/// Random insert/remove batches, possibly referencing vertices beyond
/// the base range (growth) and edges that do not exist (no-ops). The
/// third field selects the operation (0 = insert, 1 = remove).
fn delta_strategy() -> impl Strategy<Value = Vec<(u32, u32, u32)>> {
    proptest::collection::vec((0u32..34, 0u32..34, 0u32..2), 1..40)
}

fn build_delta(ops: &[(u32, u32, u32)]) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for &(u, v, op) in ops {
        if op == 0 {
            delta.insert(u, v);
        } else {
            delta.remove(u, v);
        }
    }
    delta
}

/// All three stateless backends with a fixed seed, behind the trait.
fn backends() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        (
            "snaple",
            Box::new(Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .k(5)
                    .klocal(Some(8))
                    .seed(42),
            )),
        ),
        (
            "baseline",
            Box::new(Baseline::new(BaselineConfig::new().k(5).seed(42))),
        ),
        (
            "random-walk-ppr",
            Box::new(RandomWalkPpr::new(
                RandomWalkConfig::new().walks(15).depth(3).seed(42),
            )),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// apply_delta + execute is bit-identical to a cold prepare on the
    /// mutated graph, for random graphs and random delta batches, across
    /// all backends.
    #[test]
    fn incremental_updates_match_cold_prepares(
        edges in edges_strategy(),
        ops in delta_strategy(),
        query_seed in 0u64..1_000,
    ) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(2);
        let delta = build_delta(&ops);
        let mutated = graph.compact(&delta);
        let queries = QuerySet::sample(mutated.num_vertices(), 12, query_seed);
        for (label, predictor) in backends() {
            let mut prepared = predictor
                .prepare(&PrepareRequest::new(&graph, &cluster))
                .unwrap();
            prepared.apply_delta(&delta).unwrap();
            let incremental = prepared
                .execute(&ExecuteRequest::new().with_queries(&queries))
                .unwrap();
            let cold_prepared = predictor
                .prepare(&PrepareRequest::new(&mutated, &cluster))
                .unwrap();
            let cold = cold_prepared
                .execute(&ExecuteRequest::new().with_queries(&queries))
                .unwrap();
            prop_assert_eq!(incremental.num_vertices(), cold.num_vertices(), "{}", label);
            for (u, preds) in incremental.iter() {
                prop_assert_eq!(
                    preds,
                    cold.for_vertex(u),
                    "{}: row {} diverged after delta",
                    label,
                    u
                );
            }
        }
    }

    /// A *sequence* of deltas composes: the deployment tracks the graph
    /// through several updates and still matches a cold prepare on the
    /// final state.
    #[test]
    fn delta_sequences_compose(
        edges in edges_strategy(),
        ops_a in delta_strategy(),
        ops_b in delta_strategy(),
    ) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(2);
        let (delta_a, delta_b) = (build_delta(&ops_a), build_delta(&ops_b));
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::Counter).k(4).klocal(Some(6)).seed(7),
        );
        let mut prepared = snaple
            .prepare(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        prepared.apply_delta(&delta_a).unwrap();
        prepared.apply_delta(&delta_b).unwrap();
        let incremental = prepared.execute(&ExecuteRequest::new()).unwrap();

        let final_graph = graph.compact(&delta_a).compact(&delta_b);
        let cold = snaple
            .prepare(&PrepareRequest::new(&final_graph, &cluster))
            .unwrap()
            .execute(&ExecuteRequest::new())
            .unwrap();
        prop_assert_eq!(incremental.num_vertices(), cold.num_vertices());
        for (u, preds) in incremental.iter() {
            prop_assert_eq!(preds, cold.for_vertex(u), "row {}", u);
        }
    }
}

/// The GOWALLA-style acceptance check: random churn batches on an
/// emulated dataset, bit-identical rows against a cold rebuild, for all
/// four backends (the supervised panel refreshes its one shared
/// deployment).
#[test]
fn gowalla_churn_matches_cold_rebuild_across_all_four_backends() {
    use snaple::supervised::{SupervisedConfig, SupervisedSnaple};

    let graph = datasets::GOWALLA.emulate(0.004, 17);
    let cluster = ClusterSpec::type_ii(4);

    // ~1% churn: retract the first edges, add fresh non-edges.
    let mut delta = GraphDelta::new();
    for (u, v) in graph.edges().take(graph.num_edges() / 200) {
        delta.remove(u.as_u32(), v.as_u32());
    }
    let n = graph.num_vertices() as u32;
    let mut added = 0;
    'outer: for u in 0..n {
        for v in (n / 2)..n {
            let (uu, vv) = (
                snaple::graph::VertexId::new(u),
                snaple::graph::VertexId::new(v),
            );
            if u != v && !graph.has_edge(uu, vv) {
                delta.insert(u, v);
                added += 1;
                if added == graph.num_edges() / 200 {
                    break 'outer;
                }
            }
        }
    }
    let mutated = graph.compact(&delta);
    let queries = QuerySet::sample(graph.num_vertices(), 40, 3);

    let model = SupervisedSnaple::new(SupervisedConfig::new().k(3).seed(3))
        .train(&graph, &cluster)
        .unwrap();
    let mut all: Vec<(&str, Box<dyn Predictor>)> = backends();
    all.push(("supervised", Box::new(model)));

    for (label, predictor) in all {
        let mut prepared = predictor
            .prepare(&PrepareRequest::new(&graph, &cluster))
            .unwrap();
        let applied = prepared.apply_delta(&delta).unwrap();
        assert!(
            applied.inserted_edges > 0 && applied.removed_edges > 0,
            "{label}"
        );
        let incremental = prepared
            .execute(&ExecuteRequest::new().with_queries(&queries))
            .unwrap();
        let cold = predictor
            .prepare(&PrepareRequest::new(&mutated, &cluster))
            .unwrap()
            .execute(&ExecuteRequest::new().with_queries(&queries))
            .unwrap();
        for q in queries.iter() {
            assert_eq!(
                incremental.for_vertex(q),
                cold.for_vertex(q),
                "{label}: row {q} diverged after churn"
            );
        }
    }
}

/// Server streams interleave updates with batches; the demultiplexed
/// rows always reflect the latest applied graph.
#[test]
fn served_streams_stay_exact_across_updates() {
    let graph = datasets::GOWALLA.emulate(0.004, 5);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(10)),
    );
    let requests: Vec<QuerySet> = (0..4)
        .map(|i| QuerySet::sample(graph.num_vertices(), 25, i))
        .collect();

    let mut server = Server::new(&snaple, &graph, &cluster).unwrap();
    server.serve_batch(&requests).unwrap();

    let mut delta = GraphDelta::new();
    for (u, v) in graph.edges().take(20) {
        delta.remove(u.as_u32(), v.as_u32());
    }
    delta.insert(0, graph.num_vertices() as u32); // grows the graph
    server.apply_update(&delta).unwrap();

    let mutated = graph.compact(&delta);
    let mut cold = Server::new(&snaple, &mutated, &cluster).unwrap();
    let updated = server.serve_batch(&requests).unwrap();
    let expected = cold.serve_batch(&requests).unwrap();
    for ((request, got), want) in requests.iter().zip(&updated).zip(&expected) {
        for q in request.iter() {
            assert_eq!(got.for_vertex(q), want.for_vertex(q), "row {q}");
        }
    }
    let stats = server.stats();
    assert_eq!(stats.updates, 1);
    assert_eq!(stats.batches, 2);
    assert!(stats.delta_apply_seconds > 0.0);
}
