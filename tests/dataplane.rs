//! Property tests for the billion-edge data plane:
//!
//! 1. a `SNPLG2` round trip is **bit-identical** to the in-memory
//!    [`CsrGraph`] — including graphs that have been relabeled or
//!    delta-compacted first (the shapes serving actually writes);
//! 2. the out-of-core [`ExternalGraphBuilder`] produces exactly the
//!    graph the in-RAM [`GraphBuilder`] produces, on arbitrary edge
//!    lists and with chunk sizes small enough to force multi-run
//!    spills and k-way merges;
//! 3. SNAPLE prediction rows are bit-identical across the `csr`,
//!    `file-csr`, and `varint` storage backends;
//! 4. forged or truncated `SNPLG2` bytes are rejected with typed
//!    errors on every open path — never a panic.

use proptest::prelude::*;

use snaple::core::{NamedScore, PredictRequest, Predictor, Snaple, SnapleConfig};
use snaple::gas::ClusterSpec;
use snaple::graph::relabel::Relabeling;
use snaple::graph::{
    compress, io, store, CompressedGraph, CsrGraph, ExternalGraphBuilder, FileCsr, GraphBuilder,
    GraphDelta, GraphStore,
};

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..48, 0u32..48), 0..260)
}

fn weighted_edges_strategy() -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    proptest::collection::vec((0u32..48, 0u32..48, 0.25f32..8.0), 0..260)
}

/// One prediction row: the source vertex and its ranked (target, score)
/// pairs.
type Row = (u32, Vec<(snaple::graph::VertexId, f32)>);

fn build(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

/// Full structural equality between two stores: vertex/edge counts,
/// out/in adjacency, and out-weights.
fn assert_same_graph(a: &dyn GraphStore, b: &dyn GraphStore) {
    assert_eq!(a.num_vertices(), b.num_vertices());
    assert_eq!(a.num_edges(), b.num_edges());
    assert_eq!(a.is_weighted(), b.is_weighted());
    for u in store::vertices(a) {
        assert_eq!(a.out_neighbors(u), b.out_neighbors(u), "out row {u}");
        assert_eq!(a.in_neighbors(u), b.in_neighbors(u), "in row {u}");
        let wa: Option<Vec<f32>> = a.out_weights(u).map(|w| w.to_vec());
        let wb: Option<Vec<f32>> = b.out_weights(u).map(|w| w.to_vec());
        assert_eq!(wa, wb, "weights row {u}");
    }
}

/// Unique scratch path per test case (proptest runs cases in one
/// process, so the pid alone is not enough).
fn scratch(tag: &str, case: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("snaple-dp-{tag}-{}-{case}", std::process::id()))
}

proptest! {
    /// SNPLG2 round trip == the in-memory graph, bit for bit, via both
    /// the eager reader and the zero-parse `FileCsr` backend.
    #[test]
    fn snplg2_round_trips_bit_identical(edges in edges_strategy(), case in 0u64..u64::MAX) {
        let g = build(&edges);
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        prop_assert_eq!(&buf[..6], b"SNPLG2");

        let eager = io::read_binary(&buf[..]).unwrap();
        assert_same_graph(&g, &eager);

        let path = scratch("rt", case);
        std::fs::write(&path, &buf).unwrap();
        let lazy = FileCsr::open(&path).unwrap();
        assert_same_graph(&g, &lazy);
        // Hydrating the file backend reproduces the original CsrGraph.
        assert_same_graph(&g, &lazy.to_csr());
        std::fs::remove_file(&path).ok();
    }

    /// The round trip also holds for the graph shapes serving writes:
    /// degree-relabeled and delta-compacted graphs.
    #[test]
    fn relabeled_and_compacted_graphs_round_trip(
        edges in edges_strategy(),
        inserts in proptest::collection::vec((0u32..48, 0u32..48), 0..40),
        removes in proptest::collection::vec((0u32..48, 0u32..48), 0..20),
    ) {
        let base = build(&edges);

        let relabeled = Relabeling::degree_order(&base).apply(&base);
        let mut buf = Vec::new();
        io::write_binary(&relabeled, &mut buf).unwrap();
        assert_same_graph(&relabeled, &io::read_binary(&buf[..]).unwrap());

        let mut delta = GraphDelta::new();
        for &(u, v) in &inserts {
            delta.insert(u, v);
        }
        for &(u, v) in &removes {
            delta.remove(u, v);
        }
        let compacted = base.compact(&delta);
        let mut buf = Vec::new();
        io::write_binary(&compacted, &mut buf).unwrap();
        assert_same_graph(&compacted, &io::read_binary(&buf[..]).unwrap());
    }

    /// Weighted graphs keep exact (bit-level) weights through v2 and
    /// through the varint-compressed flavor.
    #[test]
    fn weighted_round_trip_all_flavors(wedges in weighted_edges_strategy()) {
        let mut b = GraphBuilder::new();
        for &(u, v, w) in &wedges {
            b.add_weighted_edge(u, v, w);
        }
        let g = b.build();

        let mut raw = Vec::new();
        io::write_binary(&g, &mut raw).unwrap();
        assert_same_graph(&g, &io::read_binary(&raw[..]).unwrap());

        let mut vz = Vec::new();
        compress::write_v2_varint(&g, &mut vz).unwrap();
        assert_same_graph(&g, &io::read_binary(&vz[..]).unwrap());
    }

    /// The chunk-spilling external builder builds exactly the graph the
    /// in-RAM builder builds — tiny chunks force real spill runs and a
    /// k-way merge.
    #[test]
    fn external_builder_matches_in_ram_builder(
        edges in edges_strategy(),
        chunk in 1usize..64,
        sym in 0u32..2,
        case in 0u64..u64::MAX,
    ) {
        let symmetrize = sym == 1;
        let mut in_ram = GraphBuilder::new();
        in_ram.symmetrize(symmetrize);
        let mut ext = ExternalGraphBuilder::with_chunk_edges(chunk);
        ext.symmetrize(symmetrize);
        for &(u, v) in &edges {
            in_ram.add_edge(u, v);
            ext.add_edge(u, v).unwrap();
        }
        let expected = in_ram.build();

        let path = scratch("ext", case);
        let stats = ext.build(&path).unwrap();
        let built = FileCsr::open(&path).unwrap();
        prop_assert_eq!(stats.edges, expected.num_edges());
        assert_same_graph(&expected, &built);
        std::fs::remove_file(&path).ok();
    }

    /// SNAPLE prediction rows are bit-identical whichever storage
    /// backend serves the adjacency.
    #[test]
    fn predictions_identical_across_backends(
        edges in proptest::collection::vec((0u32..32, 0u32..32), 10..120),
        case in 0u64..u64::MAX,
    ) {
        let g = build(&edges);
        let mut raw = Vec::new();
        io::write_binary(&g, &mut raw).unwrap();
        let path = scratch("pred", case);
        std::fs::write(&path, &raw).unwrap();
        let file_csr = FileCsr::open(&path).unwrap();
        let varint = {
            let mut vz = Vec::new();
            compress::write_v2_varint(&g, &mut vz).unwrap();
            let vz_path = scratch("predvz", case);
            std::fs::write(&vz_path, &vz).unwrap();
            let c = CompressedGraph::open(&vz_path).unwrap();
            std::fs::remove_file(&vz_path).ok();
            c
        };

        let cluster = ClusterSpec::type_i(2);
        let snaple = Snaple::new(
            SnapleConfig::new(NamedScore::LinearSum).k(4).klocal(Some(8)).seed(7),
        );
        let backends: [&dyn GraphStore; 3] = [&g, &file_csr, &varint];
        let mut reference: Option<Vec<Row>> = None;
        for backend in backends {
            let pred = snaple.predict(&PredictRequest::new(backend, &cluster)).unwrap();
            let rows: Vec<Row> = store::vertices(backend)
                .map(|v| (v.as_u32(), pred.for_vertex(v).to_vec()))
                .collect();
            match &reference {
                None => reference = Some(rows),
                Some(expected) => prop_assert_eq!(
                    expected,
                    &rows,
                    "rows diverged on backend {}",
                    backend.backend_name()
                ),
            }
        }
        std::fs::remove_file(&path).ok();
    }

    /// Truncations and bit flips of SNPLG2 bytes (both flavors) are
    /// rejected with typed errors on every open path — never a panic.
    #[test]
    fn forged_snplg2_never_panics(
        edges in edges_strategy(),
        cut in 0usize..4096,
        flip in 0usize..4096,
        case in 0u64..u64::MAX,
    ) {
        let g = build(&edges);
        let mut raw = Vec::new();
        io::write_binary(&g, &mut raw).unwrap();
        let mut vz = Vec::new();
        compress::write_v2_varint(&g, &mut vz).unwrap();

        let path = scratch("forge", case);
        for buf in [&raw, &vz] {
            // Truncation: error or valid graph, never a panic.
            let cut = cut.min(buf.len());
            let _ = io::read_binary(&buf[..cut]);
            std::fs::write(&path, &buf[..cut]).unwrap();
            let _ = FileCsr::open(&path);
            let _ = CompressedGraph::open(&path);
            let _ = io::open_store(&path);
            // Bit flip: same.
            if !buf.is_empty() {
                let mut forged = (*buf).clone();
                let i = flip % forged.len();
                forged[i] ^= 0x5a;
                let _ = io::read_binary(&forged[..]);
                std::fs::write(&path, &forged).unwrap();
                let _ = FileCsr::open(&path);
                let _ = CompressedGraph::open(&path);
                let _ = io::open_store(&path);
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

/// `FileCsr` refuses to open a varint-flavored file (the zero-parse
/// contract only holds for raw sections) and `CompressedGraph` refuses
/// a raw one — both with typed errors naming the right entry point.
#[test]
fn flavor_mismatch_is_a_typed_error() {
    let g = build(&[(0, 1), (1, 2), (2, 0)]);
    let dir = std::env::temp_dir();
    let raw_path = dir.join(format!("snaple-dp-flavor-raw-{}.snplg", std::process::id()));
    let vz_path = dir.join(format!("snaple-dp-flavor-vz-{}.snplg", std::process::id()));

    let mut raw = Vec::new();
    io::write_binary(&g, &mut raw).unwrap();
    std::fs::write(&raw_path, &raw).unwrap();
    let mut vz = Vec::new();
    compress::write_v2_varint(&g, &mut vz).unwrap();
    std::fs::write(&vz_path, &vz).unwrap();

    assert!(CompressedGraph::open(&raw_path).is_err());
    assert!(FileCsr::open(&vz_path).is_err());
    // open_store dispatches both correctly.
    assert_eq!(
        io::open_store(&raw_path).unwrap().backend_name(),
        "file-csr"
    );
    assert_eq!(io::open_store(&vz_path).unwrap().backend_name(), "varint");

    std::fs::remove_file(&raw_path).ok();
    std::fs::remove_file(&vz_path).ok();
}
