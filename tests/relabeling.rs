//! Degree-ordered relabeling round-trips: predictions computed on a
//! relabeled graph, mapped back through the inverse permutation, must
//! match predictions on the original graph.
//!
//! What "match" means follows the same taxonomy as
//! `tests/distribution_invariance.rs`:
//!
//! * **Bit-identity under any permutation** holds for configurations whose
//!   arithmetic is label-free: integer-valued scoring (counter) and
//!   per-candidate set arithmetic (the baseline's plain Jaccard), run
//!   without label-keyed sampling (`thrΓ`/`klocal` hash vertex ids) and
//!   without top-k truncation (score ties at the cut are broken by id).
//! * **Tolerance** (1e-3, the repo's float precedent) for float-summed
//!   configurations: partition edge order is label-keyed, so f32 folds
//!   reassociate under relabeling.
//! * **Identity-permutation strictness** for every backend, including the
//!   hash-seeded random walk (its rng is seeded per vertex *label*, so
//!   non-identity permutations legitimately change its samples) and the
//!   supervised re-ranker: the full relabel wrapper — `apply` plus row
//!   mapping — must be exactly transparent when the permutation is trivial.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snaple::baseline::{Baseline, BaselineConfig};
use snaple::cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple::core::{NamedScore, PredictRequest, Prediction, Predictor, Snaple, SnapleConfig};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::{self, datasets, CommunityParams};
use snaple::graph::relabel::Relabeling;
use snaple::graph::{CsrGraph, VertexId};

fn random_graph(n: usize, m_per_vertex: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    gen::community_graph(
        n,
        CommunityParams {
            m: m_per_vertex,
            p_triad: 0.4,
            p_community: 0.7,
            mean_community_size: 15,
        },
        &mut rng,
    )
    .into_symmetric_graph()
}

/// Row of `relabeled_pred` for old vertex `u`, translated back to old ids
/// and sorted by candidate id (row order may legitimately differ when
/// scores tie, so comparisons are order-insensitive).
fn mapped_back(relabeled_pred: &Prediction, r: &Relabeling, u: VertexId) -> Vec<(VertexId, f32)> {
    let mut row: Vec<(VertexId, f32)> = relabeled_pred
        .for_vertex(r.to_new(u))
        .iter()
        .map(|&(z, s)| (r.to_old(z), s))
        .collect();
    row.sort_by_key(|&(z, _)| z);
    row
}

fn sorted_by_id(row: &[(VertexId, f32)]) -> Vec<(VertexId, f32)> {
    let mut row = row.to_vec();
    row.sort_by_key(|&(z, _)| z);
    row
}

/// The label-free exact backends: integer scoring and per-candidate set
/// arithmetic, no sampling, k large enough that no row is truncated.
fn exact_backends() -> Vec<(&'static str, Box<dyn Predictor>)> {
    vec![
        (
            "snaple-counter",
            Box::new(Snaple::new(
                SnapleConfig::new(NamedScore::Counter)
                    .k(1_000)
                    .klocal(None)
                    .thr_gamma(None)
                    .seed(7),
            )),
        ),
        (
            "baseline",
            Box::new(Baseline::new(BaselineConfig::new().k(1_000).seed(7))),
        ),
    ]
}

fn assert_rows_bit_identical(
    label: &str,
    graph: &CsrGraph,
    r: &Relabeling,
    original: &Prediction,
    relabeled: &Prediction,
) {
    for u in graph.vertices() {
        let expect = sorted_by_id(original.for_vertex(u));
        let got = mapped_back(relabeled, r, u);
        assert_eq!(expect.len(), got.len(), "{label}: vertex {u:?} row length");
        for (i, ((ze, se), (zg, sg))) in expect.iter().zip(&got).enumerate() {
            assert_eq!(ze, zg, "{label}: vertex {u:?} candidate #{i}");
            assert_eq!(
                se.to_bits(),
                sg.to_bits(),
                "{label}: vertex {u:?} score for {ze:?}"
            );
        }
    }
}

#[test]
fn exact_backends_are_bit_identical_under_degree_relabeling() {
    let graph = random_graph(180, 3, 11);
    let cluster = ClusterSpec::type_ii(2);
    let r = Relabeling::degree_order(&graph);
    let relabeled_graph = r.apply(&graph);
    for (label, predictor) in exact_backends() {
        let original = predictor
            .predict(&PredictRequest::new(&graph, &cluster))
            .unwrap();
        let relabeled = predictor
            .predict(&PredictRequest::new(&relabeled_graph, &cluster))
            .unwrap();
        assert_rows_bit_identical(label, &graph, &r, &original, &relabeled);
    }
}

#[test]
fn float_configs_agree_within_tolerance_under_degree_relabeling() {
    let graph = random_graph(150, 3, 23);
    let cluster = ClusterSpec::type_ii(2);
    let r = Relabeling::degree_order(&graph);
    let relabeled_graph = r.apply(&graph);
    // No sampling and no truncation: the candidate sets are label-free,
    // only the f32 fold order moves — the repo's 1e-3 float precedent.
    let predictor = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(1_000)
            .klocal(None)
            .thr_gamma(None)
            .seed(7),
    );
    let original = predictor
        .predict(&PredictRequest::new(&graph, &cluster))
        .unwrap();
    let relabeled = predictor
        .predict(&PredictRequest::new(&relabeled_graph, &cluster))
        .unwrap();
    for u in graph.vertices() {
        let expect = sorted_by_id(original.for_vertex(u));
        let got = mapped_back(&relabeled, &r, u);
        assert_eq!(expect.len(), got.len(), "vertex {u:?} row length");
        for ((ze, se), (zg, sg)) in expect.iter().zip(&got) {
            assert_eq!(ze, zg, "vertex {u:?} candidate set");
            assert!(
                (se - sg).abs() < 1e-3,
                "vertex {u:?} candidate {ze:?}: {se} vs {sg}"
            );
        }
    }
}

/// The full wrapper — [`Relabeling::apply`] plus row mapping — must be
/// exactly transparent under the identity permutation for **all four
/// backends**, including the hash-seeded ones whose randomness is keyed
/// to vertex labels.
#[test]
fn all_backends_round_trip_under_identity_relabeling() {
    use snaple::supervised::{SupervisedConfig, SupervisedSnaple};
    let graph = datasets::GOWALLA.emulate(0.004, 3);
    let cluster = ClusterSpec::type_ii(2);
    let r = Relabeling::identity(graph.num_vertices());
    let relabeled_graph = r.apply(&graph);

    let mut backends: Vec<(&'static str, Box<dyn Predictor>)> = vec![
        (
            "snaple",
            Box::new(Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .k(5)
                    .klocal(Some(8))
                    .seed(42),
            )),
        ),
        (
            "baseline",
            Box::new(Baseline::new(BaselineConfig::new().k(5).seed(42))),
        ),
        (
            "random-walk-ppr",
            Box::new(RandomWalkPpr::new(
                RandomWalkConfig::new().walks(15).depth(3).seed(42),
            )),
        ),
    ];
    let supervised = SupervisedSnaple::new(SupervisedConfig::new().k(3).seed(3))
        .train(&graph, &cluster)
        .unwrap();
    backends.push(("supervised", Box::new(supervised)));

    for (label, predictor) in backends {
        let original = predictor
            .predict(&PredictRequest::new(&graph, &cluster))
            .unwrap();
        let relabeled = predictor
            .predict(&PredictRequest::new(&relabeled_graph, &cluster))
            .unwrap();
        for (u, expect) in original.iter() {
            let got = mapped_back(&relabeled, &r, u);
            assert_eq!(
                sorted_by_id(expect),
                got,
                "{label}: vertex {u:?} diverged under the identity relabeling"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Bit-identity for the exact backends holds under *arbitrary*
    /// permutations, not just the degree ordering.
    #[test]
    fn exact_backends_are_bit_identical_under_random_permutations(
        graph_seed in 0u64..1_000,
        perm_seed in 0u64..1_000,
    ) {
        let graph = random_graph(120, 3, graph_seed);
        let cluster = ClusterSpec::type_ii(2);
        let mut order: Vec<VertexId> = graph.vertices().collect();
        let mut rng = StdRng::seed_from_u64(perm_seed);
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let r = Relabeling::from_order(order);
        let relabeled_graph = r.apply(&graph);
        for (label, predictor) in exact_backends() {
            let original = predictor
                .predict(&PredictRequest::new(&graph, &cluster))
                .unwrap();
            let relabeled = predictor
                .predict(&PredictRequest::new(&relabeled_graph, &cluster))
                .unwrap();
            for u in graph.vertices() {
                let expect = sorted_by_id(original.for_vertex(u));
                let got = mapped_back(&relabeled, &r, u);
                prop_assert_eq!(
                    expect.len(), got.len(),
                    "{}: vertex {:?} row length", label, u
                );
                for ((ze, se), (zg, sg)) in expect.iter().zip(&got) {
                    prop_assert_eq!(ze, zg, "{}: vertex {:?}", label, u);
                    prop_assert_eq!(
                        se.to_bits(), sg.to_bits(),
                        "{}: vertex {:?} score for {:?}", label, u, ze
                    );
                }
            }
        }
    }
}
