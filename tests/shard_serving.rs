//! The shard-serving contract.
//!
//! What the scatter-gather [`ShardRouter`] guarantees, and what this
//! suite proves:
//!
//! 1. **Bit-identity** — for every shard count (1..=4) and both
//!    transports (threads, `snaple-shardd` processes), the rows served
//!    through the router are byte-identical to a single-process
//!    [`ConcurrentServer`] and to a directly-prepared predictor, for
//!    SNAPLE configs and multi-spec plans alike.
//! 2. **Deltas mid-stream** — a [`GraphDelta`] broadcast through
//!    [`RouterHandle::apply_update`] swaps every shard to the post-delta
//!    epoch; rows served afterwards equal a cold rebuild on the mutated
//!    graph, bit for bit, on both transports.
//! 3. **Fault containment** — a hard-killed shard process surfaces as
//!    [`SnapleError::ShardFailed`] on the requests routed to it (never a
//!    hang and never a router crash), the surviving shards keep serving,
//!    and [`RouterHandle::drain`] still completes.

use snaple::core::concurrent::{ConcurrentOptions, ConcurrentServer};
use snaple::core::shard::{ShardOptions, ShardRouter, ShardSpec, ShardTransport};
use snaple::core::{
    ExecuteRequest, NamedScore, PlanConfig, Prediction, Predictor, PrepareRequest, QuerySet,
    ScorePlan, ScoreSpec, Snaple, SnapleConfig, SnapleError,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphDelta};

/// The `snaple-shardd` binary Cargo built alongside this test.
const SHARDD: &str = env!("CARGO_BIN_EXE_snaple-shardd");

fn config() -> SnapleConfig {
    SnapleConfig::new(NamedScore::LinearSum)
        .k(5)
        .klocal(Some(10))
}

fn setup() -> (CsrGraph, ClusterSpec) {
    (datasets::GOWALLA.emulate(0.004, 3), ClusterSpec::type_ii(8))
}

fn options(shards: usize, transport: ShardTransport) -> ShardOptions {
    ShardOptions::new()
        .shards(shards)
        .transport(transport)
        .shardd_binary(SHARDD)
}

fn churn(graph: &CsrGraph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for (u, v) in graph.edges().take(4) {
        delta.remove(u.as_u32(), v.as_u32());
    }
    let n = graph.num_vertices() as u32;
    delta.insert(2, n - 1).insert(n - 3, 5).insert(7, n - 4);
    delta
}

fn rows_equal(request: &QuerySet, a: &Prediction, b: &Prediction) -> bool {
    request.iter().all(|q| a.for_vertex(q) == b.for_vertex(q))
}

const TRANSPORTS: [ShardTransport; 2] = [ShardTransport::Threads, ShardTransport::Processes];

#[test]
fn sharded_rows_are_bit_identical_for_every_shard_count_and_transport() {
    // The tentpole acceptance property: scatter-gather across 1..=4
    // shards, on both transports, serves exactly the rows the
    // single-process oracle serves.
    let (graph, cluster) = setup();
    let snaple = Snaple::new(config());
    let requests: Vec<QuerySet> = (0..6)
        .map(|seed| QuerySet::sample(graph.num_vertices(), 25 + seed as usize, seed))
        .collect();

    let prepared = snaple
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    let expected: Vec<Prediction> = requests
        .iter()
        .map(|q| {
            prepared
                .execute(&ExecuteRequest::new().with_queries(q))
                .unwrap()
        })
        .collect();

    let spec = ShardSpec::Single(config());
    for transport in TRANSPORTS {
        for shards in 1..=4 {
            let outcome = ShardRouter::run(
                &spec,
                &graph,
                &cluster,
                options(shards, transport),
                |handle| {
                    requests
                        .iter()
                        .map(|q| handle.serve(q).unwrap())
                        .collect::<Vec<_>>()
                },
            )
            .unwrap();
            for (request, (got, want)) in requests.iter().zip(outcome.value.iter().zip(&expected)) {
                assert!(
                    rows_equal(request, got, want),
                    "rows diverged: {shards} shards, {transport:?}"
                );
            }
            assert_eq!(outcome.stats.requests, requests.len());
            assert_eq!(outcome.stats.workers, shards);
            // One shard-side latency sample per (request, involved
            // shard) pair — at least one per request.
            assert!(outcome.stats.latency.count() as usize >= requests.len());
        }
    }
}

#[test]
fn sharded_rows_match_the_concurrent_server() {
    // Cross-runtime equivalence: the shard router and the worker-pool
    // server answer the same requests identically.
    let (graph, cluster) = setup();
    let snaple = Snaple::new(config());
    let requests: Vec<QuerySet> = (0..4)
        .map(|seed| QuerySet::sample(graph.num_vertices(), 30, 10 + seed))
        .collect();

    let concurrent = ConcurrentServer::run(
        &snaple,
        &graph,
        &cluster,
        ConcurrentOptions::default().workers(2),
        |handle| {
            requests
                .iter()
                .map(|q| handle.serve(q).unwrap())
                .collect::<Vec<_>>()
        },
    )
    .unwrap();

    let outcome = ShardRouter::run(
        &ShardSpec::Single(config()),
        &graph,
        &cluster,
        options(3, ShardTransport::Threads),
        |handle| {
            requests
                .iter()
                .map(|q| handle.serve(q).unwrap())
                .collect::<Vec<_>>()
        },
    )
    .unwrap();

    for (request, (a, b)) in requests
        .iter()
        .zip(outcome.value.iter().zip(&concurrent.value))
    {
        assert!(rows_equal(request, a, b), "shard router vs worker pool");
    }
}

#[test]
fn plan_specs_serve_identically_through_shards() {
    // The multi-score path: a ShardSpec::Plan serves the same rows as
    // the locally-compiled ScorePlan.
    let (graph, cluster) = setup();
    let specs = ["linearSum", "counter"];
    let plan = ScorePlan::with_config(
        specs.iter().map(|s| ScoreSpec::parse(s).unwrap()).collect(),
        PlanConfig::default(),
    )
    .unwrap();
    let request = QuerySet::sample(graph.num_vertices(), 40, 5);
    let prepared = plan
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    let expected = prepared
        .execute(&ExecuteRequest::new().with_queries(&request))
        .unwrap();

    let spec = ShardSpec::Plan {
        specs: specs.iter().map(|s| s.to_string()).collect(),
        config: PlanConfig::default(),
    };
    for transport in TRANSPORTS {
        let outcome = ShardRouter::run(&spec, &graph, &cluster, options(2, transport), |handle| {
            handle.serve(&request).unwrap()
        })
        .unwrap();
        assert!(
            rows_equal(&request, &outcome.value, &expected),
            "plan rows diverged over {transport:?}"
        );
    }
}

#[test]
fn deltas_broadcast_to_every_shard_and_match_a_cold_rebuild() {
    // Requests interleaved with a delta: pre-delta rows equal the
    // pre-delta oracle, post-delta rows equal a cold rebuild on the
    // mutated graph — per shard count and transport.
    let (graph, cluster) = setup();
    let snaple = Snaple::new(config());
    let delta = churn(&graph);
    let request = QuerySet::sample(graph.num_vertices(), 35, 11);

    let prepared = snaple
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    let before = prepared
        .execute(&ExecuteRequest::new().with_queries(&request))
        .unwrap();
    let (forked, _) = prepared.fork_with_delta(&delta).unwrap();
    let after = forked
        .execute(&ExecuteRequest::new().with_queries(&request))
        .unwrap();

    let spec = ShardSpec::Single(config());
    for transport in TRANSPORTS {
        for shards in [1, 3] {
            let outcome = ShardRouter::run(
                &spec,
                &graph,
                &cluster,
                options(shards, transport),
                |handle| {
                    let pre = handle.serve(&request).unwrap();
                    assert_eq!(handle.epoch(), 0);
                    let stats = handle.apply_update(&delta).unwrap();
                    assert_eq!(handle.epoch(), 1);
                    assert!(stats.inserted_edges > 0 && stats.removed_edges > 0);
                    let post = handle.serve(&request).unwrap();
                    (pre, post)
                },
            )
            .unwrap();
            let (pre, post) = outcome.value;
            assert!(
                rows_equal(&request, &pre, &before),
                "pre-delta rows diverged: {shards} shards, {transport:?}"
            );
            assert!(
                rows_equal(&request, &post, &after),
                "post-delta rows diverged: {shards} shards, {transport:?}"
            );
            assert_eq!(outcome.stats.updates, 1);
        }
    }
}

#[test]
fn seed_override_is_honored_by_every_shard() {
    // The router-level seed pin reaches each shard's execute path.
    let (graph, cluster) = setup();
    let snaple = Snaple::new(config());
    let request = QuerySet::sample(graph.num_vertices(), 30, 2);
    let prepared = snaple
        .prepare(&PrepareRequest::new(&graph, &cluster))
        .unwrap();
    let expected = prepared
        .execute(&ExecuteRequest::new().with_queries(&request).with_seed(99))
        .unwrap();

    let outcome = ShardRouter::run(
        &ShardSpec::Single(config()),
        &graph,
        &cluster,
        options(2, ShardTransport::Threads).seed(99),
        |handle| handle.serve(&request).unwrap(),
    )
    .unwrap();
    assert!(rows_equal(&request, &outcome.value, &expected));
}

#[test]
fn unusable_shard_counts_are_rejected_up_front() {
    let (graph, cluster) = setup();
    let spec = ShardSpec::Single(config());
    for shards in [0, cluster.nodes + 1] {
        let err = ShardRouter::run(
            &spec,
            &graph,
            &cluster,
            options(shards, ShardTransport::Threads),
            |_| (),
        )
        .unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("shard count"),
            "unhelpful rejection for shards={shards}: {message}"
        );
    }
}

#[test]
fn killed_shard_process_becomes_a_typed_error_not_a_hang() {
    // The fault-containment acceptance test: SIGKILL one shard daemon
    // mid-session. The router must *detect* the death (broken pipe /
    // EOF), type it as ShardFailed on affected requests, keep serving
    // the other shards, and still drain.
    let (graph, cluster) = setup();
    let spec = ShardSpec::Single(config());
    let outcome = ShardRouter::run(
        &spec,
        &graph,
        &cluster,
        options(3, ShardTransport::Processes),
        |handle| {
            // Sanity: the full fleet serves.
            let warm = QuerySet::sample(graph.num_vertices(), 20, 1);
            handle.serve(&warm).unwrap();

            // Partition some vertices by owner so requests can be aimed.
            let victim = 0usize;
            let mut on_victim = Vec::new();
            let mut on_survivors = Vec::new();
            for v in 0..graph.num_vertices() as u32 {
                if handle.shard_of(v) == victim {
                    on_victim.push(v);
                } else {
                    on_survivors.push(v);
                }
                if on_victim.len() >= 5 && on_survivors.len() >= 5 {
                    break;
                }
            }
            assert!(on_victim.len() >= 5 && on_survivors.len() >= 5);

            handle.kill_shard(victim);

            // Requests routed to the dead shard fail with the typed
            // error — whether they fail fast at submit or at wait is a
            // timing detail; hanging or panicking is the bug.
            let err = handle
                .serve(&QuerySet::from_indices(on_victim.iter().copied().take(5)))
                .unwrap_err();
            match err {
                SnapleError::ShardFailed { shard, .. } => assert_eq!(shard, victim),
                other => panic!("expected ShardFailed, got {other}"),
            }

            // An update now also reports the dead shard.
            let err = handle.apply_update(&churn(&graph)).unwrap_err();
            assert!(matches!(err, SnapleError::ShardFailed { .. }), "{err}");

            // Survivors keep serving.
            let alive = QuerySet::from_indices(on_survivors.iter().copied().take(5));
            handle.serve(&alive).unwrap();

            // And the router still drains instead of waiting on a ghost.
            handle.drain();
        },
    )
    .unwrap();
    // The dead shard contributed no final stats; the run still reports.
    assert_eq!(outcome.stats.workers, 3);
}

#[test]
fn killed_thread_shard_fails_future_requests_with_a_typed_error() {
    // Thread-transport flavor of fault containment: closing the command
    // stream retires the shard; requests aimed at it get ShardFailed,
    // the rest of the fleet keeps working, drain completes.
    let (graph, cluster) = setup();
    let spec = ShardSpec::Single(config());
    ShardRouter::run(
        &spec,
        &graph,
        &cluster,
        options(2, ShardTransport::Threads),
        |handle| {
            let victim = 1usize;
            let v_dead = (0..graph.num_vertices() as u32)
                .find(|&v| handle.shard_of(v) == victim)
                .unwrap();
            let v_alive = (0..graph.num_vertices() as u32)
                .find(|&v| handle.shard_of(v) != victim)
                .unwrap();

            handle.kill_shard(victim);
            let err = handle.serve(&QuerySet::from_indices([v_dead])).unwrap_err();
            assert!(matches!(err, SnapleError::ShardFailed { shard, .. } if shard == victim));
            handle.serve(&QuerySet::from_indices([v_alive])).unwrap();
            handle.drain();
        },
    )
    .unwrap();
}

#[test]
fn empty_query_sets_answer_without_touching_any_shard() {
    let (graph, cluster) = setup();
    let outcome = ShardRouter::run(
        &ShardSpec::Single(config()),
        &graph,
        &cluster,
        options(2, ShardTransport::Threads),
        |handle| handle.serve(&QuerySet::from_indices([])).unwrap(),
    )
    .unwrap();
    assert_eq!(outcome.value.num_vertices(), graph.num_vertices());
    assert!((0..graph.num_vertices() as u32).all(|v| outcome
        .value
        .for_vertex(snaple::graph::VertexId::new(v))
        .is_empty()));
}
