//! The fused-execution contract of [`ScorePlan`]: every column of a fused
//! multi-score sweep is **bit-identical** to running that column's spec
//! alone as a standalone [`Snaple`] — for all-vertices runs, for
//! query-subset runs, and before and after streaming graph deltas — while
//! the fused sweep performs a fraction of the independent runs' gather
//! work.
//!
//! Also hosts the regression test for `intersection_size`'s sortedness
//! contract: adjacency built through the shuffled-insertion constructor
//! path must come out sorted, so every similarity computed over it is
//! exact.

use proptest::prelude::*;

use snaple::core::similarity::intersection_size;
use snaple::core::{
    ExecuteRequest, PlanConfig, Predictor, PrepareRequest, QuerySet, Registry, ScorePlan,
};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::{CsrGraph, GraphBuilder, GraphDelta, VertexId};

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..40, 0u32..40), 1..300)
}

/// A deterministic delta for `graph`: retracts every 7th edge and inserts
/// a few probe non-edges (plus one vertex-growing edge).
fn small_delta(graph: &CsrGraph) -> GraphDelta {
    let mut delta = GraphDelta::new();
    for (i, (u, v)) in graph.edges().enumerate() {
        if i % 7 == 0 {
            delta.remove(u.as_u32(), v.as_u32());
        }
    }
    let n = graph.num_vertices() as u32;
    let mut inserted = 0;
    'probe: for u in 0..n {
        for v in (u + 1)..n {
            if !graph.has_edge(VertexId::new(u), VertexId::new(v)) {
                delta.insert(u, v);
                inserted += 1;
                if inserted == 3 {
                    break 'probe;
                }
            }
        }
    }
    delta.insert(n + 2, 0);
    delta
}

/// Asserts every fused column equals its standalone run on `graph`, for
/// the full vertex set and for `queries`; returns (fused, independent)
/// total gather-call counts of the all-vertices comparison.
fn assert_columns_match(plan: &ScorePlan, graph: &CsrGraph, queries: &QuerySet) -> (u64, u64) {
    let cluster = ClusterSpec::type_ii(4);
    let prepared = plan
        .prepare_plan(&PrepareRequest::new(graph, &cluster))
        .expect("prepare plan");
    let full = prepared
        .execute_matrix(&ExecuteRequest::new())
        .expect("fused all-vertices");
    let targeted = prepared
        .execute_matrix(&ExecuteRequest::new().with_queries(queries))
        .expect("fused targeted");

    let fused_gathers: u64 = full.stats.steps.iter().map(|s| s.gather_calls).sum();
    let mut independent_gathers = 0u64;
    for col in 0..plan.num_columns() {
        let standalone = plan.column_snaple(col);
        let solo_prepared = standalone
            .prepare(&PrepareRequest::new(graph, &cluster))
            .expect("prepare standalone");
        let solo = solo_prepared
            .execute(&ExecuteRequest::new())
            .expect("standalone all-vertices");
        independent_gathers += solo.stats.steps.iter().map(|s| s.gather_calls).sum::<u64>();
        for (u, rows) in full.column_rows(col) {
            assert_eq!(rows, solo.for_vertex(u), "column {col} row {u} diverged");
        }
        let solo_targeted = solo_prepared
            .execute(&ExecuteRequest::new().with_queries(queries))
            .expect("standalone targeted");
        for (u, rows) in targeted.column_rows(col) {
            if queries.contains(u) {
                assert_eq!(rows, solo.for_vertex(u), "targeted column {col} row {u}");
                assert_eq!(
                    rows,
                    solo_targeted.for_vertex(u),
                    "targeted-vs-targeted column {col} row {u}"
                );
            } else {
                assert!(rows.is_empty(), "non-queried column {col} row {u}");
            }
        }
    }
    (fused_gathers, independent_gathers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property on arbitrary graphs: a 4-spec plan's
    /// columns are bit-identical to four independent Snaple runs —
    /// all-vertices and query-subset — and the fused sweep performs
    /// < 60% of their combined gather calls (when any gathering happens).
    #[test]
    fn fused_columns_equal_standalone_runs(edges in edges_strategy(), qseed in 0u64..50) {
        let graph = graph_from(&edges);
        let plan = ScorePlan::parse_with(
            &Registry::builtin(),
            "linearSum, counter, PPR, jaccard@agg=max@k3",
            PlanConfig::default().klocal(Some(8)).seed(7),
        ).expect("plan parses");
        let queries = QuerySet::sample(graph.num_vertices(), (graph.num_vertices() / 3).max(1), qseed);
        let (fused, independent) = assert_columns_match(&plan, &graph, &queries);
        if independent > 0 {
            prop_assert!(
                (fused as f64) < 0.6 * independent as f64,
                "fused {fused} gathers !< 60% of independent {independent}"
            );
        }
    }

    /// The same contract holds across a streaming delta: after
    /// `apply_delta` on the prepared plan, every column still equals the
    /// standalone run on the mutated graph (which itself equals a cold
    /// rebuild).
    #[test]
    fn fused_columns_survive_deltas(edges in edges_strategy(), qseed in 0u64..50) {
        let graph = graph_from(&edges);
        let cluster = ClusterSpec::type_ii(4);
        let plan = ScorePlan::parse_with(
            &Registry::builtin(),
            "linearSum, counter@k3",
            PlanConfig::default().klocal(Some(8)).seed(7),
        ).expect("plan parses");

        // Pre-delta equivalence on the base graph.
        let queries = QuerySet::sample(graph.num_vertices(), (graph.num_vertices() / 3).max(1), qseed);
        assert_columns_match(&plan, &graph, &queries);

        // Apply the delta in place, then re-check on the mutated graph.
        let delta = small_delta(&graph);
        let mut prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .expect("prepare plan");
        prepared.apply_delta(&delta).expect("apply delta");
        let mutated = graph.compact(&delta);
        let queries = QuerySet::sample(mutated.num_vertices(), (mutated.num_vertices() / 3).max(1), qseed);
        let warm = prepared
            .execute_matrix(&ExecuteRequest::new().with_queries(&queries))
            .expect("post-delta fused");
        for col in 0..plan.num_columns() {
            let solo = Predictor::predict(
                &plan.column_snaple(col),
                &snaple::core::PredictRequest::new(&mutated, &cluster).with_queries(&queries),
            )
            .expect("standalone on mutated graph");
            for (u, rows) in warm.column_rows(col) {
                prop_assert_eq!(rows, solo.for_vertex(u), "post-delta column {} row {}", col, u);
            }
        }
    }

    /// Adjacency reached through the shuffled-insertion constructor path
    /// is sorted, so `intersection_size`'s two-pointer merge (which
    /// debug-asserts sortedness and silently undercounts on unsorted
    /// input in release builds) is exact against a brute-force count.
    #[test]
    fn shuffled_adjacency_is_sorted_and_intersections_exact(
        mut edges in edges_strategy(),
        flip in 0u8..2,
    ) {
        // Shuffle the insertion order deterministically.
        edges.reverse();
        if flip == 1 {
            let third = edges.len() / 3;
            edges.rotate_left(third);
        }
        let graph = graph_from(&edges);
        let rows: Vec<Vec<VertexId>> = graph
            .vertices()
            .map(|u| graph.out_neighbors(u).to_vec())
            .collect();
        for row in &rows {
            prop_assert!(row.windows(2).all(|w| w[0] < w[1]), "unsorted CSR row");
        }
        for (i, a) in rows.iter().enumerate().take(12) {
            for b in rows.iter().skip(i) {
                let brute = a.iter().filter(|v| b.contains(v)).count();
                prop_assert_eq!(intersection_size(a, b), brute);
            }
        }
    }
}

/// The supervised feature panel's fused extraction matches the plan's
/// column semantics end to end: each panel column is the standalone run
/// of its named configuration at pool size.
#[test]
fn feature_panel_goes_through_the_fused_path() {
    use snaple::supervised::features::FeaturePanel;
    use snaple::supervised::SupervisedConfig;

    let graph = datasets::GOWALLA.emulate(0.004, 9);
    let cluster = ClusterSpec::type_ii(2);
    let config = SupervisedConfig::new().seed(9);
    let panel = FeaturePanel::new(&config);
    let plan = panel.plan().expect("panel plan");
    assert_eq!(plan.num_columns(), config.panel.len());

    // The panel's plan columns equal standalone runs...
    let queries = QuerySet::sample(graph.num_vertices(), graph.num_vertices() / 4, 3);
    assert_columns_match(&plan, &graph, &queries);

    // ...and the extracted table's score columns carry exactly those rows.
    let table = panel.extract(&graph, &cluster).expect("extract");
    let prepared = plan
        .prepare_plan(&PrepareRequest::new(&graph, &cluster))
        .expect("prepare");
    let matrix = prepared
        .execute_matrix(&ExecuteRequest::new())
        .expect("fused matrix");
    let mut checked = 0usize;
    for (u, z, features) in table.rows() {
        for (col, &feature) in features.iter().take(plan.num_columns()).enumerate() {
            let expected = matrix
                .scores(col, u)
                .iter()
                .find(|&&(id, _)| id == z)
                .map_or(0.0, |&(_, s)| s as f64);
            assert_eq!(feature, expected, "row ({u}, {z}) column {col}");
            checked += 1;
        }
    }
    assert!(checked > 0, "the panel must extract candidate rows");
}
