//! `snaple-shardd` — one serving shard over stdin/stdout.
//!
//! Spawned by the shard router in `--shard-procs` mode (or by
//! `ShardTransport::Processes` programmatically); speaks the length-
//! prefixed, checksummed wire protocol of `snaple_core::shard::wire`.
//! Not intended for interactive use.

fn main() {
    std::process::exit(snaple_core::shard::process::child_main());
}
