//! `snaple-cli` — command-line front end for the SNAPLE workspace.
//!
//! ```bash
//! # Emulate a dataset and write it as a binary graph file
//! snaple-cli emulate --dataset livejournal --scale 0.005 --out lj.snplg
//!
//! # Inspect any edge-list or binary graph
//! snaple-cli stats --graph lj.snplg
//!
//! # Predict missing links and print them as TSV
//! snaple-cli predict --graph lj.snplg --score linearSum --k 5 --klocal 20 \
//!     --nodes 4 --machine type-ii
//!
//! # Serve a query subset: only these users' rows are computed
//! snaple-cli predict --graph lj.snplg --queries 17,42,1001
//! snaple-cli predict --graph lj.snplg --query-sample 1000
//!
//! # Serve a *stream* of requests: prepare once, coalesce batches
//! snaple-cli serve --graph lj.snplg --requests stream.txt --batch 8
//! snaple-cli serve --graph lj.snplg --request-count 100 --request-size 50
//!
//! # Serve a *mixed* stream: predictions interleaved with edge updates
//! # (add/remove lines mutate the served graph in place)
//! snaple-cli serve --graph lj.snplg --updates mixed.txt --batch 8
//!
//! # Restartable serving: persist updates into a data dir; re-running
//! # recovers snapshot + log tail bit-identically after a crash
//! snaple-cli serve --graph lj.snplg --updates mixed.txt --data-dir ./state
//! snaple-cli serve --graph lj.snplg --requests stream.txt --data-dir ./state
//!
//! # Evaluate prediction quality under the paper's hold-out protocol
//! snaple-cli evaluate --graph lj.snplg --score counter --removals 1
//! ```

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

use snaple::core::concurrent::{ConcurrentOptions, ConcurrentServer, PendingPrediction};
use snaple::core::serve::Server;
use snaple::core::shard::{ShardOptions, ShardRouter, ShardSpec, ShardTransport};
use snaple::core::store::{Durability, DurabilityOptions, FsyncPolicy, RecoveryReport};
use snaple::core::{
    ExecuteRequest, GraphDelta, NamedScore, PlanConfig, PredictRequest, Predictor, PrepareRequest,
    QuerySet, Registry, ScorePlan, Snaple, SnapleConfig,
};
use snaple::eval::{metrics, HoldOut, TextTable};
use snaple::gas::ClusterSpec;
use snaple::graph::gen::datasets;
use snaple::graph::gen::rmat::RmatConfig;
use snaple::graph::stats::GraphSummary;
use snaple::graph::{
    compress, io, CompressedGraph, CsrGraph, ExternalGraphBuilder, FileCsr, GraphStore,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage("");
    };
    let result = if command == "graph" {
        // `graph` takes a sub-subcommand before the flags.
        let Some((sub, rest)) = rest.split_first() else {
            usage("graph needs a subcommand: convert or gen")
        };
        let opts = Options::parse(rest);
        match sub.as_str() {
            "convert" => cmd_graph_convert(&opts),
            "gen" => cmd_graph_gen(&opts),
            "--help" | "-h" | "help" => usage(""),
            other => usage(&format!(
                "unknown graph subcommand {other:?} (expected convert or gen)"
            )),
        }
    } else {
        let opts = Options::parse(rest);
        match command.as_str() {
            "emulate" => cmd_emulate(&opts),
            "stats" => cmd_stats(&opts),
            "predict" => cmd_predict(&opts),
            "serve" => cmd_serve(&opts),
            "evaluate" => cmd_evaluate(&opts),
            "sweep" => cmd_sweep(&opts),
            "--help" | "-h" | "help" => usage(""),
            other => usage(&format!("unknown command {other:?}")),
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

/// Flat flag bag shared by all subcommands.
#[derive(Debug, Default)]
struct Options {
    graph: Option<PathBuf>,
    out: Option<PathBuf>,
    dataset: Option<String>,
    scale: f64,
    seed: u64,
    score: String,
    k: usize,
    klocal: Option<usize>,
    thr_gamma: Option<usize>,
    alpha: Option<f32>,
    nodes: usize,
    machine: String,
    removals: usize,
    symmetrize: bool,
    scores: Option<String>,
    compare: bool,
    queries: Option<String>,
    query_sample: Option<usize>,
    requests: Option<String>,
    updates: Option<String>,
    batch: usize,
    request_count: Option<usize>,
    request_size: usize,
    workers: usize,
    shards: Option<usize>,
    shard_procs: bool,
    data_dir: Option<PathBuf>,
    fsync: String,
    snapshot_every: usize,
    retain: usize,
    graph_format: String,
    chunk_edges: Option<usize>,
    rmat_scale: Option<u32>,
    edges: Option<u64>,
}

impl Options {
    fn parse(args: &[String]) -> Options {
        let mut o = Options {
            scale: 0.01,
            seed: 42,
            score: "linearSum".into(),
            k: 5,
            klocal: Some(20),
            thr_gamma: Some(200),
            nodes: 4,
            machine: "type-ii".into(),
            removals: 1,
            batch: 8,
            request_size: 50,
            fsync: "always".into(),
            snapshot_every: 64,
            retain: 2,
            graph_format: "auto".into(),
            ..Options::default()
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> String {
                it.next()
                    .cloned()
                    .unwrap_or_else(|| usage(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--graph" => o.graph = Some(PathBuf::from(value("--graph"))),
                "--out" => o.out = Some(PathBuf::from(value("--out"))),
                "--dataset" => o.dataset = Some(value("--dataset")),
                "--scale" => o.scale = parse_num(&value("--scale"), "--scale"),
                "--seed" => o.seed = parse_num(&value("--seed"), "--seed"),
                "--score" => o.score = value("--score"),
                "--k" => o.k = parse_num(&value("--k"), "--k"),
                "--klocal" => {
                    let v = value("--klocal");
                    o.klocal = if v == "inf" {
                        None
                    } else {
                        Some(parse_num(&v, "--klocal"))
                    };
                }
                "--thr-gamma" => {
                    let v = value("--thr-gamma");
                    o.thr_gamma = if v == "inf" {
                        None
                    } else {
                        Some(parse_num(&v, "--thr-gamma"))
                    };
                }
                "--alpha" => o.alpha = Some(parse_num(&value("--alpha"), "--alpha")),
                "--nodes" => o.nodes = parse_num(&value("--nodes"), "--nodes"),
                "--machine" => o.machine = value("--machine"),
                "--removals" => o.removals = parse_num(&value("--removals"), "--removals"),
                "--symmetrize" => o.symmetrize = true,
                "--scores" => o.scores = Some(value("--scores")),
                "--compare" => o.compare = true,
                "--queries" => o.queries = Some(value("--queries")),
                "--query-sample" => {
                    o.query_sample = Some(parse_num(&value("--query-sample"), "--query-sample"))
                }
                "--requests" => o.requests = Some(value("--requests")),
                "--updates" => o.updates = Some(value("--updates")),
                "--batch" => o.batch = parse_num(&value("--batch"), "--batch"),
                "--request-count" => {
                    o.request_count = Some(parse_num(&value("--request-count"), "--request-count"))
                }
                "--request-size" => {
                    o.request_size = parse_num(&value("--request-size"), "--request-size")
                }
                "--workers" => o.workers = parse_num(&value("--workers"), "--workers"),
                "--shards" => o.shards = Some(parse_num(&value("--shards"), "--shards")),
                "--shard-procs" => o.shard_procs = true,
                "--data-dir" => o.data_dir = Some(PathBuf::from(value("--data-dir"))),
                "--fsync" => o.fsync = value("--fsync"),
                "--snapshot-every" => {
                    o.snapshot_every = parse_num(&value("--snapshot-every"), "--snapshot-every")
                }
                "--retain" => o.retain = parse_num(&value("--retain"), "--retain"),
                "--graph-format" => o.graph_format = value("--graph-format"),
                "--chunk-edges" => {
                    o.chunk_edges = Some(parse_num(&value("--chunk-edges"), "--chunk-edges"))
                }
                "--rmat-scale" => {
                    o.rmat_scale = Some(parse_num(&value("--rmat-scale"), "--rmat-scale"))
                }
                "--edges" => o.edges = Some(parse_num(&value("--edges"), "--edges")),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other:?}")),
            }
        }
        o
    }

    fn cluster(&self) -> Result<ClusterSpec, String> {
        match self.machine.as_str() {
            "type-i" => Ok(ClusterSpec::type_i(self.nodes)),
            "type-ii" => Ok(ClusterSpec::type_ii(self.nodes)),
            "single" => Ok(ClusterSpec::single_machine(20, 128 << 30)),
            other => Err(format!(
                "unknown machine type {other:?} (expected type-i, type-ii or single)"
            )),
        }
    }

    fn snaple_config(&self) -> Result<SnapleConfig, String> {
        let score = NamedScore::parse(&self.score).ok_or_else(|| {
            format!(
                "unknown score {:?}; available: {}",
                self.score,
                NamedScore::all().map(|s| s.name()).join(", ")
            )
        })?;
        Ok(SnapleConfig::new(score)
            .k(self.k)
            .klocal(self.klocal)
            .thr_gamma(self.thr_gamma)
            .alpha(self.alpha.unwrap_or(0.9))
            .seed(self.seed))
    }

    /// Builds the score plan of `--scores`, seeding the plan-level
    /// defaults from the shared prediction flags (`--k`, `--klocal`,
    /// `--thr-gamma`, `--seed`); per-spec `@` parameters win over the
    /// flags, and conflicting plan-scoped parameters are rejected with
    /// the parser's error.
    fn score_plan(&self) -> Result<ScorePlan, String> {
        let scores = self.scores.as_deref().ok_or("missing --scores")?;
        if let Some(alpha) = self.alpha {
            return Err(format!(
                "--alpha does not apply to --scores plans ({alpha} would be \
                 silently ignored); pin it per spec instead, e.g. \
                 'linearSum@alpha{alpha}'"
            ));
        }
        let config = PlanConfig::default()
            .k(self.k)
            .klocal(self.klocal)
            .thr_gamma(self.thr_gamma)
            .seed(self.seed);
        ScorePlan::parse_with(&Registry::builtin(), scores, config).map_err(|e| e.to_string())
    }

    /// Resolves `--queries`/`--query-sample` into a query set, validating
    /// every explicit id against the loaded graph *before* any heavy work
    /// starts — an out-of-range id gets a proper error naming it instead
    /// of surfacing from deep inside mask construction.
    fn query_set(&self, graph: &dyn GraphStore) -> Result<Option<QuerySet>, String> {
        match (&self.queries, self.query_sample) {
            (Some(_), Some(_)) => Err("--queries and --query-sample are mutually exclusive".into()),
            (Some(list), None) => {
                let ids: Result<Vec<u32>, _> =
                    list.split(',').map(|s| s.trim().parse::<u32>()).collect();
                let ids = ids.map_err(|_| {
                    format!("--queries expects comma-separated vertex ids, got {list:?}")
                })?;
                let num_vertices = graph.num_vertices();
                if let Some(&bad) = ids.iter().find(|&&id| id as usize >= num_vertices) {
                    return Err(format!(
                        "--queries: vertex id {bad} is out of range — the graph has \
                         {num_vertices} vertices (valid ids are 0..={})",
                        num_vertices.saturating_sub(1)
                    ));
                }
                Ok(Some(QuerySet::from_indices(ids)))
            }
            (None, Some(count)) => Ok(Some(QuerySet::sample(
                graph.num_vertices(),
                count,
                self.seed,
            ))),
            (None, None) => Ok(None),
        }
    }
}

/// The serve-config blob snapshots record, compared on reopen to warn
/// about restarts with changed prediction flags.
fn serve_config_blob(opts: &Options) -> String {
    format!(
        "score={} scores={} k={} klocal={} thr_gamma={} alpha={} seed={}",
        opts.score,
        opts.scores.as_deref().unwrap_or("-"),
        opts.k,
        opts.klocal.map_or("inf".into(), |v: usize| v.to_string()),
        opts.thr_gamma
            .map_or("inf".into(), |v: usize| v.to_string()),
        opts.alpha.map_or("-".into(), |v: f32| v.to_string()),
        opts.seed,
    )
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| usage(&format!("invalid value {s:?} for {flag}")))
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "snaple-cli — link prediction from the command line

commands:
  emulate   --dataset NAME --scale F [--seed N] --out FILE
            synthesize a stand-in for a paper dataset (gowalla, pokec,
            orkut, livejournal, twitter-rv) and write it out
  stats     --graph FILE
            print structural statistics of a graph
  predict   --graph FILE [--score S | --scores PLAN] [--k N]
            [--klocal N|inf] [--thr-gamma N|inf] [--alpha F] [--nodes N]
            [--machine type-i|type-ii|single] [--out FILE]
            [--queries IDS | --query-sample N]
            run SNAPLE and emit 'source target score' lines;
            --queries (comma-separated ids) or --query-sample (random
            subset of N sources) restrict the run to those users.
            --scores takes a comma-separated score plan (e.g.
            'linearSum, jaccard@k16, cosine*0.7+common') evaluated in
            ONE fused sweep, emitting 'label source target score' lines
            — see the snaple_core::spec docs for the grammar
  serve     --graph FILE [prediction flags] [--batch N] [--workers N]
            [--shards N [--shard-procs]] [--out FILE]
            [--data-dir DIR [--fsync always|batch] [--snapshot-every K]
             [--retain N]]
            (--requests FILE|- | --updates FILE|- |
             --request-count N [--request-size M])
            prepare once, then answer a stream of query-set requests,
            coalescing up to --batch requests per shared superstep run;
            --requests reads one request per line (comma-separated
            vertex ids; '-' reads stdin), --request-count samples a
            synthetic stream; emits 'request source target score' lines
            and a throughput/latency summary (p50/p95/p99).
            --updates reads a *mixed* predict/update stream instead:
            'predict IDS' (or a bare id list) requests predictions,
            'add U V [W]' / 'remove U V' mutate the served graph
            (consecutive mutations coalesce into one delta batch;
            predictions after an update reflect the mutated graph,
            bit-identical to a cold restart on it).
            --workers N serves through the concurrent runtime instead:
            a pool of N threads executes against one shared snapshot
            and updates swap in post-delta epochs without stalling
            reads — rows stay bit-identical to the sequential server
            --shards N serves through the scatter-gather shard router:
            N isolated shard runtimes each own the vertices whose
            master partition falls in their block (N must be 1..=the
            cluster's --nodes); requests scatter to the owning shards,
            updates broadcast to all of them, and rows stay
            bit-identical to the single-process paths. --shard-procs
            hosts each shard in a snaple-shardd child process speaking
            the checksummed wire protocol over pipes (default:
            in-process threads exchanging the same frames)
            --data-dir DIR makes the server RESTARTABLE: updates append
            to an fsync'd, checksummed commitlog before applying, and
            every --snapshot-every K updates (default 64) a compacted
            checkpoint is written (keeping --retain N, default 2).
            Re-running with the same --data-dir recovers the newest
            valid snapshot + log tail — bit-identical to a server that
            never stopped; torn log tails and corrupt snapshots are
            repaired and reported, never fatal. --fsync batch trades
            the per-update fsync for one every 32 appends.
            (--data-dir works on the sequential and --workers paths,
            not --shards)
  evaluate  --graph FILE [--removals N] [prediction flags]
            [--queries IDS | --query-sample N]
            hold out edges, predict, and report recall/precision/MRR;
            with a query subset, metrics range over the queried
            sources only
  sweep     --graph FILE --scores PLAN [--removals N] [--compare]
            [cluster flags]
            evaluate every column of a score plan under the hold-out
            protocol in ONE fused sweep: prints a config x metric table
            (recall/precision/MRR + per-column work); --compare also
            runs each column standalone (N extra traversals) to print
            the fused-vs-independent gather-op comparison
  graph convert --graph FILE --out FILE [--graph-format v2|varint|v1]
            [--chunk-edges N] [--symmetrize]
            re-encode a graph between formats. Text edge lists convert
            to raw SNPLG2 OUT-OF-CORE: edges are chunk-sorted into spill
            runs of --chunk-edges each (default 4M) and k-way merged
            straight to disk, so inputs larger than RAM convert fine
  graph gen --rmat-scale S [--edges M] [--seed N] [--chunk-edges N]
            --out FILE
            stream a synthetic RMAT/Kronecker graph with 2^S vertices
            (default M = 16*2^S edges) through the out-of-core builder
            directly to a raw SNPLG2 file — graph size is bounded by
            disk, not RAM

serve accepts --scores too: the served rows are then the plan's
weighted combined ranking (one fused sweep per coalesced batch).

predict/serve accept --graph-format auto|csr|file|varint to pick the
storage backend ('auto' dispatches on the file magic): 'csr' is the
fully in-RAM adjacency, 'file' opens a raw SNPLG2 file zero-parse (the
on-disk sections ARE the CSR arrays — open cost is header + TOC only,
flat in graph size), 'varint' is the delta-varint compressed backend
(~2-4x smaller resident footprint). Rows are bit-identical across all
backends.

graphs bigger than RAM — quickstart:
  snaple-cli graph gen --rmat-scale 25 --out big.snplg     # ~0.5G edges
  snaple-cli graph convert --graph edges.txt --out big.snplg  # or yours
  snaple-cli predict --graph big.snplg --graph-format file \\
             --query-sample 64 --out rows.txt
the generator and converter never hold the graph in memory (chunked
spill runs + k-way merge), and --graph-format file serves straight off
the on-disk layout.

graph files: '.snplg' binary (from emulate/--out) or text edge lists
(one 'src dst [weight]' per line; add --symmetrize for undirected input)."
    );
    exit(if error.is_empty() { 0 } else { 2 })
}

fn load_graph(opts: &Options) -> Result<CsrGraph, String> {
    let path = opts.graph.as_ref().ok_or("missing --graph")?;
    let file = File::open(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let reader = BufReader::new(file);
    let result = if is_binary(path) {
        io::read_binary(reader)
    } else {
        io::read_edge_list(reader, opts.symmetrize)
    };
    result.map_err(|e| format!("{}: {e}", path.display()))
}

fn is_binary(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "snplg")
}

/// Loads `--graph` as the backend `--graph-format` selects:
///
/// * `auto` (default) — binary files open through
///   [`io::open_store`], which dispatches on the magic (zero-parse
///   `file-csr` for raw `SNPLG2`, `varint` for the compressed flavor,
///   in-RAM `csr` for legacy `SNPLG1`); text edge lists parse in RAM.
/// * `csr` — force a fully in-RAM [`CsrGraph`].
/// * `file` — force the zero-parse file-backed backend (raw `SNPLG2`
///   only; convert other inputs first with `graph convert`).
/// * `varint` — force the delta-varint compressed backend (re-encoding
///   in RAM when the input is not already varint-flavored).
fn load_store(opts: &Options) -> Result<Arc<dyn GraphStore>, String> {
    let path = opts.graph.as_ref().ok_or("missing --graph")?;
    match opts.graph_format.as_str() {
        "auto" if is_binary(path) => {
            io::open_store(path).map_err(|e| format!("{}: {e}", path.display()))
        }
        "auto" | "csr" => Ok(Arc::new(load_graph(opts)?)),
        "file" => {
            if !is_binary(path) {
                return Err(format!(
                    "--graph-format file needs a raw SNPLG2 binary; convert first: \
                     snaple-cli graph convert --graph {} --out graph.snplg",
                    path.display()
                ));
            }
            match FileCsr::open(path) {
                Ok(g) => Ok(Arc::new(g)),
                Err(e) => Err(format!("{}: {e}", path.display())),
            }
        }
        "varint" => {
            if is_binary(path) {
                if let Ok(g) = CompressedGraph::open(path) {
                    return Ok(Arc::new(g));
                }
            }
            // Not varint-flavored on disk: load and re-encode in RAM.
            let g = load_graph(opts)?;
            Ok(Arc::new(CompressedGraph::from_store(&g)))
        }
        other => Err(format!(
            "--graph-format expects auto, csr, file or varint, got {other:?}"
        )),
    }
}

/// `graph convert` — re-encode any readable graph into the requested
/// on-disk format (default: raw `SNPLG2`). Text edge lists stream
/// through the out-of-core [`ExternalGraphBuilder`], so inputs larger
/// than RAM convert in bounded memory.
fn cmd_graph_convert(opts: &Options) -> Result<(), String> {
    let input = opts.graph.as_ref().ok_or("missing --graph")?;
    let out = opts.out.as_ref().ok_or("missing --out")?;
    let format = match opts.graph_format.as_str() {
        "auto" | "file" | "v2" => "v2",
        "varint" => "varint",
        "v1" => "v1",
        other => {
            return Err(format!(
                "graph convert --graph-format expects v2 (default), varint or v1, \
                 got {other:?}"
            ))
        }
    };

    if !is_binary(input) && format == "v2" {
        // Out-of-core path: the edge list streams through the external
        // builder and never materializes in RAM.
        let mut builder = match opts.chunk_edges {
            Some(c) => ExternalGraphBuilder::with_chunk_edges(c),
            None => ExternalGraphBuilder::new(),
        };
        builder.symmetrize(opts.symmetrize);
        let file = File::open(input).map_err(|e| format!("{}: {e}", input.display()))?;
        for (lineno, line) in BufReader::new(file).lines().enumerate() {
            let line = line.map_err(|e| format!("{}: {e}", input.display()))?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let err = || {
                format!(
                    "{} line {}: expected 'src dst [weight]', got {line:?}",
                    input.display(),
                    lineno + 1
                )
            };
            let u: u32 = fields.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
            let v: u32 = fields.next().and_then(|s| s.parse().ok()).ok_or_else(err)?;
            match fields.next() {
                Some(w) => {
                    let w: f32 = w.parse().map_err(|_| err())?;
                    builder
                        .add_weighted_edge(u, v, w)
                        .map_err(|e| e.to_string())?;
                }
                None => builder.add_edge(u, v).map_err(|e| e.to_string())?,
            }
        }
        let stats = builder.build(out).map_err(|e| e.to_string())?;
        println!(
            "wrote {}: {} vertices, {} edges ({} records via {} sorted runs, {} bytes)",
            out.display(),
            stats.vertices,
            stats.edges,
            stats.records,
            stats.runs.max(1),
            stats.output_bytes,
        );
        return Ok(());
    }

    // In-RAM re-encode between binary flavors (or into v1/varint).
    let store = load_store(opts)?;
    let file = File::create(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut writer = BufWriter::new(file);
    match format {
        "v2" => io::write_binary(store.as_ref(), &mut writer).map_err(|e| e.to_string())?,
        "varint" => {
            compress::write_v2_varint(store.as_ref(), &mut writer).map_err(|e| e.to_string())?
        }
        _ => io::write_binary_v1(&store.to_csr(), &mut writer).map_err(|e| e.to_string())?,
    }
    writer.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({format}): {} vertices, {} edges",
        out.display(),
        store.num_vertices(),
        store.num_edges(),
    );
    Ok(())
}

/// `graph gen` — stream an RMAT/Kronecker draw straight to a raw
/// `SNPLG2` file; the edge list never exists in RAM, so generated
/// graphs can exceed memory.
fn cmd_graph_gen(opts: &Options) -> Result<(), String> {
    let out = opts.out.as_ref().ok_or("missing --out")?;
    let scale = opts
        .rmat_scale
        .ok_or("missing --rmat-scale (log2 of the vertex count)")?;
    if scale > 31 {
        return Err(format!(
            "--rmat-scale {scale} exceeds the 31-bit vertex-id space"
        ));
    }
    let config = RmatConfig {
        scale,
        edges: opts.edges.unwrap_or(16u64 << scale),
        seed: opts.seed,
        ..RmatConfig::default()
    };
    let mut builder = match opts.chunk_edges {
        Some(c) => ExternalGraphBuilder::with_chunk_edges(c),
        None => ExternalGraphBuilder::new(),
    };
    builder.symmetrize(opts.symmetrize);
    let stats = config
        .generate_with(builder, out)
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {}: RMAT scale {scale} seed {} — {} vertices, {} edges \
         ({} drawn, {} sorted runs, {} bytes)",
        out.display(),
        opts.seed,
        stats.vertices,
        stats.edges,
        stats.records,
        stats.runs.max(1),
        stats.output_bytes,
    );
    Ok(())
}

fn cmd_emulate(opts: &Options) -> Result<(), String> {
    let name = opts.dataset.as_deref().ok_or("missing --dataset")?;
    let spec = datasets::by_name(name).ok_or_else(|| {
        format!(
            "unknown dataset {name:?}; available: {}",
            datasets::all().map(|d| d.name).join(", ")
        )
    })?;
    let graph = spec.emulate(opts.scale, opts.seed);
    let out = opts.out.as_ref().ok_or("missing --out")?;
    let file = File::create(out).map_err(|e| format!("{}: {e}", out.display()))?;
    let mut writer = BufWriter::new(file);
    if is_binary(out) {
        io::write_binary(&graph, &mut writer).map_err(|e| e.to_string())?;
    } else {
        io::write_edge_list(&graph, &mut writer).map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} vertices, {} edges (scale {} of {})",
        out.display(),
        graph.num_vertices(),
        graph.num_edges(),
        opts.scale,
        spec.name
    );
    Ok(())
}

fn cmd_stats(opts: &Options) -> Result<(), String> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let graph = load_graph(opts)?;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let s = GraphSummary::compute(&graph, 1_000, &mut rng);
    println!("vertices      {}", s.vertices);
    println!("edges         {}", s.edges);
    println!("mean degree   {:.2}", s.out_degree.mean);
    println!("max degree    {}", s.out_degree.max);
    println!(
        "p50/p90/p99   {}/{}/{}",
        s.out_degree.p50, s.out_degree.p90, s.out_degree.p99
    );
    println!("reciprocity   {:.3}", s.reciprocity);
    println!("clustering    {:.3} (sampled)", s.clustering);
    Ok(())
}

/// The multi-score predict path: one fused sweep, one output line per
/// `column label / source / target / score`.
fn cmd_predict_plan(opts: &Options, graph: &dyn GraphStore) -> Result<(), String> {
    let cluster = opts.cluster()?;
    let plan = opts.score_plan()?;
    let queries = opts.query_set(graph)?;
    let prepared = plan
        .prepare_plan(&PrepareRequest::new(graph, &cluster))
        .map_err(|e| e.to_string())?;
    let mut exec = ExecuteRequest::new();
    if let Some(q) = &queries {
        exec = exec.with_queries(q);
    }
    let matrix = prepared.execute_matrix(&exec).map_err(|e| e.to_string())?;

    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut total = 0usize;
    for col in 0..matrix.num_columns() {
        let label = &matrix.labels()[col];
        for (u, preds) in matrix.column_rows(col) {
            for (z, score) in preds {
                writeln!(out, "{label}\t{}\t{}\t{score}", u.as_u32(), z.as_u32())
                    .map_err(|e| e.to_string())?;
                total += 1;
            }
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    let attribution: Vec<String> = matrix
        .column_attribution()
        .map(|(label, ops)| format!("{label} {ops}"))
        .collect();
    eprintln!(
        "predicted {total} edges across {} score columns in ONE fused sweep \
         ({:.2} simulated seconds on {}); total work {} ops, per-column extra [{}]",
        matrix.num_columns(),
        matrix.stats.simulated_seconds(),
        cluster.name,
        matrix.stats.total_work_ops(),
        attribution.join(", "),
    );
    Ok(())
}

fn cmd_predict(opts: &Options) -> Result<(), String> {
    let store = load_store(opts)?;
    let graph = store.as_ref();
    if opts.scores.is_some() {
        return cmd_predict_plan(opts, graph);
    }
    let cluster = opts.cluster()?;
    let snaple = Snaple::new(opts.snaple_config()?);
    let queries = opts.query_set(graph)?;
    let mut req = PredictRequest::new(graph, &cluster);
    if let Some(q) = &queries {
        req = req.with_queries(q);
    }
    let prediction = Predictor::predict(&snaple, &req).map_err(|e| e.to_string())?;

    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    for (u, preds) in prediction.iter() {
        for (z, score) in preds {
            writeln!(out, "{}\t{}\t{score}", u.as_u32(), z.as_u32()).map_err(|e| e.to_string())?;
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    let scope = match &queries {
        Some(q) => format!("{} queried sources", q.len()),
        None => format!("{} sources", graph.num_vertices()),
    };
    eprintln!(
        "predicted {} edges for {scope} in {:.2} simulated seconds on {} ({} cores, \
         {} backend); traffic {:.1} MB, replication {:.2}",
        prediction.total_predictions(),
        prediction.simulated_seconds(),
        cluster.name,
        cluster.total_cores(),
        graph.backend_name(),
        prediction.stats.total_network_bytes() as f64 / 1e6,
        prediction.stats.replication_factor,
    );
    Ok(())
}

/// Parses a request stream: one request per line, comma-separated vertex
/// ids; blank lines and `#` comments are skipped.
fn parse_request_stream(reader: impl BufRead) -> Result<Vec<QuerySet>, String> {
    let mut requests = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("request stream: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let ids: Result<Vec<u32>, _> = line.split(',').map(|s| s.trim().parse::<u32>()).collect();
        let ids = ids.map_err(|_| {
            format!(
                "request stream line {}: expected comma-separated vertex ids, got {line:?}",
                lineno + 1
            )
        })?;
        requests.push(QuerySet::from_indices(ids));
    }
    Ok(requests)
}

/// One event of a mixed predict/update stream.
enum ServeEvent {
    Predict(QuerySet),
    /// A contiguous run of `add`/`remove` lines, merged into one delta.
    Update(GraphDelta),
}

/// Parses a mixed predict/update stream: `predict IDS` (or a bare
/// comma-separated id list), `add U V [W]`, `remove U V`; blank lines and
/// `#` comments are skipped. Consecutive add/remove lines coalesce into
/// one update batch.
fn parse_update_stream(reader: impl BufRead) -> Result<Vec<ServeEvent>, String> {
    let mut events: Vec<ServeEvent> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("update stream: {e}"))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("update stream line {}: {what}, got {line:?}", lineno + 1);
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line");
        let parse_id = |s: Option<&str>, what: &str| -> Result<u32, String> {
            s.and_then(|x| x.parse().ok()).ok_or_else(|| err(what))
        };
        match keyword {
            "add" | "remove" => {
                let u = parse_id(fields.next(), "expected 'add U V [W]' / 'remove U V'")?;
                let v = parse_id(fields.next(), "expected 'add U V [W]' / 'remove U V'")?;
                let weight: Option<f32> = match (keyword, fields.next()) {
                    ("add", Some(w)) => Some(w.parse().map_err(|_| err("invalid weight"))?),
                    ("add", None) => None,
                    ("remove", Some(_)) => return Err(err("'remove' takes exactly two ids")),
                    _ => None,
                };
                if fields.next().is_some() {
                    return Err(err("trailing fields"));
                }
                let delta = match events.last_mut() {
                    Some(ServeEvent::Update(delta)) => delta,
                    _ => {
                        events.push(ServeEvent::Update(GraphDelta::new()));
                        match events.last_mut() {
                            Some(ServeEvent::Update(delta)) => delta,
                            _ => unreachable!("just pushed"),
                        }
                    }
                };
                match (keyword, weight) {
                    ("add", Some(w)) => {
                        delta.insert_weighted(u, v, w);
                    }
                    ("add", None) => {
                        delta.insert(u, v);
                    }
                    _ => {
                        delta.remove(u, v);
                    }
                }
            }
            _ => {
                let ids_str = match keyword {
                    "predict" => {
                        let ids = fields
                            .next()
                            .ok_or_else(|| err("'predict' needs comma-separated vertex ids"))?;
                        if fields.next().is_some() {
                            // `predict 5 7` would otherwise serve vertex 5
                            // and silently drop the rest.
                            return Err(err(
                                "'predict' ids must be comma-separated without spaces",
                            ));
                        }
                        ids
                    }
                    _ => line, // bare id list, same format as --requests
                };
                let ids: Result<Vec<u32>, _> = ids_str
                    .split(',')
                    .map(|s| s.trim().parse::<u32>())
                    .collect();
                let ids = ids.map_err(|_| err("expected comma-separated vertex ids"))?;
                events.push(ServeEvent::Predict(QuerySet::from_indices(ids)));
            }
        }
    }
    Ok(events)
}

fn cmd_serve(opts: &Options) -> Result<(), String> {
    // Shard-count validation up front, before the graph is even loaded:
    // a bad deployment shape deserves an immediate, specific answer.
    if let Some(shards) = opts.shards {
        if shards == 0 {
            return Err("--shards must be at least 1 (every shard owns \
                        at least one partition)"
                .into());
        }
        if shards > opts.nodes {
            return Err(format!(
                "--shards {shards} exceeds --nodes {}; every shard must own \
                 at least one of the cluster's partitions — lower --shards \
                 or raise --nodes",
                opts.nodes
            ));
        }
        if opts.workers > 0 {
            return Err("--shards and --workers are mutually exclusive \
                        serving runtimes; pick one"
                .into());
        }
    } else if opts.shard_procs {
        return Err("--shard-procs needs --shards N".into());
    }
    let store = load_store(opts)?;
    // Restartable serving: open (or recover) the data dir before anything
    // else sees the graph — recovery may replace it with the newest
    // snapshot, and the unsnapshotted log tail replays below.
    let mut durable: Option<Durability> = None;
    let mut replay: Vec<GraphDelta> = Vec::new();
    let mut recovered_graph: Option<CsrGraph> = None;
    if let Some(dir) = &opts.data_dir {
        if opts.shards.is_some() {
            return Err("--data-dir does not combine with --shards: shards are \
                        stateless workers behind a router — persist through the \
                        single-process paths (sequential or --workers) instead"
                .into());
        }
        let policy = FsyncPolicy::parse(&opts.fsync)
            .ok_or_else(|| format!("--fsync expects 'always' or 'batch', got {:?}", opts.fsync))?;
        let store_opts = DurabilityOptions::default()
            .fsync(policy)
            .snapshot_every(opts.snapshot_every)
            .retain(opts.retain);
        let config_blob = serve_config_blob(opts);
        // Durability owns an in-RAM base copy; borrow the CSR directly
        // when the backend is already one, materialize otherwise.
        let base_owned;
        let base: &CsrGraph = match store.as_csr() {
            Some(csr) => csr,
            None => {
                base_owned = store.to_csr();
                &base_owned
            }
        };
        let (d, recovered, report): (_, _, RecoveryReport) =
            Durability::open(dir, base, config_blob.as_bytes(), store_opts)
                .map_err(|e| format!("{}: {e}", dir.display()))?;
        eprintln!("data dir {}: {}", dir.display(), report.summary());
        durable = Some(d);
        if let Some(state) = recovered {
            if !state.config.is_empty() && state.config != config_blob.as_bytes() {
                eprintln!(
                    "note: serve flags changed since {} was created \
                     (snapshot recorded {:?})",
                    dir.display(),
                    String::from_utf8_lossy(&state.config),
                );
            }
            replay = state.replay;
            recovered_graph = Some(state.graph);
        }
    }
    let graph: &dyn GraphStore = match &recovered_graph {
        Some(g) => g,
        None => store.as_ref(),
    };
    let cluster = opts.cluster()?;
    // With --scores the served predictor is a fused multi-score plan:
    // every request's rows are the plan's weighted combined ranking,
    // computed from one sweep per coalesced batch.
    let plan;
    let snaple;
    let predictor: &dyn Predictor = if opts.scores.is_some() {
        plan = opts.score_plan()?;
        &plan
    } else {
        snaple = Snaple::new(opts.snaple_config()?);
        &snaple
    };
    let events: Vec<ServeEvent> = match (&opts.requests, &opts.updates, opts.request_count) {
        (Some(_), Some(_), _) | (_, Some(_), Some(_)) | (Some(_), _, Some(_)) => {
            return Err("--requests, --updates and --request-count are mutually exclusive".into())
        }
        (Some(path), None, None) if path == "-" => parse_request_stream(std::io::stdin().lock())?
            .into_iter()
            .map(ServeEvent::Predict)
            .collect(),
        (Some(path), None, None) => {
            let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            parse_request_stream(BufReader::new(file))?
                .into_iter()
                .map(ServeEvent::Predict)
                .collect()
        }
        (None, Some(path), None) if path == "-" => parse_update_stream(std::io::stdin().lock())?,
        (None, Some(path), None) => {
            let file = File::open(path).map_err(|e| format!("{path}: {e}"))?;
            parse_update_stream(BufReader::new(file))?
        }
        (None, None, Some(count)) => (0..count)
            .map(|i| {
                ServeEvent::Predict(QuerySet::sample(
                    graph.num_vertices(),
                    opts.request_size,
                    opts.seed.wrapping_add(i as u64),
                ))
            })
            .collect(),
        (None, None, None) => {
            return Err("missing --requests FILE, --updates FILE or --request-count N".into())
        }
    };
    if opts.batch == 0 {
        return Err("--batch must be at least 1".into());
    }
    if opts.shards.is_some() {
        return cmd_serve_sharded(opts, graph, &cluster, events);
    }
    if opts.workers > 0 {
        return cmd_serve_concurrent(opts, graph, &cluster, predictor, events, durable, replay);
    }

    let mut server = Server::new(predictor, graph, &cluster).map_err(|e| e.to_string())?;
    if let Some(d) = durable {
        // Fold the recovered log tail back in BEFORE attaching, so the
        // replayed deltas are not logged a second time.
        for delta in &replay {
            server.apply_update(delta).map_err(|e| e.to_string())?;
        }
        server.attach_durability(d);
    }
    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut request_idx = 0usize;
    let mut requests_served = 0usize;
    let mut pending: Vec<QuerySet> = Vec::new();
    let flush = |server: &mut Server<'_>,
                 pending: &mut Vec<QuerySet>,
                 out: &mut dyn Write,
                 request_idx: &mut usize|
     -> Result<(), String> {
        for chunk in pending.chunks(opts.batch) {
            let responses = server.serve_batch(chunk).map_err(|e| e.to_string())?;
            for (request, response) in chunk.iter().zip(&responses) {
                for q in request.iter() {
                    for (z, score) in response.for_vertex(q) {
                        writeln!(
                            out,
                            "{}\t{}\t{}\t{score}",
                            *request_idx,
                            q.as_u32(),
                            z.as_u32()
                        )
                        .map_err(|e| e.to_string())?;
                    }
                }
                *request_idx += 1;
            }
        }
        pending.clear();
        Ok(())
    };
    for event in events {
        match event {
            ServeEvent::Predict(q) => {
                requests_served += 1;
                pending.push(q);
                if pending.len() >= opts.batch {
                    flush(&mut server, &mut pending, &mut *out, &mut request_idx)?;
                }
            }
            ServeEvent::Update(delta) => {
                // Updates are serialization points: everything queued
                // before the update sees the old graph, everything after
                // sees the new one.
                flush(&mut server, &mut pending, &mut *out, &mut request_idx)?;
                let applied = server.apply_update(&delta).map_err(|e| e.to_string())?;
                eprintln!(
                    "applied update: +{} -{} edges (+{} vertices), \
                     {} partitions touched, {:.2} ms",
                    applied.inserted_edges,
                    applied.removed_edges,
                    applied.grown_vertices,
                    applied.touched_partitions,
                    applied.apply_wall_seconds * 1e3,
                );
            }
        }
    }
    flush(&mut server, &mut pending, &mut *out, &mut request_idx)?;
    out.flush().map_err(|e| e.to_string())?;
    server.sync_durability().map_err(|e| e.to_string())?;
    let stats = server.stats();
    eprintln!(
        "served {requests_served} requests on {} ({} cores): {}",
        cluster.name,
        cluster.total_cores(),
        stats.summary()
    );
    stats.write_bench_json("snaple-cli-serve");
    Ok(())
}

/// The `--workers N` serve path: the same event stream through the
/// [`ConcurrentServer`] worker pool. Predictions are submitted without
/// waiting (workers coalesce up to `--batch` queued requests per run);
/// updates drain the queue first — so the output ordering matches the
/// sequential server — and then swap in the post-delta epoch.
fn cmd_serve_concurrent(
    opts: &Options,
    graph: &dyn GraphStore,
    cluster: &ClusterSpec,
    predictor: &dyn Predictor,
    events: Vec<ServeEvent>,
    durable: Option<Durability>,
    replay: Vec<GraphDelta>,
) -> Result<(), String> {
    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let options = ConcurrentOptions::default()
        .workers(opts.workers)
        .batch(opts.batch);
    /// Writes one redeemed response as TSV rows.
    fn write_response(
        out: &mut dyn Write,
        request_idx: usize,
        request: &QuerySet,
        result: Result<snaple::core::Prediction, snaple::core::SnapleError>,
    ) -> Result<(), String> {
        let response = result.map_err(|e| e.to_string())?;
        for q in request.iter() {
            for (z, score) in response.for_vertex(q) {
                writeln!(
                    out,
                    "{request_idx}\t{}\t{}\t{score}",
                    q.as_u32(),
                    z.as_u32()
                )
                .map_err(|e| e.to_string())?;
            }
        }
        Ok(())
    }

    let body = |handle: snaple::core::ServeHandle<'_, '_>| {
        // Responses are redeemed and written incrementally, in submission
        // order, so memory holds only the outstanding window (bounded by
        // the submission queue) plus head-of-line completions — never the
        // whole stream's predictions at once.
        let mut pending: std::collections::VecDeque<(QuerySet, PendingPrediction)> =
            std::collections::VecDeque::new();
        let mut request_idx = 0usize;
        let mut served = 0usize;
        let mut drain_pending =
            |pending: &mut std::collections::VecDeque<(QuerySet, PendingPrediction)>,
             request_idx: &mut usize,
             all: bool|
             -> Result<(), String> {
                while let Some((request, ticket)) = pending.pop_front() {
                    if all {
                        write_response(&mut *out, *request_idx, &request, ticket.wait())?;
                    } else {
                        match ticket.try_wait() {
                            Ok(result) => {
                                write_response(&mut *out, *request_idx, &request, result)?;
                            }
                            Err(ticket) => {
                                pending.push_front((request, ticket));
                                break;
                            }
                        }
                    }
                    *request_idx += 1;
                }
                Ok(())
            };
        for event in events {
            match event {
                ServeEvent::Predict(q) => {
                    let ticket = handle.submit(&q).map_err(|e| e.to_string())?;
                    pending.push_back((q, ticket));
                    served += 1;
                    // Opportunistically flush responses that are already
                    // done (in order) while the stream keeps flowing.
                    drain_pending(&mut pending, &mut request_idx, false)?;
                }
                ServeEvent::Update(delta) => {
                    // Keep the sequential server's ordering contract:
                    // everything submitted before the update completes on
                    // the old epoch, everything after sees the new one.
                    handle.drain();
                    drain_pending(&mut pending, &mut request_idx, true)?;
                    let applied = handle.apply_update(&delta).map_err(|e| e.to_string())?;
                    eprintln!(
                        "applied update (epoch {}): +{} -{} edges (+{} vertices), \
                         {} partitions touched, {:.2} ms",
                        handle.epoch(),
                        applied.inserted_edges,
                        applied.removed_edges,
                        applied.grown_vertices,
                        applied.touched_partitions,
                        applied.apply_wall_seconds * 1e3,
                    );
                }
            }
        }
        drain_pending(&mut pending, &mut request_idx, true)?;
        Ok::<usize, String>(served)
    };
    let outcome = match durable {
        Some(d) => {
            // Durable run: prepare explicitly so the recovered log tail
            // folds in BEFORE the store attaches (replays are already
            // logged — they must not log twice).
            let mut prepared = predictor
                .prepare(&PrepareRequest::new(graph, cluster))
                .map_err(|e| e.to_string())?;
            for delta in &replay {
                prepared.apply_delta(delta).map_err(|e| e.to_string())?;
            }
            ConcurrentServer::run_prepared_durable(prepared, options, d, body)
                .map_err(|e| e.to_string())?
        }
        None => ConcurrentServer::run(predictor, graph, cluster, options, body)
            .map_err(|e| e.to_string())?,
    };
    let requests_served = outcome.value?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "served {requests_served} requests on {} ({} cores): {}",
        cluster.name,
        cluster.total_cores(),
        outcome.stats.summary()
    );
    outcome
        .stats
        .write_bench_json("snaple-cli-serve-concurrent");
    Ok(())
}

/// The `--shards N` serve path: the same event stream through the
/// scatter-gather [`ShardRouter`]. Each prediction is scattered to the
/// shards owning its queried vertices and submitted without waiting;
/// updates drain the in-flight window first — preserving the sequential
/// server's output ordering — and then broadcast the delta to every
/// shard as a local epoch swap. Rows (and therefore the TSV output) are
/// bit-identical to the sequential and `--workers` paths.
fn cmd_serve_sharded(
    opts: &Options,
    graph: &dyn GraphStore,
    cluster: &ClusterSpec,
    events: Vec<ServeEvent>,
) -> Result<(), String> {
    let spec = if opts.scores.is_some() {
        // Validate the plan locally first (nice errors, --alpha check),
        // then ship the raw spec strings: shards re-parse them.
        opts.score_plan()?;
        ShardSpec::Plan {
            specs: opts
                .scores
                .as_deref()
                .unwrap_or_default()
                .split(',')
                .map(|s| s.trim().to_string())
                .collect(),
            config: PlanConfig::default()
                .k(opts.k)
                .klocal(opts.klocal)
                .thr_gamma(opts.thr_gamma)
                .seed(opts.seed),
        }
    } else {
        ShardSpec::Single(opts.snaple_config()?)
    };
    let mut out: Box<dyn Write> = match &opts.out {
        Some(p) => Box::new(BufWriter::new(
            File::create(p).map_err(|e| format!("{}: {e}", p.display()))?,
        )),
        None => Box::new(std::io::stdout().lock()),
    };
    let transport = if opts.shard_procs {
        ShardTransport::Processes
    } else {
        ShardTransport::Threads
    };
    let options = ShardOptions::new()
        .shards(opts.shards.unwrap_or(1))
        .transport(transport);

    let outcome = ShardRouter::run(&spec, graph, cluster, options, |handle| {
        let mut window: Vec<(QuerySet, snaple::core::shard::PendingRows)> = Vec::new();
        let mut request_idx = 0usize;
        let mut served = 0usize;
        let mut flush = |window: &mut Vec<(QuerySet, snaple::core::shard::PendingRows)>,
                         request_idx: &mut usize|
         -> Result<(), String> {
            for (request, pending) in window.drain(..) {
                let response = pending.wait().map_err(|e| e.to_string())?;
                for q in request.iter() {
                    for (z, score) in response.for_vertex(q) {
                        writeln!(
                            out,
                            "{request_idx}\t{}\t{}\t{score}",
                            q.as_u32(),
                            z.as_u32()
                        )
                        .map_err(|e| e.to_string())?;
                    }
                }
                *request_idx += 1;
            }
            Ok(())
        };
        for event in events {
            match event {
                ServeEvent::Predict(q) => {
                    let pending = handle.submit(&q).map_err(|e| e.to_string())?;
                    window.push((q, pending));
                    served += 1;
                    if window.len() >= opts.batch {
                        flush(&mut window, &mut request_idx)?;
                    }
                }
                ServeEvent::Update(delta) => {
                    // Serialization point, as on every other path: the
                    // in-flight window completes on the old epoch before
                    // any shard swaps to the new one.
                    flush(&mut window, &mut request_idx)?;
                    let applied = handle.apply_update(&delta).map_err(|e| e.to_string())?;
                    eprintln!(
                        "applied update (epoch {}): +{} -{} edges, \
                         {} partitions touched, {:.2} ms",
                        handle.epoch(),
                        applied.inserted_edges,
                        applied.removed_edges,
                        applied.touched_partitions,
                        applied.apply_wall_seconds * 1e3,
                    );
                }
            }
        }
        flush(&mut window, &mut request_idx)?;
        handle.drain();
        Ok::<usize, String>(served)
    })
    .map_err(|e| e.to_string())?;
    let requests_served = outcome.value?;
    out.flush().map_err(|e| e.to_string())?;
    eprintln!(
        "served {requests_served} requests over {} {} shard(s) on {} ({} cores): {}",
        opts.shards.unwrap_or(1),
        if opts.shard_procs {
            "process"
        } else {
            "thread"
        },
        cluster.name,
        cluster.total_cores(),
        outcome.stats.summary()
    );
    outcome.stats.write_bench_json("snaple-cli-serve-sharded");
    Ok(())
}

/// `sweep` — evaluate a whole score plan under the hold-out protocol in
/// **one** fused sweep, emitting a configuration × metric table. With
/// `--compare`, additionally runs every column standalone (N extra full
/// traversals!) to print the fused-vs-independent gather-op comparison.
fn cmd_sweep(opts: &Options) -> Result<(), String> {
    let graph = load_graph(opts)?;
    let cluster = opts.cluster()?;
    let plan = opts.score_plan()?;
    let holdout = HoldOut::remove_edges(&graph, opts.removals.max(1), opts.seed);

    let prepared = plan
        .prepare_plan(&PrepareRequest::new(&holdout.train, &cluster))
        .map_err(|e| e.to_string())?;
    let matrix = prepared
        .execute_matrix(&ExecuteRequest::new())
        .map_err(|e| e.to_string())?;
    let fused_gathers: u64 = matrix.stats.steps.iter().map(|s| s.gather_calls).sum();

    let mut header = vec!["score", "k", "recall", "precision", "mrr", "column ops"];
    if opts.compare {
        header.push("indep. gathers");
    }
    let mut table = TextTable::new(header);
    let mut independent_gathers = 0u64;
    for col in 0..plan.num_columns() {
        let column = matrix.column(col);
        let mut row = vec![
            matrix.labels()[col].clone(),
            plan.column_k(col).to_string(),
            format!("{:.4}", metrics::recall(&column, &holdout)),
            format!("{:.4}", metrics::precision(&column, &holdout)),
            format!("{:.4}", metrics::mean_reciprocal_rank(&column, &holdout)),
            matrix.column_work_ops(col).to_string(),
        ];
        if opts.compare {
            // The naive path this plan replaces: one full run per config.
            let standalone = plan.column_snaple(col);
            let solo =
                Predictor::predict(&standalone, &PredictRequest::new(&holdout.train, &cluster))
                    .map_err(|e| e.to_string())?;
            let solo_gathers: u64 = solo.stats.steps.iter().map(|s| s.gather_calls).sum();
            independent_gathers += solo_gathers;
            row.push(solo_gathers.to_string());
        }
        table.row(row);
    }
    println!("{}", table.render());
    if opts.compare {
        let ratio = fused_gathers as f64 / independent_gathers.max(1) as f64;
        println!(
            "fused sweep: {fused_gathers} gather calls for {} columns vs \
             {independent_gathers} independent ({:.1}% — one traversal instead of {})",
            plan.num_columns(),
            ratio * 100.0,
            plan.num_columns(),
        );
    } else {
        println!(
            "fused sweep: {fused_gathers} gather calls for all {} columns \
             (--compare re-runs each column standalone for the ratio)",
            plan.num_columns(),
        );
    }
    Ok(())
}

fn cmd_evaluate(opts: &Options) -> Result<(), String> {
    let graph = load_graph(opts)?;
    let holdout = HoldOut::remove_edges(&graph, opts.removals.max(1), opts.seed);
    let cluster = opts.cluster()?;
    let snaple = Snaple::new(opts.snaple_config()?);
    let queries = opts.query_set(&holdout.train)?;
    let mut req = PredictRequest::new(&holdout.train, &cluster);
    if let Some(q) = &queries {
        req = req.with_queries(q);
    }
    let prediction = Predictor::predict(&snaple, &req).map_err(|e| e.to_string())?;
    let q = queries.as_ref();
    if let Some(q) = q {
        // Metrics over the queried sources only — the all-vertices
        // denominator would misread a targeted run as low recall.
        println!("queried sources {}", q.len());
    }
    println!("held-out edges  {}", holdout.num_removed());
    println!(
        "recall          {:.4}",
        metrics::recall_for(&prediction, &holdout, q)
    );
    println!(
        "precision       {:.4}",
        metrics::precision_for(&prediction, &holdout, q)
    );
    println!(
        "mrr             {:.4}",
        metrics::mean_reciprocal_rank_for(&prediction, &holdout, q)
    );
    println!("sim. time       {:.2}s", prediction.simulated_seconds());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph10() -> CsrGraph {
        CsrGraph::from_edges(10, &[(0, 1), (1, 2), (2, 3)])
    }

    fn opts_with_queries(list: &str) -> Options {
        Options {
            queries: Some(list.to_owned()),
            ..Options::default()
        }
    }

    #[test]
    fn in_range_queries_resolve() {
        let q = opts_with_queries("0, 3,9")
            .query_set(&graph10())
            .unwrap()
            .unwrap();
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn out_of_range_query_ids_error_up_front_naming_the_id() {
        // Regression: ids >= num_vertices used to travel all the way into
        // the predictor before being rejected; they must fail during flag
        // resolution with a message naming the offending id.
        let err = opts_with_queries("3,10,4")
            .query_set(&graph10())
            .unwrap_err();
        assert!(err.contains("vertex id 10"), "{err}");
        assert!(err.contains("10 vertices"), "{err}");
        assert!(err.contains("0..=9"), "{err}");

        // The first offending id is named, even when several are bad.
        let err = opts_with_queries("99,10")
            .query_set(&graph10())
            .unwrap_err();
        assert!(err.contains("vertex id 99"), "{err}");

        // Boundary: the largest valid id passes, one past it fails.
        assert!(opts_with_queries("9").query_set(&graph10()).is_ok());
        assert!(opts_with_queries("10").query_set(&graph10()).is_err());
    }

    #[test]
    fn malformed_and_conflicting_query_flags_error() {
        let err = opts_with_queries("1,x").query_set(&graph10()).unwrap_err();
        assert!(err.contains("comma-separated"), "{err}");
        let both = Options {
            queries: Some("1".into()),
            query_sample: Some(3),
            ..Options::default()
        };
        assert!(both.query_set(&graph10()).is_err());
    }

    #[test]
    fn query_sample_is_always_in_range() {
        let opts = Options {
            query_sample: Some(50),
            ..Options::default()
        };
        let q = opts.query_set(&graph10()).unwrap().unwrap();
        assert_eq!(q.len(), 10, "oversampling clamps to the vertex count");
        assert!(q.iter().all(|v| v.index() < 10));
    }
}
