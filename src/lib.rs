#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # SNAPLE — scalable link prediction for GAS engines
//!
//! Umbrella crate of the reproduction of *"Scaling Out Link Prediction with
//! SNAPLE: 1 Billion Edges and Beyond"* (Kermarrec, Taïani, Tirado; INRIA
//! RR-454 / MIDDLEWARE 2015). It re-exports the workspace crates under one
//! roof and hosts the runnable examples and cross-crate integration tests.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `snaple-graph` | CSR graphs, I/O, statistics, generators |
//! | [`gas`] | `snaple-gas` | simulated distributed GAS engine |
//! | [`core`] | `snaple-core` | the SNAPLE scoring framework + predictor |
//! | [`baseline`] | `snaple-baseline` | the paper's direct GAS baseline |
//! | [`cassovary`] | `snaple-cassovary` | single-machine random-walk comparator |
//! | [`eval`] | `snaple-eval` | hold-out protocol, recall, experiment runner |
//! | [`store`] | `snaple-store` | durability: delta commitlog, snapshots, crash recovery |
//! | [`supervised`] | `snaple-supervised` | supervised re-ranking over SNAPLE scores (§7 future work) |
//!
//! # Quickstart
//!
//! Every backend answers one call: [`Predictor::predict`] over a
//! [`PredictRequest`] bundling the graph, the simulated cluster, optional
//! per-vertex attributes, and an optional query subset.
//!
//! [`Predictor::predict`]: core::Predictor::predict
//! [`PredictRequest`]: core::PredictRequest
//!
//! ```
//! use snaple::core::{PredictRequest, Predictor, NamedScore, Snaple, SnapleConfig};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! // A scaled-down emulation of the paper's gowalla dataset...
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! // ...a 4-node cluster of the paper's type-II machines...
//! let cluster = ClusterSpec::type_ii(4);
//! // ...and the paper's best-recall configuration.
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//! let prediction = Predictor::predict(&snaple, &PredictRequest::new(&graph, &cluster))?;
//! println!(
//!     "predicted {} edges in {:.1} simulated seconds",
//!     prediction.total_predictions(),
//!     prediction.simulated_seconds()
//! );
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! # Serving a query set
//!
//! Production link prediction serves *users*, not graphs: a request asks
//! for suggestions for the accounts that are active right now. Attach a
//! [`QuerySet`](core::QuerySet) and the run restricts itself to the part
//! of the graph that can influence those rows — same results for the
//! queried vertices, a fraction of the work:
//!
//! ```
//! use snaple::core::{PredictRequest, Predictor, QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let active_users = QuerySet::sample(graph.num_vertices(), 200, 7);
//! let req = PredictRequest::new(&graph, &cluster).with_queries(&active_users);
//! let suggestions = Predictor::predict(&snaple, &req)?;
//! assert!(active_users.iter().all(|u| u.index() < suggestions.num_vertices()));
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! The same request type drives the BASELINE and random-walk backends, the
//! supervised re-ranker, the [`eval`] runner, and the `snaple-cli predict
//! --queries`/`--query-sample` flags.
//!
//! # Many scores, one sweep
//!
//! SNAPLE is a scoring *framework*, and real workloads evaluate many
//! scoring configurations over the same graph — parameter sweeps,
//! feature panels, ensembles. A [`ScorePlan`](core::ScorePlan) declares
//! N score columns (parsed from compact [spec strings](core::spec) like
//! `"jaccard@k16"` or `"cosine*0.7+common"`) and compiles them into
//! **one fused superstep sweep**: neighborhoods are gathered once, every
//! kernel reads the same neighborhood views, every sampled 2-hop path is
//! walked once. Each column is bit-identical to running its spec alone,
//! at roughly one traversal's cost instead of N:
//!
//! ```
//! use snaple::core::{ExecuteRequest, PrepareRequest, ScorePlan};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//!
//! let plan = ScorePlan::parse("linearSum, counter, PPR, jaccard@agg=max")?;
//! let prepared = plan.prepare_plan(&PrepareRequest::new(&graph, &cluster))?;
//! let matrix = prepared.execute_matrix(&ExecuteRequest::new())?;
//! for (label, extra_ops) in matrix.column_attribution() {
//!     println!("{label}: {extra_ops} column-specific ops");
//! }
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! [`Snaple`](core::Snaple) itself executes as the 1-spec special case,
//! the supervised feature panel extracts all of its columns from one
//! fused sweep, and the CLI exposes plans via `snaple-cli predict/serve
//! --scores` and the `snaple-cli sweep` config × metric table;
//! `exp_sweep` + `crates/bench/benches/sweep.rs` track the
//! fused-vs-independent gather-op ratio and wall-time speedup.
//!
//! # Serving a request stream
//!
//! A stream of requests against the same graph should not rebuild the
//! O(edges) partition per call. [`Predictor::prepare`] splits the
//! lifecycle into *prepare once, execute many*, and
//! [`Server`](core::serve::Server) layers request coalescing on top:
//! concurrent query sets are unioned into one shared masked superstep
//! run and demultiplexed into bit-identical per-request rows.
//!
//! [`Predictor::prepare`]: core::Predictor::prepare
//!
//! ```
//! use snaple::core::serve::Server;
//! use snaple::core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! let wave: Vec<QuerySet> = (0..4)
//!     .map(|i| QuerySet::sample(graph.num_vertices(), 50, i))
//!     .collect();
//! let responses = server.serve_batch(&wave)?;
//! assert_eq!(responses.len(), 4);
//! println!("{}", server.stats().summary());
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! The CLI exposes the same layer as `snaple-cli serve --graph g.snplg
//! --requests stream.txt --batch 8`, and
//! `crates/bench/benches/serve.rs` tracks the end-to-end speedup over
//! repeated one-shot `predict`s.
//!
//! # Concurrent serving
//!
//! The sequential `Server` runs everything on the caller's thread. For a
//! multi-threaded request load,
//! [`ConcurrentServer`](core::concurrent::ConcurrentServer) owns a pool
//! of workers executing against one `Arc`-shared prepared snapshot
//! (every [`PreparedPredictor::execute`](core::PreparedPredictor::execute)
//! is `&self` with truly per-call run state), applies backpressure
//! through a bounded submission queue, and swaps in post-delta **epochs**
//! so updates never stall reads. Responses stay bit-identical to the
//! sequential server for the same seed:
//!
//! ```
//! use snaple::core::concurrent::{ConcurrentOptions, ConcurrentServer};
//! use snaple::core::{QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let outcome = ConcurrentServer::run(
//!     &snaple, &graph, &cluster,
//!     ConcurrentOptions::default().workers(4).batch(8),
//!     |handle| {
//!         let q = QuerySet::sample(graph.num_vertices(), 50, 7);
//!         handle.serve(&q) // round trip through the worker pool
//!     },
//! )?;
//! let _prediction = outcome.value?;
//! // p50/p95/p99 latency percentiles ride along in the stats.
//! println!("{}", outcome.stats.summary());
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! `snaple-cli serve --workers N` serves any request/update stream
//! through the pool, and `exp_concurrent` tracks throughput vs workers
//! and read latency during epoch swaps (exit-code enforced >= the
//! sequential server).
//!
//! # Streaming graph updates
//!
//! The served graph does not stay frozen: the full serving lifecycle is
//! *prepare → execute → apply_delta → execute*. Batch edge insertions
//! and removals into a [`GraphDelta`](graph::GraphDelta) and apply it to
//! a running server (or any prepared predictor) **in place** — the
//! deployment folds the delta in incrementally (linear
//! [`CsrGraph::compact`](graph::CsrGraph::compact) merge, only the
//! touched vertex-cut partitions re-routed) instead of paying a full
//! O(edges) re-prepare, and every later prediction is bit-identical to
//! a cold restart on the mutated graph:
//!
//! ```
//! use snaple::core::serve::Server;
//! use snaple::core::{GraphDelta, QuerySet, NamedScore, Snaple, SnapleConfig};
//! use snaple::gas::ClusterSpec;
//! use snaple::graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.01, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
//!
//! let mut server = Server::new(&snaple, &graph, &cluster)?;
//! let active = QuerySet::sample(graph.num_vertices(), 50, 7);
//! let before = server.serve(&active)?;                     // execute
//!
//! let mut delta = GraphDelta::new();                       // new follow edges arrive
//! delta.insert(0, 1234).insert(17, 99).remove(4, 2);
//! let applied = server.apply_update(&delta)?;              // apply_delta, in place
//! assert!(applied.touched_partitions <= cluster.nodes);
//!
//! let after = server.serve(&active)?;                      // execute on the new graph
//! # let _ = (before, after);
//! # Ok::<(), snaple::core::SnapleError>(())
//! ```
//!
//! The CLI serves mixed streams via `snaple-cli serve --updates
//! mixed.txt` (`predict IDS` / `add U V` / `remove U V` lines), and
//! `exp_streaming` + `crates/bench/benches/streaming.rs` track the
//! incremental-apply vs full-re-prepare speedup across churn levels.
//!
//! Under the concurrent runtime the same deltas go through
//! [`ServeHandle::apply_update`](core::concurrent::ServeHandle::apply_update)
//! instead: the post-delta snapshot is forked off to the side
//! ([`PreparedPredictor::fork_with_delta`](core::PreparedPredictor::fork_with_delta))
//! and atomically published as a new epoch, so in-flight reads finish on
//! the old graph and no response ever mixes the two.
//!
//! # Restartable serving
//!
//! Streamed updates survive restarts through the [`store`] crate: a
//! [`store::Durability`] handle write-ahead-logs every delta into an
//! fsync'd, crc-checksummed commitlog and checkpoints compacted,
//! versioned snapshots every K updates. Attach it to either serve layer
//! ([`Server::attach_durability`](core::serve::Server::attach_durability),
//! [`ConcurrentServer::run_prepared_durable`](core::concurrent::ConcurrentServer::run_prepared_durable))
//! and a crashed or stopped server reopens **bit-identical** to one that
//! never went down: [`store::Durability::open`] loads the newest valid
//! snapshot (falling back past corrupt ones), truncates torn log tails,
//! and hands back the delta tail to replay. From the command line:
//!
//! ```bash
//! snaple-cli serve --graph g.snplg --updates mixed.txt --data-dir ./state
//! # ...crash or ctrl-C, then re-run: recovers snapshot + log tail
//! snaple-cli serve --graph g.snplg --requests stream.txt --data-dir ./state
//! ```
//!
//! See the [core serve docs](core::serve#restartable-serving) for the
//! recovery protocol, `tests/durable_serving.rs` for the
//! kill-at-any-byte crash-recovery properties, and `exp_durable` for
//! the logging-overhead / recovery-time benchmarks.

pub use snaple_baseline as baseline;
pub use snaple_cassovary as cassovary;
pub use snaple_core as core;
pub use snaple_eval as eval;
pub use snaple_gas as gas;
pub use snaple_graph as graph;
pub use snaple_store as store;
pub use snaple_supervised as supervised;
