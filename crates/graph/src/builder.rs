//! Mutable graph construction.

use crate::{CsrGraph, VertexId};

/// Incremental builder for [`CsrGraph`].
///
/// Collect edges in any order, then call [`GraphBuilder::build`]. The builder
/// sorts edges, removes duplicates and self-loops, and (optionally)
/// symmetrizes the edge set so that undirected inputs become directed graphs
/// with both orientations — the transformation the paper applies to the
/// *gowalla* and *orkut* datasets.
///
/// # Example
///
/// ```
/// use snaple_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new();
/// b.symmetrize(true);
/// b.add_edge(0, 1); // also yields (1, 0)
/// let g = b.build();
/// assert_eq!(g.num_edges(), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    edges: Vec<(u32, u32)>,
    weights: Vec<f32>,
    weighted: bool,
    min_vertices: usize,
    symmetrize: bool,
    keep_self_loops: bool,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with capacity for `edges` edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Ensures the built graph has at least `n` vertices, even if the top
    /// ids never appear in an edge.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// If `true`, every added edge `(u, v)` also produces `(v, u)`.
    pub fn symmetrize(&mut self, yes: bool) -> &mut Self {
        self.symmetrize = yes;
        self
    }

    /// If `true`, self-loops survive into the built graph (default: removed).
    pub fn keep_self_loops(&mut self, yes: bool) -> &mut Self {
        self.keep_self_loops = yes;
        self
    }

    /// Adds a directed edge with weight `1.0`.
    #[inline]
    pub fn add_edge(&mut self, u: u32, v: u32) -> &mut Self {
        self.edges.push((u, v));
        self.weights.push(1.0);
        self
    }

    /// Adds a directed edge with an explicit weight. Once any weighted edge
    /// is added the built graph is weighted.
    #[inline]
    pub fn add_weighted_edge(&mut self, u: u32, v: u32, w: f32) -> &mut Self {
        self.edges.push((u, v));
        self.weights.push(w);
        self.weighted = true;
        self
    }

    /// Number of edges added so far (before deduplication).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Consumes the builder and produces the CSR graph.
    ///
    /// Duplicated edges keep the weight of their first occurrence (in the
    /// symmetrized case, the forward orientation's weight wins ties).
    pub fn build(&mut self) -> CsrGraph {
        let mut triples: Vec<(u32, u32, f32)> =
            Vec::with_capacity(self.edges.len() * if self.symmetrize { 2 } else { 1 });
        for (i, &(u, v)) in self.edges.iter().enumerate() {
            let w = self.weights[i];
            triples.push((u, v, w));
            if self.symmetrize {
                triples.push((v, u, w));
            }
        }
        if !self.keep_self_loops {
            triples.retain(|&(u, v, _)| u != v);
        }
        triples.sort_by_key(|t| (t.0, t.1));
        triples.dedup_by_key(|t| (t.0, t.1));

        let n = triples
            .iter()
            .map(|&(u, v, _)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0)
            .max(self.min_vertices);

        let mut offsets = vec![0usize; n + 1];
        for &(u, _, _) in &triples {
            offsets[u as usize + 1] += 1;
        }
        for i in 1..=n {
            offsets[i] += offsets[i - 1];
        }
        let targets: Vec<VertexId> = triples.iter().map(|&(_, v, _)| VertexId::new(v)).collect();
        let weights = if self.weighted {
            Some(triples.iter().map(|&(_, _, w)| w).collect())
        } else {
            None
        };
        CsrGraph::from_parts(n, offsets, targets, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts() {
        let mut b = GraphBuilder::new();
        b.add_edge(2, 1)
            .add_edge(0, 1)
            .add_edge(2, 1)
            .add_edge(2, 0);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        let nbrs: Vec<u32> = g
            .out_neighbors(VertexId::new(2))
            .iter()
            .map(|v| v.as_u32())
            .collect();
        assert_eq!(nbrs, vec![0, 1]);
    }

    #[test]
    fn removes_self_loops_by_default() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 1).add_edge(0, 1);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let mut b = GraphBuilder::new();
        b.keep_self_loops(true);
        b.add_edge(1, 1);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn symmetrize_duplicates_both_directions() {
        let mut b = GraphBuilder::new();
        b.symmetrize(true);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(1, 2);
        let g = b.build();
        // (0,1),(1,0),(1,2),(2,1)
        assert_eq!(g.num_edges(), 4);
        assert!(g.has_edge(VertexId::new(2), VertexId::new(1)));
    }

    #[test]
    fn reserve_vertices_pads_isolated_ids() {
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.reserve_vertices(10);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.out_degree(VertexId::new(9)), 0);
    }

    #[test]
    fn weighted_edges_survive_and_first_weight_wins() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 0.5);
        b.add_weighted_edge(0, 2, 0.25);
        let g = b.build();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(VertexId::new(0), VertexId::new(1)), Some(0.5));
        assert_eq!(
            g.edge_weight(VertexId::new(0), VertexId::new(2)),
            Some(0.25)
        );
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        assert_eq!(GraphBuilder::new().build().num_vertices(), 0);
        assert!(GraphBuilder::new().is_empty());
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        assert_eq!(b.len(), 1);
    }
}
