//! Classic sequential graph algorithms.
//!
//! These serve two roles in the reproduction: validating the synthetic
//! dataset emulators (e.g. giant-component size, core structure), and
//! acting as *sequential oracles* for the GAS engine — the engine's
//! distributed PageRank and connected-components programs
//! ([`snaple_gas::programs`](https://example.org)) are tested for exact
//! agreement with the implementations here.

use std::collections::VecDeque;

use crate::{CsrGraph, VertexId};

/// Union-find with path halving and union by size.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Finds the representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra as usize] >= self.size[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// Weakly connected components: per-vertex component label (the smallest
/// vertex id in the component), ignoring edge direction.
pub fn weakly_connected_components(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    let mut uf = UnionFind::new(n);
    for (u, v) in graph.edges() {
        uf.union(u.as_u32(), v.as_u32());
    }
    // Canonical label: smallest member id per component.
    let mut label = vec![u32::MAX; n];
    for x in 0..n as u32 {
        let r = uf.find(x) as usize;
        label[r] = label[r].min(x);
    }
    (0..n as u32).map(|x| label[uf.find(x) as usize]).collect()
}

/// Number of vertices in the largest weakly connected component.
pub fn largest_component_size(graph: &CsrGraph) -> usize {
    let labels = weakly_connected_components(graph);
    let mut counts = std::collections::HashMap::new();
    for l in labels {
        *counts.entry(l).or_insert(0usize) += 1;
    }
    counts.into_values().max().unwrap_or(0)
}

/// BFS hop distances from `source` along out-edges, up to `max_depth`
/// (`None` = unreachable within the bound).
pub fn bfs_distances(graph: &CsrGraph, source: VertexId, max_depth: usize) -> Vec<Option<u32>> {
    let mut dist = vec![None; graph.num_vertices()];
    dist[source.index()] = Some(0);
    let mut queue = VecDeque::from([source]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].expect("queued vertices have distances");
        if d as usize >= max_depth {
            continue;
        }
        for &v in graph.out_neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// K-core decomposition (Batagelj–Zaveršnik peeling) over the undirected
/// view of the graph (union of in- and out-adjacency). Returns each
/// vertex's core number.
pub fn core_numbers(graph: &CsrGraph) -> Vec<u32> {
    let n = graph.num_vertices();
    // Undirected degree = |Γ(u) ∪ Γ⁻¹(u)|; merge the two sorted lists.
    let und_degree = |u: VertexId| {
        let (a, b) = (graph.out_neighbors(u), graph.in_neighbors(u));
        let mut count = 0usize;
        let (mut i, mut j) = (0, 0);
        while i < a.len() || j < b.len() {
            count += 1;
            if j >= b.len() || (i < a.len() && a[i] < b[j]) {
                i += 1;
            } else if i >= a.len() || b[j] < a[i] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        count
    };
    let mut degree: Vec<usize> = graph.vertices().map(und_degree).collect();
    let max_degree = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort by degree.
    let mut bins = vec![0usize; max_degree + 2];
    for &d in &degree {
        bins[d] += 1;
    }
    let mut start = 0;
    for bin in bins.iter_mut() {
        let count = *bin;
        *bin = start;
        start += count;
    }
    let mut pos = vec![0usize; n];
    let mut order = vec![0u32; n];
    for u in 0..n {
        pos[u] = bins[degree[u]];
        order[pos[u]] = u as u32;
        bins[degree[u]] += 1;
    }
    for d in (1..bins.len()).rev() {
        bins[d] = bins[d - 1];
    }
    bins[0] = 0;

    let mut core = vec![0u32; n];
    let neighbors = |u: VertexId| -> Vec<VertexId> {
        let mut ns: Vec<VertexId> = graph
            .out_neighbors(u)
            .iter()
            .chain(graph.in_neighbors(u))
            .copied()
            .collect();
        ns.sort_unstable();
        ns.dedup();
        ns
    };
    for i in 0..n {
        let u = order[i] as usize;
        core[u] = degree[u] as u32;
        for v in neighbors(VertexId::new(u as u32)) {
            let v = v.index();
            if degree[v] > degree[u] {
                // Move v one bucket down.
                let dv = degree[v];
                let pv = pos[v];
                let pw = bins[dv];
                let w = order[pw] as usize;
                if v != w {
                    order.swap(pv, pw);
                    pos[v] = pw;
                    pos[w] = pv;
                }
                bins[dv] += 1;
                degree[v] -= 1;
            }
        }
    }
    core
}

/// Sequential PageRank with uniform teleport, `iterations` synchronous
/// sweeps, damping `d`. Dangling mass is redistributed uniformly.
///
/// # Panics
///
/// Panics if `damping` is outside `[0, 1]`.
pub fn pagerank(graph: &CsrGraph, damping: f64, iterations: usize) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&damping), "damping must be in [0, 1]");
    let n = graph.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0; n];
    for _ in 0..iterations {
        let mut dangling = 0.0;
        for u in graph.vertices() {
            if graph.out_degree(u) == 0 {
                dangling += rank[u.index()];
            }
        }
        for slot in next.iter_mut() {
            *slot = (1.0 - damping) * uniform + damping * dangling * uniform;
        }
        for u in graph.vertices() {
            let share = rank[u.index()] / graph.out_degree(u).max(1) as f64;
            for &v in graph.out_neighbors(u) {
                next[v.index()] += damping * share;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles_and_isolate() -> CsrGraph {
        // Component A: 0-1-2 triangle (symmetric); component B: 3-4 edge
        // (symmetric); vertex 5 isolated.
        CsrGraph::from_edges(
            6,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (0, 2),
                (2, 0),
                (3, 4),
                (4, 3),
            ],
        )
    }

    #[test]
    fn union_find_merges_and_sizes() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(!uf.union(1, 0));
        assert!(uf.union(1, 2));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
        assert_eq!(uf.find(0), uf.find(2));
        assert_ne!(uf.find(0), uf.find(3));
    }

    #[test]
    fn components_of_two_triangles() {
        let g = two_triangles_and_isolate();
        let labels = weakly_connected_components(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn components_ignore_direction() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let labels = weakly_connected_components(&g);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn bfs_distances_on_a_path() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, VertexId::new(0), 10);
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3)]);
        let bounded = bfs_distances(&g, VertexId::new(0), 2);
        assert_eq!(bounded, vec![Some(0), Some(1), Some(2), None]);
        // Directionality respected.
        let back = bfs_distances(&g, VertexId::new(3), 10);
        assert_eq!(back, vec![None, None, None, Some(0)]);
    }

    #[test]
    fn core_numbers_of_triangle_with_tail() {
        // Triangle (core 2) with a pendant vertex (core 1).
        let g = CsrGraph::from_edges(
            4,
            &[
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (0, 2),
                (2, 0),
                (2, 3),
                (3, 2),
            ],
        );
        assert_eq!(core_numbers(&g), vec![2, 2, 2, 1]);
    }

    #[test]
    fn core_numbers_of_clique() {
        let mut edges = Vec::new();
        for a in 0..5u32 {
            for b in 0..5u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let g = CsrGraph::from_edges(5, &edges);
        assert!(core_numbers(&g).iter().all(|&c| c == 4));
    }

    #[test]
    fn pagerank_sums_to_one_and_ranks_hubs() {
        // Star: everyone points at 0.
        let g = CsrGraph::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let pr = pagerank(&g, 0.85, 50);
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        for i in 1..5 {
            assert!(pr[0] > pr[i], "hub must outrank leaves");
        }
    }

    #[test]
    fn pagerank_uniform_on_cycles() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let pr = pagerank(&g, 0.85, 100);
        for &r in &pr {
            assert!((r - 0.25).abs() < 1e-9, "{pr:?}");
        }
    }

    #[test]
    fn pagerank_handles_empty_and_dangling() {
        assert!(pagerank(&CsrGraph::from_edges(0, &[]), 0.85, 5).is_empty());
        let g = CsrGraph::from_edges(2, &[(0, 1)]); // 1 dangles
        let pr = pagerank(&g, 0.85, 80);
        assert!((pr.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pr[1] > pr[0]);
    }
}
