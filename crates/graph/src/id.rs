//! Vertex identifiers.

use std::fmt;

/// A compact identifier for a vertex of a [`CsrGraph`](crate::CsrGraph).
///
/// Vertex ids are dense: a graph with `n` vertices uses ids `0..n`. The
/// newtype keeps vertex ids from being confused with ordinary counters or
/// with the *node* (machine) ids of the GAS engine.
///
/// ```
/// use snaple_graph::VertexId;
/// let v = VertexId::new(7);
/// assert_eq!(v.index(), 7);
/// assert_eq!(u32::from(v), 7);
/// assert_eq!(v.to_string(), "v7");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VertexId(u32);

impl VertexId {
    /// Creates a vertex id from its dense index.
    #[inline]
    pub const fn new(raw: u32) -> Self {
        VertexId(raw)
    }

    /// Returns the id as a `usize`, suitable for indexing per-vertex arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(raw: u32) -> Self {
        VertexId(raw)
    }
}

impl From<VertexId> for u32 {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0
    }
}

impl From<VertexId> for usize {
    #[inline]
    fn from(v: VertexId) -> Self {
        v.0 as usize
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_through_u32() {
        let v = VertexId::new(42);
        assert_eq!(VertexId::from(u32::from(v)), v);
        assert_eq!(v.index(), 42);
        assert_eq!(v.as_u32(), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(VertexId::new(1) < VertexId::new(2));
        assert_eq!(VertexId::default(), VertexId::new(0));
    }

    #[test]
    fn debug_is_never_empty() {
        assert_eq!(format!("{:?}", VertexId::new(3)), "v3");
        assert_eq!(format!("{}", VertexId::new(3)), "v3");
    }
}
