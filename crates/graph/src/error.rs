//! Error type for graph construction and I/O.

use std::error::Error as StdError;
use std::fmt;
use std::io;

/// Errors produced while building, reading or writing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A text edge list could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A binary graph file was malformed.
    Corrupt(String),
    /// An edge referenced a vertex outside the declared vertex range.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The number of vertices the graph was declared with.
        num_vertices: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            GraphError::Corrupt(msg) => write!(f, "corrupt graph file: {msg}"),
            GraphError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for graph with {num_vertices} vertices"
            ),
        }
    }
}

impl StdError for GraphError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = GraphError::Parse {
            line: 3,
            message: "expected two fields".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected two fields");
    }

    #[test]
    fn io_errors_convert_and_expose_source() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
