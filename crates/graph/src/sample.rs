//! Sampling primitives shared across the workspace.

use rand::Rng;

/// Reservoir-samples up to `k` items from an iterator (Algorithm R).
///
/// The result preserves no particular order. When the iterator yields `k`
/// or fewer items, all of them are returned.
///
/// ```
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = snaple_graph::sample::reservoir_sample(0..100, 5, &mut rng);
/// assert_eq!(s.len(), 5);
/// ```
pub fn reservoir_sample<T, I, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng,
{
    if k == 0 {
        return Vec::new();
    }
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_range(0..=i);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// Samples `k` distinct indices from `0..n` (Floyd's algorithm), returned in
/// ascending order.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_indices<R: Rng>(n: usize, k: usize, rng: &mut R) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} of {n}");
    let mut chosen = std::collections::BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reservoir_returns_everything_when_small() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = reservoir_sample(0..3, 10, &mut rng);
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_zero_is_empty() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(reservoir_sample(0..100, 0, &mut rng).is_empty());
    }

    #[test]
    fn reservoir_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = [0usize; 10];
        for _ in 0..5_000 {
            for x in reservoir_sample(0..10, 3, &mut rng) {
                counts[x] += 1;
            }
        }
        // Each element expected 1500 times; allow generous slack.
        for (i, &c) in counts.iter().enumerate() {
            assert!((1_200..1_800).contains(&c), "element {i}: {c}");
        }
    }

    #[test]
    fn sample_indices_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = sample_indices(20, 7, &mut rng);
            assert_eq!(s.len(), 7);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&i| i < 20));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(sample_indices(5, 5, &mut rng), vec![0, 1, 2, 3, 4]);
        assert!(sample_indices(5, 0, &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_indices_rejects_oversized_k() {
        let mut rng = StdRng::seed_from_u64(9);
        let _ = sample_indices(3, 4, &mut rng);
    }
}
