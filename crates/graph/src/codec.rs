//! The shared [`GraphDelta`] wire codec and CRC-32 checksum.
//!
//! Two independent byte streams carry graph deltas: the shard wire
//! protocol (`snaple-core`'s `shard::wire`, router → shard `Delta`
//! frames) and the durability commitlog (`snaple-store`, one fsync'd
//! frame per applied update). Both speak **one encoding**, defined here,
//! so a delta logged to disk is byte-identical to the same delta sent to
//! a shard — and a single fuzz/round-trip suite covers both.
//!
//! # Operation layout
//!
//! A delta is its operation sequence in arrival order (last-wins dedup
//! is order sensitive, see [`GraphDelta::ops`]):
//!
//! ```text
//! ┌────────────┬───────────────────────────────────────────┐
//! │ count: u32 │ count × (u: u32, v: u32, w: f32, kind: u8)│
//! │ LE         │ 13 bytes each, LE, w as to_bits, kind 0/1 │
//! └────────────┴───────────────────────────────────────────┘
//! ```
//!
//! Weights travel as raw `f32` bits (`to_bits`/`from_bits`), so a delta
//! that crosses the wire or survives a restart resolves bit-identically
//! to one that never left the process. `kind` is strictly `0` (remove)
//! or `1` (insert); anything else is a decode error. The decoder guards
//! the count against the remaining input *before* allocating, so a lying
//! or corrupted count cannot drive an over-allocation, and it never
//! panics — every malformed input maps to a typed [`CodecError`].

use std::error::Error as StdError;
use std::fmt;

use crate::GraphDelta;

/// Serialized size of one delta operation: `u32 + u32 + f32 + u8`.
pub const OP_BYTES: usize = 13;

/// A typed decode failure naming the field that was malformed or
/// missing. The codec never panics: truncated input, a lying count and
/// an out-of-range `kind` byte all map here.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CodecError(&'static str);

impl CodecError {
    /// The static description of the field that failed to decode
    /// (e.g. `"delta op count"`, `"delta kind"`).
    pub fn what(&self) -> &'static str {
        self.0
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed delta payload: {}", self.0)
    }
}

impl StdError for CodecError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), table-driven — shared by the shard frames and the
// commitlog frames.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            bit += 1;
        }
        table[i] = c; // snaple-lint: allow(index) — const-eval loop, i < 256 = table.len()
        i += 1;
    }
    table
}

/// CRC-32 (IEEE 802.3 / zlib) of `data`, resumable via `seed` (pass the
/// previous return value to continue over a split buffer; start at 0).
pub fn crc32(seed: u32, data: &[u8]) -> u32 {
    let mut c = !seed;
    for &b in data {
        // snaple-lint: allow(index) — the index is masked to 8 bits; CRC_TABLE has 256 entries
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// Encoding.
// ---------------------------------------------------------------------------

/// Appends the encoded operation sequence (count prefix + [`OP_BYTES`]
/// per op) to `out`.
pub fn encode_ops(out: &mut Vec<u8>, ops: &[(u32, u32, f32, bool)]) {
    out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
    for &(u, v, w, insert) in ops {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&w.to_bits().to_le_bytes());
        out.push(insert as u8);
    }
}

/// Appends `delta`'s encoded operation sequence to `out` — identical
/// bytes to [`encode_ops`] over [`GraphDelta::ops`].
pub fn encode_delta(out: &mut Vec<u8>, delta: &GraphDelta) {
    out.extend_from_slice(&(delta.len() as u32).to_le_bytes());
    for (u, v, w, insert) in delta.ops() {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
        out.extend_from_slice(&w.to_bits().to_le_bytes());
        out.push(insert as u8);
    }
}

// ---------------------------------------------------------------------------
// Decoding.
// ---------------------------------------------------------------------------

fn get_u8(input: &mut &[u8], what: &'static str) -> Result<u8, CodecError> {
    let (&b, rest) = input.split_first().ok_or(CodecError(what))?;
    *input = rest;
    Ok(b)
}

fn get_u32(input: &mut &[u8], what: &'static str) -> Result<u32, CodecError> {
    let (head, rest) = input.split_first_chunk::<4>().ok_or(CodecError(what))?;
    *input = rest;
    Ok(u32::from_le_bytes(*head))
}

fn get_f32(input: &mut &[u8], what: &'static str) -> Result<f32, CodecError> {
    Ok(f32::from_bits(get_u32(input, what)?))
}

/// Reads the operation count and guards it against the remaining input:
/// each op needs [`OP_BYTES`], so a lying count is rejected before any
/// allocation.
fn get_count(input: &mut &[u8], what: &'static str) -> Result<usize, CodecError> {
    let n = get_u32(input, what)? as usize;
    if n.saturating_mul(OP_BYTES) > input.len() {
        return Err(CodecError(what));
    }
    Ok(n)
}

/// Decodes an operation sequence, advancing `input` past it. Trailing
/// bytes after the sequence are left in `input` (callers embedding the
/// sequence mid-payload keep decoding; whole-payload callers check
/// emptiness themselves).
///
/// # Errors
///
/// [`CodecError`] on truncated input, an over-long count, or a `kind`
/// byte outside `{0, 1}`.
pub fn decode_ops(input: &mut &[u8]) -> Result<Vec<(u32, u32, f32, bool)>, CodecError> {
    let n = get_count(input, "delta op count")?;
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let u = get_u32(input, "delta u")?;
        let v = get_u32(input, "delta v")?;
        let w = get_f32(input, "delta w")?;
        let insert = match get_u8(input, "delta kind")? {
            0 => false,
            1 => true,
            _ => return Err(CodecError("delta kind")),
        };
        ops.push((u, v, w, insert));
    }
    Ok(ops)
}

/// Decodes an operation sequence into a [`GraphDelta`], advancing
/// `input` past it. Resolution semantics are preserved exactly: the
/// rebuilt delta holds the same operations in the same arrival order.
///
/// # Errors
///
/// Same as [`decode_ops`].
pub fn decode_delta(input: &mut &[u8]) -> Result<GraphDelta, CodecError> {
    let n = get_count(input, "delta op count")?;
    let mut delta = GraphDelta::with_capacity(n);
    for _ in 0..n {
        let u = get_u32(input, "delta u")?;
        let v = get_u32(input, "delta v")?;
        let w = get_f32(input, "delta w")?;
        match get_u8(input, "delta kind")? {
            0 => delta.remove(u, v),
            1 => delta.insert_weighted(u, v, w),
            _ => return Err(CodecError("delta kind")),
        };
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_vector() {
        // The standard CRC-32 (IEEE) check value.
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_resumes_across_splits() {
        let whole = crc32(0, b"123456789");
        let split = crc32(crc32(0, b"1234"), b"56789");
        assert_eq!(whole, split);
    }

    #[test]
    fn golden_op_bytes() {
        // Pins the exact serialized layout: count prefix then 13 bytes
        // per op, all LE, weight as raw f32 bits, kind 0/1.
        let mut out = Vec::new();
        encode_ops(&mut out, &[(1, 2, 1.5, true), (3, 4, 0.0, false)]);
        #[rustfmt::skip]
        let expected: Vec<u8> = vec![
            2, 0, 0, 0,                   // count
            1, 0, 0, 0,   2, 0, 0, 0,     // u, v
            0x00, 0x00, 0xC0, 0x3F,       // 1.5f32.to_bits()
            1,                            // insert
            3, 0, 0, 0,   4, 0, 0, 0,     // u, v
            0, 0, 0, 0,                   // 0.0
            0,                            // remove
        ];
        assert_eq!(out, expected);
    }

    #[test]
    fn ops_and_delta_encodings_agree() {
        let mut delta = GraphDelta::new();
        delta
            .insert(7, 9)
            .insert_weighted(1, 2, 0.25)
            .remove(7, 9)
            .insert(0, 3);
        let ops: Vec<_> = delta.ops().collect();
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_ops(&mut a, &ops);
        encode_delta(&mut b, &delta);
        assert_eq!(a, b);
    }

    #[test]
    fn round_trips_preserve_arrival_order() {
        let mut delta = GraphDelta::new();
        delta
            .insert(5, 6)
            .remove(5, 6)
            .insert_weighted(6, 5, -2.5)
            .insert(5, 6);
        let mut bytes = Vec::new();
        encode_delta(&mut bytes, &delta);

        let mut input = bytes.as_slice();
        let decoded = decode_delta(&mut input).expect("decode");
        assert!(input.is_empty());
        assert_eq!(
            decoded.ops().collect::<Vec<_>>(),
            delta.ops().collect::<Vec<_>>()
        );

        let mut input = bytes.as_slice();
        let ops = decode_ops(&mut input).expect("decode ops");
        assert!(input.is_empty());
        assert_eq!(ops, delta.ops().collect::<Vec<_>>());
    }

    #[test]
    fn nan_weights_round_trip_bit_exact() {
        let weird = f32::from_bits(0x7FC0_1234); // a payload-carrying NaN
        let ops = vec![(1u32, 2u32, weird, true)];
        let mut bytes = Vec::new();
        encode_ops(&mut bytes, &ops);
        let decoded = decode_ops(&mut bytes.as_slice()).expect("decode");
        assert_eq!(decoded[0].2.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncated_inputs_are_typed_errors() {
        let mut bytes = Vec::new();
        encode_ops(&mut bytes, &[(1, 2, 1.0, true), (3, 4, 1.0, true)]);
        for cut in 0..bytes.len() {
            let mut input = &bytes[..cut];
            let err = decode_ops(&mut input).expect_err("truncation must fail");
            assert!(!err.what().is_empty());
        }
    }

    #[test]
    fn lying_count_is_rejected_before_allocation() {
        // Count claims u32::MAX ops with no bytes behind it.
        let bytes = u32::MAX.to_le_bytes();
        let err = decode_ops(&mut bytes.as_slice()).expect_err("must fail");
        assert_eq!(err.what(), "delta op count");
    }

    #[test]
    fn bad_kind_byte_is_rejected() {
        let mut bytes = Vec::new();
        encode_ops(&mut bytes, &[(1, 2, 1.0, true)]);
        *bytes.last_mut().expect("non-empty") = 2;
        let err = decode_ops(&mut bytes.as_slice()).expect_err("must fail");
        assert_eq!(err.what(), "delta kind");
    }

    #[test]
    fn fuzz_decode_never_panics_and_round_trips_survivors() {
        // Deterministic structured fuzz: hash-derived byte soup plus
        // mutated valid encodings. Every outcome must be a clean decode
        // or a typed error — and whatever decodes must re-encode to the
        // bytes consumed.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..500 {
            let len = (next() % 64) as usize;
            let mut bytes: Vec<u8> = (0..len).map(|_| (next() & 0xFF) as u8).collect();
            if round % 3 == 0 {
                // Seed with a valid encoding, then flip one byte.
                bytes.clear();
                encode_ops(
                    &mut bytes,
                    &[
                        (
                            (next() & 0xFFFF) as u32,
                            (next() & 0xFFFF) as u32,
                            1.0,
                            true,
                        ),
                        (
                            (next() & 0xFFFF) as u32,
                            (next() & 0xFFFF) as u32,
                            0.0,
                            false,
                        ),
                    ],
                );
                let pos = (next() as usize) % bytes.len();
                if let Some(b) = bytes.get_mut(pos) {
                    *b ^= 1 << (next() % 8);
                }
            }
            let mut input = bytes.as_slice();
            if let Ok(ops) = decode_ops(&mut input) {
                let consumed = bytes.len() - input.len();
                let mut re = Vec::new();
                encode_ops(&mut re, &ops);
                assert_eq!(re.as_slice(), &bytes[..consumed]);
            }
        }
    }
}
