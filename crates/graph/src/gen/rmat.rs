//! Streaming RMAT/Kronecker edge generator.
//!
//! The in-RAM generators in [`gen`](crate::gen) materialize their whole
//! edge set — fine up to bench scale, useless for the 100M–1B-edge
//! graphs the data plane targets. RMAT (recursive-matrix, the Graph500
//! kernel) needs no global state: each edge is drawn by descending
//! `scale` levels of a 2×2 probability matrix, so edge `i` is a pure
//! function of `(seed, i)`. That makes the generator *streaming* (edges
//! go straight into an [`ExternalGraphBuilder`] without an edge list
//! ever existing) and trivially resumable/parallelizable.
//!
//! The builder dedups and drops self-loops, so the final edge count is
//! slightly below `edges` (RMAT naturally collides on hub vertices);
//! callers needing an exact count should over-draw. Defaults follow the
//! Graph500 parameters `a=0.57, b=0.19, c=0.19`.

use std::path::Path;

use crate::extbuild::{BuildStats, ExternalGraphBuilder};
use crate::hash::{hash2, unit_f64};
use crate::{CsrGraph, GraphBuilder, GraphError};

/// Parameters of an RMAT draw.
#[derive(Clone, Copy, Debug)]
pub struct RmatConfig {
    /// `log2` of the vertex count: the graph has `1 << scale` vertices.
    pub scale: u32,
    /// Edges to draw (pre-dedup; see the module docs).
    pub edges: u64,
    /// Top-left quadrant probability (both ids keep their high bit 0).
    pub a: f64,
    /// Top-right quadrant probability (target takes the high bit).
    pub b: f64,
    /// Bottom-left quadrant probability (source takes the high bit).
    pub c: f64,
    /// Seed driving the whole draw.
    pub seed: u64,
}

impl Default for RmatConfig {
    fn default() -> Self {
        RmatConfig {
            scale: 16,
            edges: 1 << 20,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 42,
        }
    }
}

impl RmatConfig {
    /// The vertex count, `1 << scale`.
    pub fn num_vertices(&self) -> u64 {
        1u64 << self.scale.min(32)
    }

    /// Draws edge `i` — a pure function of `(seed, i)`.
    pub fn edge_at(&self, i: u64) -> (u32, u32) {
        let (mut u, mut v) = (0u32, 0u32);
        let ab = self.a + self.b;
        let abc = ab + self.c;
        for level in 0..self.scale.min(32) {
            let r = unit_f64(hash2(self.seed, i, level as u64));
            let bit = 1u32 << level;
            if r < self.a {
                // top-left: neither takes the bit
            } else if r < ab {
                v |= bit;
            } else if r < abc {
                u |= bit;
            } else {
                u |= bit;
                v |= bit;
            }
        }
        (u, v)
    }

    /// Streams every edge of the draw through `f` in index order.
    pub fn stream(&self, mut f: impl FnMut(u32, u32)) {
        for i in 0..self.edges {
            let (u, v) = self.edge_at(i);
            f(u, v);
        }
    }

    /// Streams the draw straight to a raw `SNPLG2` file through an
    /// [`ExternalGraphBuilder`] — the edge list never exists in RAM.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures.
    pub fn generate_to_file(&self, out: &Path) -> Result<BuildStats, GraphError> {
        self.generate_with(ExternalGraphBuilder::new(), out)
    }

    /// Like [`RmatConfig::generate_to_file`] with a caller-configured
    /// builder (scratch dir, chunk size, symmetrize…).
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures.
    pub fn generate_with(
        &self,
        mut builder: ExternalGraphBuilder,
        out: &Path,
    ) -> Result<BuildStats, GraphError> {
        builder.reserve_vertices(self.num_vertices() as usize);
        let mut err = None;
        self.stream(|u, v| {
            if err.is_none() {
                if let Err(e) = builder.add_edge(u, v) {
                    err = Some(e);
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        builder.build(out)
    }

    /// Materializes the draw in RAM — small scales and tests only.
    pub fn generate_in_ram(&self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.edges as usize);
        b.reserve_vertices(self.num_vertices() as usize);
        self.stream(|u, v| {
            b.add_edge(u, v);
        });
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::v2;

    #[test]
    fn edges_are_deterministic_and_in_range() {
        let cfg = RmatConfig {
            scale: 10,
            edges: 5_000,
            ..RmatConfig::default()
        };
        let n = cfg.num_vertices() as u32;
        for i in (0..cfg.edges).step_by(97) {
            let (u, v) = cfg.edge_at(i);
            assert_eq!((u, v), cfg.edge_at(i), "edge {i} not deterministic");
            assert!(u < n && v < n, "edge {i} out of range: ({u}, {v})");
        }
        let other = RmatConfig { seed: 7, ..cfg };
        assert_ne!(
            (0..64).map(|i| cfg.edge_at(i)).collect::<Vec<_>>(),
            (0..64).map(|i| other.edge_at(i)).collect::<Vec<_>>(),
            "seed must matter"
        );
    }

    #[test]
    fn skew_favors_low_ids() {
        // RMAT's defining property: hubs concentrate at low vertex ids.
        let cfg = RmatConfig {
            scale: 12,
            edges: 20_000,
            ..RmatConfig::default()
        };
        let half = cfg.num_vertices() as u32 / 2;
        let mut low = 0u64;
        cfg.stream(|u, v| {
            if u < half {
                low += 1;
            }
            if v < half {
                low += 1;
            }
        });
        let frac = low as f64 / (2 * cfg.edges) as f64;
        assert!(frac > 0.6, "low-half endpoint fraction {frac} not skewed");
    }

    #[test]
    fn streamed_file_matches_the_in_ram_draw() {
        let cfg = RmatConfig {
            scale: 8,
            edges: 2_000,
            ..RmatConfig::default()
        };
        let expected = cfg.generate_in_ram();
        let path = std::env::temp_dir().join(format!("snpl-rmat-{}.snplg", std::process::id()));
        let stats = cfg
            .generate_with(
                crate::extbuild::ExternalGraphBuilder::with_chunk_edges(257),
                &path,
            )
            .expect("generate");
        assert_eq!(stats.edges, expected.num_edges());
        let got = v2::decode_v2(&std::fs::read(&path).expect("read")).expect("decode");
        assert_eq!(got.num_vertices(), expected.num_vertices());
        for u in expected.vertices() {
            assert_eq!(got.out_neighbors(u), expected.out_neighbors(u), "{u} out");
            assert_eq!(got.in_neighbors(u), expected.in_neighbors(u), "{u} in");
        }
        std::fs::remove_file(&path).ok();
    }
}
