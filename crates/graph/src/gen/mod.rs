//! Seeded synthetic graph generators.
//!
//! The paper evaluates on five public social/web graphs (Table 4). Those
//! datasets cannot ship with this repository, so [`datasets`] provides
//! *emulators*: generators parameterized to match each dataset's vertex
//! count, edge count, directedness and degree-distribution shape at a
//! configurable scale. The raw models live in this module:
//!
//! * [`erdos_renyi`] — `G(n, m)` uniform random graphs (low clustering; a
//!   useful negative control for link prediction).
//! * [`barabasi_albert`] — preferential attachment (power-law degrees).
//! * [`holme_kim`] — preferential attachment with triad formation
//!   (power-law degrees *and* high clustering; the workhorse for social
//!   graph emulation).
//! * [`watts_strogatz`] — ring rewiring (high clustering, flat degrees).
//!
//! All models are deterministic given an RNG and return an
//! [`UndirectedEdges`] set which can be materialized either symmetrically
//! (the paper's treatment of undirected datasets) or with a target
//! [reciprocity](crate::stats::reciprocity) for directed datasets.

pub mod datasets;
pub mod rmat;

use std::collections::HashSet;

use rand::Rng;

use crate::{CsrGraph, GraphBuilder};

/// An undirected edge set produced by a generator, before the choice of
/// directed materialization.
#[derive(Clone, Debug)]
pub struct UndirectedEdges {
    num_vertices: usize,
    pairs: Vec<(u32, u32)>,
}

impl UndirectedEdges {
    /// Number of vertices the generator produced.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of undirected pairs.
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The raw `(u, v)` pairs with `u < v`.
    pub fn pairs(&self) -> &[(u32, u32)] {
        &self.pairs
    }

    /// Materializes the edge set as a directed graph containing both
    /// orientations of every pair — the paper's transformation of the
    /// undirected *gowalla*/*orkut* datasets.
    pub fn into_symmetric_graph(self) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.pairs.len());
        b.symmetrize(true);
        b.reserve_vertices(self.num_vertices);
        for (u, v) in self.pairs {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Materializes the edge set as a directed graph whose *edge*
    /// reciprocity (the fraction of directed edges with a reverse edge, as
    /// measured by [`crate::stats::reciprocity`]) approximates
    /// `reciprocity`. Internally a pair keeps both orientations with
    /// probability `reciprocity / (2 - reciprocity)` — the pair-level rate
    /// that yields the requested edge-level rate — and one uniformly random
    /// orientation otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `reciprocity` is not in `[0, 1]`.
    pub fn into_oriented_graph<R: Rng>(self, reciprocity: f64, rng: &mut R) -> CsrGraph {
        assert!(
            (0.0..=1.0).contains(&reciprocity),
            "reciprocity must be in [0, 1], got {reciprocity}"
        );
        let p_both = reciprocity / (2.0 - reciprocity);
        let mut b = GraphBuilder::with_capacity(self.pairs.len() * 2);
        b.reserve_vertices(self.num_vertices);
        for (u, v) in self.pairs {
            if rng.gen::<f64>() < p_both {
                b.add_edge(u, v);
                b.add_edge(v, u);
            } else if rng.gen::<bool>() {
                b.add_edge(u, v);
            } else {
                b.add_edge(v, u);
            }
        }
        b.build()
    }
}

/// Uniform random graph `G(n, m)`: `m` distinct undirected pairs.
///
/// # Panics
///
/// Panics if `m` exceeds the number of distinct pairs `n·(n−1)/2`.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> UndirectedEdges {
    let max_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_pairs,
        "G({n}, {m}) requested but only {max_pairs} pairs exist"
    );
    let mut seen: HashSet<u64> = HashSet::with_capacity(m * 2);
    let mut pairs = Vec::with_capacity(m);
    while pairs.len() < m {
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        if seen.insert((u as u64) << 32 | v as u64) {
            pairs.push((u, v));
        }
    }
    UndirectedEdges {
        num_vertices: n,
        pairs,
    }
}

/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// edges to existing vertices with probability proportional to degree.
///
/// Equivalent to [`holme_kim`] with `p_triad = 0`.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> UndirectedEdges {
    holme_kim(n, m, 0.0, rng)
}

/// Holme–Kim "power-law cluster" model: preferential attachment where each
/// additional edge of a new vertex closes a triangle with probability
/// `p_triad` (attaching to a random neighbor of the previously chosen
/// target). Produces power-law degree distributions with tunable
/// clustering — the degree/clustering regime of the paper's social graphs.
///
/// # Panics
///
/// Panics if `m == 0`, `n <= m`, or `p_triad` is outside `[0, 1]`.
pub fn holme_kim<R: Rng>(n: usize, m: usize, p_triad: f64, rng: &mut R) -> UndirectedEdges {
    assert!(m >= 1, "holme_kim requires m >= 1");
    assert!(n > m, "holme_kim requires n > m (got n = {n}, m = {m})");
    assert!(
        (0.0..=1.0).contains(&p_triad),
        "p_triad must be in [0, 1], got {p_triad}"
    );
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    // Pool of endpoints for degree-proportional sampling.
    let mut pool: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity((n - m) * m);

    let connect = |adj: &mut Vec<Vec<u32>>,
                   pool: &mut Vec<u32>,
                   pairs: &mut Vec<(u32, u32)>,
                   v: u32,
                   t: u32| {
        adj[v as usize].push(t);
        adj[t as usize].push(v);
        pool.push(v);
        pool.push(t);
        pairs.push(if v < t { (v, t) } else { (t, v) });
    };

    for v in m as u32..n as u32 {
        let mut last_target: Option<u32> = None;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < m && attempts < 50 * m {
            attempts += 1;
            let candidate = if let Some(t) = last_target.filter(|_| rng.gen::<f64>() < p_triad) {
                // Triad formation: a random neighbor of the previous target.
                let nbrs = &adj[t as usize];
                if nbrs.is_empty() {
                    pick_preferential(&pool, v, rng)
                } else {
                    Some(nbrs[rng.gen_range(0..nbrs.len())])
                }
            } else {
                pick_preferential(&pool, v, rng)
            };
            let Some(t) = candidate_ok(candidate, v, &adj) else {
                continue;
            };
            connect(&mut adj, &mut pool, &mut pairs, v, t);
            last_target = Some(t);
            added += 1;
        }
    }
    UndirectedEdges {
        num_vertices: n,
        pairs,
    }
}

fn pick_preferential<R: Rng>(pool: &[u32], new_vertex: u32, rng: &mut R) -> Option<u32> {
    if pool.is_empty() {
        // Bootstrap: uniform among the seed vertices.
        if new_vertex == 0 {
            None
        } else {
            Some(rng.gen_range(0..new_vertex))
        }
    } else {
        Some(pool[rng.gen_range(0..pool.len())])
    }
}

fn candidate_ok(candidate: Option<u32>, v: u32, adj: &[Vec<u32>]) -> Option<u32> {
    let t = candidate?;
    if t == v || adj[v as usize].contains(&t) {
        None
    } else {
        Some(t)
    }
}

/// Parameters of the [`community_graph`] model.
#[derive(Copy, Clone, Debug)]
pub struct CommunityParams {
    /// Edges attached per new vertex (as in [`holme_kim`]).
    pub m: usize,
    /// Probability that an additional edge closes a triangle.
    pub p_triad: f64,
    /// Probability that a non-triad edge stays inside the vertex's
    /// community.
    pub p_community: f64,
    /// Mean community size (communities are geometrically distributed
    /// around this mean).
    pub mean_community_size: usize,
}

/// Community-structured preferential attachment: [`holme_kim`] extended
/// with a planted community partition.
///
/// Every vertex belongs to one community (sizes geometric with the given
/// mean). When a new vertex attaches an edge, with probability
/// `p_community` the target is drawn degree-proportionally *within its own
/// community*, otherwise from the global degree distribution; additional
/// edges close triangles with probability `p_triad` as in Holme–Kim.
///
/// The result keeps the power-law degree tail of preferential attachment
/// while adding the homophily that makes neighborhood similarity
/// informative on real social graphs — the property SNAPLE's raw
/// similarities exploit (paper §3.1: "the homophily often observed in
/// field graphs").
///
/// # Panics
///
/// Panics on the same conditions as [`holme_kim`], or if probabilities are
/// outside `[0, 1]`, or if `mean_community_size == 0`.
pub fn community_graph<R: Rng>(n: usize, params: CommunityParams, rng: &mut R) -> UndirectedEdges {
    community_graph_with_labels(n, params, rng).0
}

/// Like [`community_graph`], additionally returning each vertex's planted
/// community label — the ground truth needed to synthesize *vertex
/// content* correlated with structure (see [`community_tags`]).
pub fn community_graph_with_labels<R: Rng>(
    n: usize,
    params: CommunityParams,
    rng: &mut R,
) -> (UndirectedEdges, Vec<u32>) {
    let CommunityParams {
        m,
        p_triad,
        p_community,
        mean_community_size,
    } = params;
    assert!(m >= 1, "community_graph requires m >= 1");
    assert!(n > m, "community_graph requires n > m");
    assert!((0.0..=1.0).contains(&p_triad), "p_triad must be in [0, 1]");
    assert!(
        (0.0..=1.0).contains(&p_community),
        "p_community must be in [0, 1]"
    );
    assert!(mean_community_size >= 1, "communities must be nonempty");

    // Assign communities: consecutive blocks of geometric size, then the
    // block boundaries are effectively random relative to attachment order
    // because ids carry no meaning beyond insertion time. Using blocks
    // keeps assignment O(n) and reproducible.
    let mut community_of: Vec<u32> = Vec::with_capacity(n);
    let mut community = 0u32;
    let mut remaining = sample_community_size(mean_community_size, rng);
    for _ in 0..n {
        if remaining == 0 {
            community += 1;
            remaining = sample_community_size(mean_community_size, rng);
        }
        community_of.push(community);
        remaining -= 1;
    }
    let num_communities = community as usize + 1;

    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut global_pool: Vec<u32> = Vec::new();
    let mut community_pool: Vec<Vec<u32>> = vec![Vec::new(); num_communities];
    // Vertices of each community processed so far (for bootstrap picks).
    let mut active: Vec<Vec<u32>> = vec![Vec::new(); num_communities];
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity((n - m) * m);

    for (v, &c) in community_of.iter().enumerate().take(m) {
        active[c as usize].push(v as u32);
    }
    for v in m as u32..n as u32 {
        let c = community_of[v as usize] as usize;
        let mut last_target: Option<u32> = None;
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < m && attempts < 50 * m {
            attempts += 1;
            let candidate = if let Some(t) = last_target.filter(|_| rng.gen::<f64>() < p_triad) {
                let nbrs = &adj[t as usize];
                if nbrs.is_empty() {
                    pick_preferential(&global_pool, v, rng)
                } else {
                    Some(nbrs[rng.gen_range(0..nbrs.len())])
                }
            } else if rng.gen::<f64>() < p_community {
                // Community-local attachment: degree-proportional within c,
                // bootstrapping from uniform members.
                if !community_pool[c].is_empty() {
                    Some(community_pool[c][rng.gen_range(0..community_pool[c].len())])
                } else if !active[c].is_empty() {
                    Some(active[c][rng.gen_range(0..active[c].len())])
                } else {
                    pick_preferential(&global_pool, v, rng)
                }
            } else {
                pick_preferential(&global_pool, v, rng)
            };
            let Some(t) = candidate_ok(candidate, v, &adj) else {
                continue;
            };
            adj[v as usize].push(t);
            adj[t as usize].push(v);
            global_pool.push(v);
            global_pool.push(t);
            community_pool[c].push(v);
            community_pool[community_of[t as usize] as usize].push(t);
            pairs.push(if v < t { (v, t) } else { (t, v) });
            last_target = Some(t);
            added += 1;
        }
        active[c].push(v);
    }
    (
        UndirectedEdges {
            num_vertices: n,
            pairs,
        },
        community_of,
    )
}

/// Synthesizes per-vertex *tag bags* (content) correlated with a planted
/// community structure: each community owns `vocabulary` private tags plus
/// a shared global pool; every vertex draws `tags_per_vertex` tags, each
/// from its community's vocabulary with probability `1 - noise` and from
/// the global pool otherwise. Returned bags are sorted and deduplicated,
/// ready for set similarities — the "user profiles, tags, or documents"
/// the paper's §2.1/§3.1 content extension refers to.
///
/// # Panics
///
/// Panics if `noise` is outside `[0, 1]` or `vocabulary == 0`.
pub fn community_tags<R: Rng>(
    communities: &[u32],
    tags_per_vertex: usize,
    vocabulary: usize,
    noise: f64,
    rng: &mut R,
) -> Vec<Vec<u32>> {
    assert!((0.0..=1.0).contains(&noise), "noise must be in [0, 1]");
    assert!(vocabulary >= 1, "each community needs a vocabulary");
    let num_communities = communities
        .iter()
        .copied()
        .max()
        .map_or(0, |c| c as usize + 1);
    let global_pool = (num_communities * vocabulary) as u32;
    communities
        .iter()
        .map(|&c| {
            let mut bag: Vec<u32> = (0..tags_per_vertex)
                .map(|_| {
                    if rng.gen::<f64>() < noise {
                        global_pool + rng.gen_range(0..global_pool.max(1))
                    } else {
                        c * vocabulary as u32 + rng.gen_range(0..vocabulary as u32)
                    }
                })
                .collect();
            bag.sort_unstable();
            bag.dedup();
            bag
        })
        .collect()
}

fn sample_community_size<R: Rng>(mean: usize, rng: &mut R) -> usize {
    // Geometric with the given mean (support >= 1).
    if mean <= 1 {
        return 1;
    }
    let p = 1.0 / mean as f64;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    ((u.ln() / (1.0 - p).ln()).ceil() as usize).max(1)
}

/// Watts–Strogatz small world: ring lattice with `k` neighbors per vertex
/// (`k/2` on each side) where each edge is rewired with probability `beta`.
///
/// # Panics
///
/// Panics if `k` is odd, `k == 0`, `n <= k`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> UndirectedEdges {
    assert!(
        k >= 2 && k.is_multiple_of(2),
        "watts_strogatz requires even k >= 2"
    );
    assert!(n > k, "watts_strogatz requires n > k");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut seen: HashSet<u64> = HashSet::with_capacity(n * k);
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(n * k / 2);
    let key = |u: u32, v: u32| {
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        (a as u64) << 32 | b as u64
    };
    for u in 0..n as u32 {
        for j in 1..=(k / 2) as u32 {
            let v = (u + j) % n as u32;
            let (mut a, mut b) = (u, v);
            if rng.gen::<f64>() < beta {
                // Rewire the far endpoint uniformly.
                for _ in 0..32 {
                    let w = rng.gen_range(0..n as u32);
                    if w != a && !seen.contains(&key(a, w)) {
                        b = w;
                        break;
                    }
                }
            }
            if seen.insert(key(a, b)) {
                if a > b {
                    std::mem::swap(&mut a, &mut b);
                }
                pairs.push((a, b));
            }
        }
    }
    UndirectedEdges {
        num_vertices: n,
        pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use crate::Direction;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_has_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let e = erdos_renyi(100, 250, &mut rng);
        assert_eq!(e.num_pairs(), 250);
        let g = e.into_symmetric_graph();
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn erdos_renyi_pairs_are_distinct_and_canonical() {
        let mut rng = StdRng::seed_from_u64(2);
        let e = erdos_renyi(50, 300, &mut rng);
        let mut ps = e.pairs().to_vec();
        assert!(ps.iter().all(|&(u, v)| u < v));
        ps.sort_unstable();
        ps.dedup();
        assert_eq!(ps.len(), 300);
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn erdos_renyi_rejects_impossible_m() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = erdos_renyi(3, 10, &mut rng);
    }

    #[test]
    fn barabasi_albert_produces_heavy_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = barabasi_albert(2_000, 4, &mut rng).into_symmetric_graph();
        let s = stats::degree_summary(&g, Direction::Out);
        // Power law: max degree far above the mean.
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
        // Every non-seed vertex attached ~m edges.
        assert!(s.mean >= 6.0, "mean {}", s.mean);
    }

    #[test]
    fn holme_kim_clusters_more_than_ba() {
        let mut rng = StdRng::seed_from_u64(4);
        let ba = barabasi_albert(3_000, 5, &mut rng).into_symmetric_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let hk = holme_kim(3_000, 5, 0.7, &mut rng).into_symmetric_graph();
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        let c_ba = stats::clustering_coefficient(&ba, 400, &mut r1);
        let c_hk = stats::clustering_coefficient(&hk, 400, &mut r2);
        assert!(
            c_hk > 2.0 * c_ba,
            "expected triad formation to raise clustering: hk {c_hk} vs ba {c_ba}"
        );
    }

    #[test]
    fn watts_strogatz_zero_beta_is_a_ring() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = watts_strogatz(20, 4, 0.0, &mut rng).into_symmetric_graph();
        for u in g.vertices() {
            assert_eq!(g.out_degree(u), 4, "vertex {u}");
        }
    }

    #[test]
    fn watts_strogatz_rewiring_preserves_edge_count_roughly() {
        let mut rng = StdRng::seed_from_u64(6);
        let e = watts_strogatz(500, 6, 0.3, &mut rng);
        // Rewiring can only lose edges to collision fallback; bound the loss.
        assert!(e.num_pairs() >= 500 * 3 - 50, "pairs {}", e.num_pairs());
    }

    #[test]
    fn oriented_graph_hits_target_reciprocity() {
        let mut rng = StdRng::seed_from_u64(7);
        let e = erdos_renyi(400, 3_000, &mut rng);
        let g = e.into_oriented_graph(0.4, &mut rng);
        let r = stats::reciprocity(&g);
        assert!((r - 0.4).abs() < 0.12, "reciprocity {r}");
        let mut rng = StdRng::seed_from_u64(7);
        let e = erdos_renyi(400, 3_000, &mut rng);
        let g = e.into_symmetric_graph();
        assert!((stats::reciprocity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn community_graph_is_homophilous() {
        // With strong community bias, neighbors-of-neighbors should be far
        // more likely to share a community than under plain Holme–Kim.
        let params = CommunityParams {
            m: 5,
            p_triad: 0.3,
            p_community: 0.9,
            mean_community_size: 25,
        };
        let mut rng = StdRng::seed_from_u64(13);
        let e = community_graph(3_000, params, &mut rng);
        let g = e.into_symmetric_graph();
        let mut r = StdRng::seed_from_u64(14);
        let clustered = stats::clustering_coefficient(&g, 400, &mut r);

        let mut rng = StdRng::seed_from_u64(13);
        let ba = barabasi_albert(3_000, 5, &mut rng).into_symmetric_graph();
        let mut r = StdRng::seed_from_u64(14);
        let ba_clustering = stats::clustering_coefficient(&ba, 400, &mut r);
        assert!(
            clustered > 3.0 * ba_clustering,
            "community graph {clustered} vs ba {ba_clustering}"
        );
    }

    #[test]
    fn community_graph_keeps_heavy_tail_and_size() {
        let params = CommunityParams {
            m: 4,
            p_triad: 0.2,
            p_community: 0.7,
            mean_community_size: 30,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let g = community_graph(4_000, params, &mut rng).into_symmetric_graph();
        assert_eq!(g.num_vertices(), 4_000);
        let s = stats::degree_summary(&g, Direction::Out);
        assert!(s.max as f64 > 4.0 * s.mean, "max {} mean {}", s.max, s.mean);
        // Every non-seed vertex attached ~m undirected edges.
        assert!(s.mean >= 6.0, "mean {}", s.mean);
    }

    #[test]
    fn community_sizes_have_requested_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<usize> = (0..20_000)
            .map(|_| sample_community_size(25, &mut rng))
            .collect();
        let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
        assert!((mean - 25.0).abs() < 1.5, "mean {mean}");
        assert!(samples.iter().all(|&s| s >= 1));
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_community_size(1, &mut rng), 1);
    }

    #[test]
    fn community_tags_are_homophilous() {
        let params = CommunityParams {
            m: 4,
            p_triad: 0.3,
            p_community: 0.8,
            mean_community_size: 20,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let (_edges, labels) = community_graph_with_labels(1_000, params, &mut rng);
        assert_eq!(labels.len(), 1_000);
        let tags = community_tags(&labels, 6, 10, 0.1, &mut rng);
        assert_eq!(tags.len(), 1_000);
        for bag in &tags {
            assert!(bag.windows(2).all(|w| w[0] < w[1]), "bags sorted/deduped");
        }
        // Same-community pairs share far more tags than cross-community.
        let overlap = |a: &[u32], b: &[u32]| a.iter().filter(|t| b.contains(t)).count();
        let mut same = 0usize;
        let mut cross = 0usize;
        let mut same_n = 0usize;
        let mut cross_n = 0usize;
        for i in (0..1_000).step_by(7) {
            for j in (1..1_000).step_by(13) {
                if i == j {
                    continue;
                }
                let o = overlap(&tags[i], &tags[j]);
                if labels[i] == labels[j] {
                    same += o;
                    same_n += 1;
                } else {
                    cross += o;
                    cross_n += 1;
                }
            }
        }
        if same_n > 0 && cross_n > 0 {
            let same_avg = same as f64 / same_n as f64;
            let cross_avg = cross as f64 / cross_n as f64;
            assert!(
                same_avg > 3.0 * cross_avg,
                "same {same_avg} vs cross {cross_avg}"
            );
        }
    }

    #[test]
    fn labeled_and_unlabeled_generators_agree() {
        let params = CommunityParams {
            m: 3,
            p_triad: 0.4,
            p_community: 0.7,
            mean_community_size: 15,
        };
        let a = {
            let mut rng = StdRng::seed_from_u64(11);
            community_graph(500, params, &mut rng).into_symmetric_graph()
        };
        let b = {
            let mut rng = StdRng::seed_from_u64(11);
            community_graph_with_labels(500, params, &mut rng)
                .0
                .into_symmetric_graph()
        };
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn generators_are_deterministic_under_a_seed() {
        let g1 = {
            let mut rng = StdRng::seed_from_u64(11);
            holme_kim(500, 3, 0.5, &mut rng).into_symmetric_graph()
        };
        let g2 = {
            let mut rng = StdRng::seed_from_u64(11);
            holme_kim(500, 3, 0.5, &mut rng).into_symmetric_graph()
        };
        assert_eq!(g1.num_edges(), g2.num_edges());
        for u in g1.vertices() {
            assert_eq!(g1.out_neighbors(u), g2.out_neighbors(u));
        }
    }
}
