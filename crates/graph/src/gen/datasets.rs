//! Emulators for the five datasets of the paper's Table 4.
//!
//! The originals are public but far too large to ship (and `twitter-rv` is
//! 1.4 billion edges); instead each dataset is described by a
//! [`DatasetSpec`] holding its published size, directedness and structural
//! knobs, and [`DatasetSpec::emulate`] instantiates a Holme–Kim graph with
//! the same average degree, directedness and (approximate) degree-CDF shape
//! at a chosen `scale ∈ (0, 1]`. `scale = 1` would regenerate a graph of
//! the paper's full size; the suggested scales keep the full experiment
//! suite tractable on a laptop while preserving every relative comparison.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::gen::{community_graph, CommunityParams};
use crate::CsrGraph;

/// Description of one of the paper's evaluation datasets (Table 4).
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset name as used throughout the paper.
    pub name: &'static str,
    /// Application domain (Table 4's right column).
    pub domain: &'static str,
    /// Published vertex count.
    pub vertices: u64,
    /// Published edge count — as listed in Table 4 (gowalla's count is the
    /// undirected pair count; the others are directed edge counts).
    pub listed_edges: u64,
    /// Directed edge count after the paper's preprocessing (undirected
    /// datasets are duplicated in both directions).
    pub directed_edges: u64,
    /// Whether the original dataset is directed.
    pub directed: bool,
    /// Fraction of reciprocated directed pairs to synthesize (1.0 for
    /// originally undirected datasets).
    pub reciprocity: f64,
    /// Holme–Kim triad-formation probability controlling clustering.
    pub triad_closure: f64,
    /// Probability that a non-triad edge attaches inside the vertex's
    /// community (homophily strength).
    pub community_bias: f64,
    /// Mean planted-community size.
    pub mean_community_size: usize,
    /// Scale at which the reproduction's experiments run by default.
    pub suggested_scale: f64,
}

/// gowalla — location-based social network (undirected).
pub const GOWALLA: DatasetSpec = DatasetSpec {
    name: "gowalla",
    domain: "social network",
    vertices: 196_591,
    listed_edges: 950_327,
    directed_edges: 1_900_654,
    directed: false,
    reciprocity: 1.0,
    triad_closure: 0.60,
    community_bias: 0.80,
    mean_community_size: 25,
    suggested_scale: 0.25,
};

/// pokec — Slovak social network (directed).
pub const POKEC: DatasetSpec = DatasetSpec {
    name: "pokec",
    domain: "social network",
    vertices: 1_632_803,
    listed_edges: 30_622_564,
    directed_edges: 30_622_564,
    directed: true,
    reciprocity: 0.55,
    triad_closure: 0.55,
    community_bias: 0.75,
    mean_community_size: 30,
    suggested_scale: 0.02,
};

/// orkut — social network (undirected; Table 4 lists the directed count).
pub const ORKUT: DatasetSpec = DatasetSpec {
    name: "orkut",
    domain: "social network",
    vertices: 3_072_441,
    listed_edges: 223_534_301,
    directed_edges: 223_534_301,
    directed: false,
    reciprocity: 1.0,
    triad_closure: 0.65,
    community_bias: 0.75,
    mean_community_size: 60,
    suggested_scale: 0.004,
};

/// livejournal — blogging community (directed).
pub const LIVEJOURNAL: DatasetSpec = DatasetSpec {
    name: "livejournal",
    domain: "co-authorship",
    vertices: 4_847_571,
    listed_edges: 68_993_773,
    directed_edges: 68_993_773,
    directed: true,
    reciprocity: 0.74,
    triad_closure: 0.70,
    community_bias: 0.80,
    mean_community_size: 30,
    suggested_scale: 0.01,
};

/// twitter-rv — the 2010 Twitter follower graph (directed, 1.4B edges).
pub const TWITTER_RV: DatasetSpec = DatasetSpec {
    name: "twitter-rv",
    domain: "microblogging",
    vertices: 41_652_230,
    listed_edges: 1_468_365_182,
    directed_edges: 1_468_365_182,
    directed: true,
    reciprocity: 0.22,
    triad_closure: 0.45,
    community_bias: 0.55,
    mean_community_size: 50,
    suggested_scale: 0.001,
};

/// All five datasets in the order of the paper's Table 4.
pub fn all() -> [&'static DatasetSpec; 5] {
    [&GOWALLA, &POKEC, &ORKUT, &LIVEJOURNAL, &TWITTER_RV]
}

/// Looks a dataset up by its paper name.
///
/// ```
/// use snaple_graph::gen::datasets;
/// assert!(datasets::by_name("pokec").is_some());
/// assert!(datasets::by_name("friendster").is_none());
/// ```
pub fn by_name(name: &str) -> Option<&'static DatasetSpec> {
    all().into_iter().find(|d| d.name == name)
}

impl DatasetSpec {
    /// Vertex count at the given scale (with a floor so tiny scales remain
    /// meaningful graphs).
    pub fn scaled_vertices(&self, scale: f64) -> usize {
        ((self.vertices as f64 * scale).round() as usize).max(256)
    }

    /// Directed edge count targeted at the given scale.
    pub fn scaled_edges(&self, scale: f64) -> usize {
        (self.directed_edges as f64 * scale).round() as usize
    }

    /// Generates a synthetic stand-in for this dataset.
    ///
    /// The result is a directed [`CsrGraph`] whose vertex count, directed
    /// edge count, reciprocity and degree-distribution shape approximate the
    /// original at `scale`. Deterministic for a given `(scale, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1]`.
    pub fn emulate(&self, scale: f64, seed: u64) -> CsrGraph {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "scale must be in (0, 1], got {scale}"
        );
        let n = self.scaled_vertices(scale);
        let target_directed = self.scaled_edges(scale).max(n);
        // A pair is kept bidirectional with probability ρ/(2−ρ) (see
        // `into_oriented_graph`), so it yields 2/(2−ρ) directed edges on
        // average.
        let edges_per_pair = 2.0 / (2.0 - self.reciprocity);
        let m_per_vertex = ((target_directed as f64 / (n as f64 * edges_per_pair)).round()
            as usize)
            .clamp(1, n / 2 - 1);
        let mut rng = StdRng::seed_from_u64(seed ^ crate::hash::hash1(0x5a17, n as u64));
        let params = CommunityParams {
            m: m_per_vertex,
            p_triad: self.triad_closure,
            p_community: self.community_bias,
            mean_community_size: self.mean_community_size,
        };
        let edges = community_graph(n, params, &mut rng);
        if self.reciprocity >= 1.0 {
            edges.into_symmetric_graph()
        } else {
            edges.into_oriented_graph(self.reciprocity, &mut rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use crate::Direction;

    #[test]
    fn registry_is_complete_and_ordered() {
        let names: Vec<_> = all().iter().map(|d| d.name).collect();
        assert_eq!(
            names,
            vec!["gowalla", "pokec", "orkut", "livejournal", "twitter-rv"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("twitter-rv").unwrap().vertices, 41_652_230);
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn emulation_hits_size_targets_roughly() {
        let scale = 0.002;
        let g = POKEC.emulate(scale, 42);
        let want_v = POKEC.scaled_vertices(scale);
        let want_e = POKEC.scaled_edges(scale);
        assert!(
            (g.num_vertices() as f64 - want_v as f64).abs() / (want_v as f64) < 0.01,
            "vertices {} vs {}",
            g.num_vertices(),
            want_v
        );
        assert!(
            (g.num_edges() as f64 - want_e as f64).abs() / (want_e as f64) < 0.25,
            "edges {} vs {}",
            g.num_edges(),
            want_e
        );
    }

    #[test]
    fn undirected_datasets_are_symmetric() {
        let g = GOWALLA.emulate(0.01, 7);
        assert!((stats::reciprocity(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directed_datasets_match_target_reciprocity() {
        let g = TWITTER_RV.emulate(0.0005, 7);
        let r = stats::reciprocity(&g);
        assert!((r - TWITTER_RV.reciprocity).abs() < 0.15, "reciprocity {r}");
    }

    #[test]
    fn emulation_is_deterministic() {
        let a = LIVEJOURNAL.emulate(0.001, 3);
        let b = LIVEJOURNAL.emulate(0.001, 3);
        assert_eq!(a.num_edges(), b.num_edges());
        for u in a.vertices() {
            assert_eq!(a.out_neighbors(u), b.out_neighbors(u));
        }
        let c = LIVEJOURNAL.emulate(0.001, 4);
        assert_ne!(
            a.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>(),
            "different seeds should differ"
        );
    }

    #[test]
    fn emulated_graphs_have_heavy_tails() {
        let g = ORKUT.emulate(0.001, 9);
        let s = stats::degree_summary(&g, Direction::Out);
        assert!(s.max as f64 > 4.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    #[should_panic(expected = "scale must be in")]
    fn emulate_rejects_bad_scale() {
        let _ = GOWALLA.emulate(0.0, 1);
    }
}
