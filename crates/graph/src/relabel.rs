//! Opt-in vertex relabeling for cache locality.
//!
//! SNAPLE's gather phase streams sorted adjacency lists through set
//! intersections; how those lists are laid out in memory decides how many
//! cache lines each intersection touches. A [`Relabeling`] renumbers
//! vertices — [`Relabeling::degree_order`] puts hubs first, packing the
//! hottest rows at the front of the CSR arrays — and
//! [`Relabeling::apply`] rebuilds the graph under the new ids.
//!
//! Relabeling is a pure permutation: predictions computed on the relabeled
//! graph, mapped back through [`Relabeling::to_old`] on row emission, are
//! bit-identical to predictions on the original for any algorithm whose
//! arithmetic is label-independent (see `tests/relabeling.rs` for the
//! taxonomy — hash-seeded randomness and float fold order are keyed to
//! labels and are covered by tolerance-based tests instead).
//!
//! ```
//! use snaple_graph::{relabel::Relabeling, CsrGraph, VertexId};
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (3, 1)]);
//! let r = Relabeling::degree_order(&g);
//! // Vertex 1 has the highest out-degree, so it becomes the new vertex 0.
//! assert_eq!(r.to_new(VertexId::new(1)), VertexId::new(0));
//! let relabeled = r.apply(&g);
//! assert_eq!(relabeled.num_edges(), g.num_edges());
//! ```

use std::cmp::Reverse;

use crate::{CsrGraph, VertexId};

/// A bijective renumbering of a graph's vertices, with both directions
/// materialized for O(1) mapping.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relabeling {
    /// `new_of_old[old] = new`.
    new_of_old: Vec<VertexId>,
    /// `old_of_new[new] = old`.
    old_of_new: Vec<VertexId>,
}

impl Relabeling {
    /// The identity relabeling over `n` vertices.
    pub fn identity(n: usize) -> Self {
        let ids: Vec<VertexId> = (0..n as u32).map(VertexId::new).collect();
        Relabeling {
            new_of_old: ids.clone(),
            old_of_new: ids,
        }
    }

    /// Hub-first degree ordering: new id 0 is the vertex with the largest
    /// out-degree, ties broken by ascending old id (so the order is
    /// deterministic).
    pub fn degree_order(graph: &CsrGraph) -> Self {
        let mut order: Vec<u32> = (0..graph.num_vertices() as u32).collect();
        order.sort_unstable_by_key(|&u| (Reverse(graph.out_degree(VertexId::new(u))), u));
        Relabeling::from_order(order.into_iter().map(VertexId::new).collect())
    }

    /// Builds a relabeling from an explicit new-to-old order:
    /// `old_of_new[new]` is the old id assigned new id `new`.
    ///
    /// # Panics
    ///
    /// Panics if `old_of_new` is not a permutation of `0..len`.
    pub fn from_order(old_of_new: Vec<VertexId>) -> Self {
        let n = old_of_new.len();
        let mut new_of_old = vec![VertexId::new(u32::MAX); n];
        for (new, &old) in old_of_new.iter().enumerate() {
            assert!(
                old.index() < n,
                "old id {old:?} out of range for {n} vertices"
            );
            assert_eq!(
                new_of_old[old.index()],
                VertexId::new(u32::MAX),
                "old id {old:?} assigned twice — not a permutation"
            );
            new_of_old[old.index()] = VertexId::new(new as u32);
        }
        Relabeling {
            new_of_old,
            old_of_new,
        }
    }

    /// Number of vertices the relabeling ranges over.
    pub fn len(&self) -> usize {
        self.old_of_new.len()
    }

    /// Whether the relabeling ranges over zero vertices.
    pub fn is_empty(&self) -> bool {
        self.old_of_new.is_empty()
    }

    /// The new id of old vertex `old`.
    #[inline]
    pub fn to_new(&self, old: VertexId) -> VertexId {
        self.new_of_old[old.index()]
    }

    /// The old id of new vertex `new` — the inverse map applied on row
    /// emission when translating relabeled results back.
    #[inline]
    pub fn to_old(&self, new: VertexId) -> VertexId {
        self.old_of_new[new.index()]
    }

    /// The inverse relabeling (swaps the two directions).
    pub fn inverse(&self) -> Relabeling {
        Relabeling {
            new_of_old: self.old_of_new.clone(),
            old_of_new: self.new_of_old.clone(),
        }
    }

    /// Rebuilds `graph` under the new vertex ids: edge `(u, v)` becomes
    /// `(to_new(u), to_new(v))`, neighbor lists are re-sorted under the
    /// new order, and edge weights follow their edges.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly [`Relabeling::len`]
    /// vertices.
    pub fn apply(&self, graph: &CsrGraph) -> CsrGraph {
        let n = self.len();
        assert_eq!(
            graph.num_vertices(),
            n,
            "relabeling ranges over {n} vertices but the graph has {}",
            graph.num_vertices()
        );
        let weighted = graph.is_weighted();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut targets: Vec<VertexId> = Vec::with_capacity(graph.num_edges());
        let mut weights: Vec<f32> = if weighted {
            Vec::with_capacity(graph.num_edges())
        } else {
            Vec::new()
        };
        let mut row: Vec<(VertexId, f32)> = Vec::new();
        for new_u in 0..n as u32 {
            let old_u = self.to_old(VertexId::new(new_u));
            row.clear();
            let nbrs = graph.out_neighbors(old_u);
            match graph.out_weights(old_u) {
                Some(ws) => row.extend(nbrs.iter().zip(ws).map(|(&v, &w)| (self.to_new(v), w))),
                None => row.extend(nbrs.iter().map(|&v| (self.to_new(v), 1.0))),
            }
            row.sort_unstable_by_key(|&(v, _)| v);
            targets.extend(row.iter().map(|&(v, _)| v));
            if weighted {
                weights.extend(row.iter().map(|&(_, w)| w));
            }
            offsets.push(targets.len());
        }
        CsrGraph::from_parts(n, offsets, targets, weighted.then_some(weights))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_plus_chain() -> CsrGraph {
        // 2 is the hub (degree 3); 0 -> 1 -> 2 chain edges break ties.
        CsrGraph::from_edges(5, &[(2, 0), (2, 1), (2, 4), (0, 1), (1, 2), (4, 2)])
    }

    #[test]
    fn degree_order_puts_hubs_first() {
        let g = star_plus_chain();
        let r = Relabeling::degree_order(&g);
        assert_eq!(r.to_new(VertexId::new(2)), VertexId::new(0), "hub first");
        // Remaining: degree-1 vertices 0, 1, 4 in old-id order, then 3.
        assert_eq!(r.to_old(VertexId::new(1)), VertexId::new(0));
        assert_eq!(r.to_old(VertexId::new(2)), VertexId::new(1));
        assert_eq!(r.to_old(VertexId::new(3)), VertexId::new(4));
        assert_eq!(r.to_old(VertexId::new(4)), VertexId::new(3));
    }

    #[test]
    fn maps_invert_each_other() {
        let g = star_plus_chain();
        let r = Relabeling::degree_order(&g);
        for u in g.vertices() {
            assert_eq!(r.to_old(r.to_new(u)), u);
            assert_eq!(r.to_new(r.to_old(u)), u);
        }
        assert_eq!(r.inverse().inverse(), r);
    }

    #[test]
    fn applied_graph_preserves_structure() {
        let g = star_plus_chain();
        let r = Relabeling::degree_order(&g);
        let h = r.apply(&g);
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for u in g.vertices() {
            let nu = r.to_new(u);
            assert_eq!(h.out_degree(nu), g.out_degree(u), "{u:?}");
            assert_eq!(h.in_degree(nu), g.in_degree(u), "{u:?}");
            let mut mapped: Vec<VertexId> =
                g.out_neighbors(u).iter().map(|&v| r.to_new(v)).collect();
            mapped.sort_unstable();
            assert_eq!(h.out_neighbors(nu), &mapped[..], "{u:?}");
        }
    }

    #[test]
    fn weights_follow_their_edges() {
        let mut b = crate::GraphBuilder::new();
        b.add_weighted_edge(0, 1, 0.25);
        b.add_weighted_edge(0, 2, 0.5);
        b.add_weighted_edge(2, 0, 0.75);
        let g = b.build();
        let r = Relabeling::from_order(vec![VertexId::new(2), VertexId::new(0), VertexId::new(1)]);
        let h = r.apply(&g);
        assert!(h.is_weighted());
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                assert_eq!(
                    h.edge_weight(r.to_new(u), r.to_new(v)),
                    g.edge_weight(u, v),
                    "edge ({u:?}, {v:?})"
                );
            }
        }
    }

    #[test]
    fn identity_apply_round_trips_bit_identically() {
        let g = star_plus_chain();
        let r = Relabeling::identity(g.num_vertices());
        let h = r.apply(&g);
        for u in g.vertices() {
            assert_eq!(h.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(h.in_neighbors(u), g.in_neighbors(u));
        }
    }

    #[test]
    fn relabel_then_inverse_round_trips_the_graph() {
        let g = star_plus_chain();
        let r = Relabeling::degree_order(&g);
        let back = r.inverse().apply(&r.apply(&g));
        for u in g.vertices() {
            assert_eq!(back.out_neighbors(u), g.out_neighbors(u), "{u:?}");
            assert_eq!(back.in_neighbors(u), g.in_neighbors(u), "{u:?}");
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_ids_are_rejected() {
        Relabeling::from_order(vec![VertexId::new(0), VertexId::new(0)]);
    }

    #[test]
    fn empty_graph_relabels_to_itself() {
        let g = CsrGraph::from_edges(0, &[]);
        let r = Relabeling::degree_order(&g);
        assert!(r.is_empty());
        assert_eq!(r.apply(&g).num_vertices(), 0);
    }
}
