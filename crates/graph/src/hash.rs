//! Deterministic hashing utilities.
//!
//! The GAS engine and the SNAPLE steps must behave identically regardless of
//! how a graph is partitioned across simulated nodes, so every random-looking
//! decision that the paper makes per vertex or per edge (e.g. the
//! probabilistic truncation of Algorithm 2, line 3) is driven by one of these
//! stateless hashes instead of a shared RNG.

/// SplitMix64 finalizer — a cheap, high-quality 64-bit mixing function.
///
/// ```
/// use snaple_graph::hash::splitmix64;
/// assert_ne!(splitmix64(1), splitmix64(2));
/// assert_eq!(splitmix64(42), splitmix64(42));
/// ```
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes a `(seed, a)` pair into a well-mixed 64-bit value.
#[inline]
pub fn hash1(seed: u64, a: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a))
}

/// Hashes a `(seed, a, b)` triple into a well-mixed 64-bit value.
///
/// Order matters: `hash2(s, a, b) != hash2(s, b, a)` in general, which is
/// what we want for directed edges.
#[inline]
pub fn hash2(seed: u64, a: u64, b: u64) -> u64 {
    splitmix64(seed ^ splitmix64(a).wrapping_add(splitmix64(b).rotate_left(17)))
}

/// Maps a 64-bit hash to a uniform `f64` in `[0, 1)`.
///
/// ```
/// use snaple_graph::hash::{splitmix64, unit_f64};
/// let u = unit_f64(splitmix64(7));
/// assert!((0.0..1.0).contains(&u));
/// ```
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    // Use the top 53 bits for a dyadic rational in [0,1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Deterministic uniform draw in `[0, 1)` for an edge `(u, v)` under `seed`.
#[inline]
pub fn edge_unit(seed: u64, u: u32, v: u32) -> f64 {
    unit_f64(hash2(seed, u as u64, v as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference values from the SplitMix64 paper/public-domain code with
        // seed increments applied by the caller (we test the finalizer only).
        // splitmix64 stream with seed 0: first two outputs correspond to
        // finalizing 0 and GOLDEN (the state after one increment).
        assert_eq!(splitmix64(0), 0xe220a8397b1dcdaf);
        assert_eq!(splitmix64(0x9e37_79b9_7f4a_7c15), 0x6e789e6aa1b965f4);
    }

    #[test]
    fn hash2_is_order_sensitive() {
        assert_ne!(hash2(0, 1, 2), hash2(0, 2, 1));
    }

    #[test]
    fn unit_values_are_in_range_and_spread() {
        let mut lo = 0usize;
        for i in 0..10_000u64 {
            let u = unit_f64(splitmix64(i));
            assert!((0.0..1.0).contains(&u));
            if u < 0.5 {
                lo += 1;
            }
        }
        // Roughly balanced halves.
        assert!((4_000..6_000).contains(&lo), "lo = {lo}");
    }

    #[test]
    fn edge_unit_is_deterministic() {
        assert_eq!(edge_unit(9, 3, 4), edge_unit(9, 3, 4));
        assert_ne!(edge_unit(9, 3, 4), edge_unit(10, 3, 4));
    }
}
