//! [`CompressedGraph`]: the opt-in delta-varint [`GraphStore`] backend,
//! and the varint section codec shared with the `SNPLG2` container.
//!
//! Adjacency ids within a vertex's list are sorted, so consecutive ids
//! are close: each list stores its first id absolute and the rest as
//! LEB128-encoded gaps. Lists are grouped into blocks of
//! [`BLOCK_VERTICES`] vertices with a per-block byte index, so a lookup
//! decodes one block — not the whole stream — and decoded blocks are
//! cached. Offsets and weights stay raw (they don't compress well and
//! the engine reads them constantly).
//!
//! This trades CPU per cold lookup for roughly 2–4× less resident
//! memory on social-network-shaped graphs; the raw backends stay the
//! default. Decode paths are panic-free: malformed streams record a
//! fault and serve empty lists, and [`GraphStore::hydrate`] surfaces
//! the fault as a typed error before a serving layer trusts the graph.

use std::path::Path;
use std::sync::{Arc, OnceLock};

use crate::codec::crc32;
use crate::store::GraphStore;
use crate::v2::{
    self, Section, FLAG2_VARINT, FLAG2_WEIGHTED, HEADER2_LEN, MAGIC2, SECTION_ENTRY_LEN,
    SEC_IN_BLOCK_INDEX, SEC_IN_OFFSETS, SEC_IN_SOURCES_VARINT, SEC_OUT_BLOCK_INDEX,
    SEC_OUT_OFFSETS, SEC_OUT_TARGETS_VARINT, SEC_OUT_WEIGHTS, VERSION2,
};
use crate::{CsrGraph, GraphError, VertexId};

/// Vertices per varint block — the random-access granularity.
pub const BLOCK_VERTICES: usize = 64;

fn corrupt(msg: impl Into<String>) -> GraphError {
    GraphError::Corrupt(msg.into())
}

/// Appends `value` to `out` as LEB128.
pub fn push_varint(out: &mut Vec<u8>, mut value: u32) {
    while value >= 0x80 {
        out.push((value & 0x7F) as u8 | 0x80);
        value >>= 7;
    }
    out.push(value as u8);
}

/// Reads one LEB128 `u32` from `bytes[*pos..]`, advancing `pos`.
///
/// # Errors
///
/// [`GraphError::Corrupt`] on truncation or a value overflowing `u32`.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u32, GraphError> {
    let mut value: u32 = 0;
    let mut shift = 0u32;
    loop {
        let b = *bytes
            .get(*pos)
            .ok_or_else(|| corrupt("truncated varint stream"))?;
        *pos += 1;
        let payload = (b & 0x7F) as u32;
        if shift >= 32 || (shift == 28 && payload > 0x0F) {
            return Err(corrupt("varint overflows u32"));
        }
        value |= payload << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Encodes the adjacency lists of vertices `[0, n)` (ascending ids per
/// list: first absolute, rest gaps) into a stream plus a per-block byte
/// index of length `blocks + 1`.
pub fn encode_stream(n: usize, mut list_of: impl FnMut(u32) -> Vec<u32>) -> (Vec<u8>, Vec<usize>) {
    let blocks = n.div_ceil(BLOCK_VERTICES);
    let mut stream = Vec::new();
    let mut index = Vec::with_capacity(blocks + 1);
    index.push(0);
    for b in 0..blocks {
        let lo = b * BLOCK_VERTICES;
        let hi = ((b + 1) * BLOCK_VERTICES).min(n);
        for u in lo..hi {
            let list = list_of(u as u32);
            let mut prev = 0u32;
            for (i, &v) in list.iter().enumerate() {
                if i == 0 {
                    push_varint(&mut stream, v);
                } else {
                    push_varint(&mut stream, v.wrapping_sub(prev));
                }
                prev = v;
            }
        }
        index.push(stream.len());
    }
    (stream, index)
}

/// Decodes the block covering vertices `[lo, hi)` from `bytes`
/// (the block's byte range), using `offsets` for per-list counts.
///
/// # Errors
///
/// [`GraphError::Corrupt`] on truncation, trailing garbage, or an id
/// out of `[0, n)`.
fn decode_block(
    bytes: &[u8],
    offsets: &[usize],
    lo: usize,
    hi: usize,
    n: usize,
) -> Result<Vec<VertexId>, GraphError> {
    let base = offsets.get(lo).copied().unwrap_or(0);
    let end = offsets.get(hi).copied().unwrap_or(base);
    // Offset values come from the file; clamp the reservation to the
    // block's real byte length (every decoded id costs >= 1 byte) so a
    // forged offset cannot force a huge allocation.
    // snaple-lint: allow(wire-alloc) — capacity clamped to bytes.len(), bounded by real file bytes
    let mut out = Vec::with_capacity(end.saturating_sub(base).min(bytes.len()));
    let mut pos = 0usize;
    for u in lo..hi {
        let count = match (offsets.get(u), offsets.get(u + 1)) {
            (Some(&a), Some(&b)) => b.saturating_sub(a),
            _ => 0,
        };
        let mut prev = 0u32;
        for i in 0..count {
            let raw = read_varint(bytes, &mut pos)?;
            let v = if i == 0 { raw } else { prev.wrapping_add(raw) };
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: n,
                });
            }
            out.push(VertexId::new(v));
            prev = v;
        }
    }
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes in varint block"));
    }
    Ok(out)
}

/// Eagerly decodes a full varint stream back into `m` adjacency ids —
/// the `SNPLG2` full-load path for varint files.
///
/// # Errors
///
/// [`GraphError::Corrupt`] / [`GraphError::VertexOutOfRange`] on any
/// malformed block.
pub fn decode_all_blocks(
    stream: &[u8],
    index: &[usize],
    offsets: &[usize],
    n: usize,
) -> Result<Vec<VertexId>, GraphError> {
    let blocks = n.div_ceil(BLOCK_VERTICES);
    if index.len() != blocks + 1
        || index.first().copied().unwrap_or(1) != 0
        || index.last().copied().unwrap_or(usize::MAX) != stream.len()
        || !index.is_sorted()
    {
        return Err(corrupt("malformed varint block index"));
    }
    let total = offsets.last().copied().unwrap_or(0);
    // Every decoded id costs >= 1 stream byte, so clamping to the
    // stream length keeps a forged offset table from forcing an
    // allocation larger than the actual file.
    // snaple-lint: allow(wire-alloc) — capacity clamped to stream.len(), bounded by real file bytes
    let mut out = Vec::with_capacity(total.min(stream.len()));
    for b in 0..blocks {
        let lo = b * BLOCK_VERTICES;
        let hi = ((b + 1) * BLOCK_VERTICES).min(n);
        let bytes = index
            .get(b)
            .zip(index.get(b + 1))
            .and_then(|(&a, &z)| stream.get(a..z))
            .ok_or_else(|| corrupt("malformed varint block index"))?;
        out.extend_from_slice(&decode_block(bytes, offsets, lo, hi, n)?);
    }
    Ok(out)
}

struct CompressedInner {
    n: usize,
    m: usize,
    weighted: bool,
    out_offsets: Vec<usize>,
    in_offsets: Vec<usize>,
    out_stream: Vec<u8>,
    in_stream: Vec<u8>,
    out_index: Vec<usize>,
    in_index: Vec<usize>,
    out_weights: Option<Vec<f32>>,
    out_cache: Vec<OnceLock<Vec<VertexId>>>,
    in_cache: Vec<OnceLock<Vec<VertexId>>>,
    fault: OnceLock<String>,
}

impl std::fmt::Debug for CompressedInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressedGraph")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("weighted", &self.weighted)
            .field(
                "stream_bytes",
                &(self.out_stream.len() + self.in_stream.len()),
            )
            .finish()
    }
}

/// A delta-varint compressed [`GraphStore`]: adjacency ids live as
/// LEB128 gap streams, decoded per [`BLOCK_VERTICES`]-vertex block on
/// first touch and cached. See the module docs for the trade-off.
#[derive(Clone, Debug)]
pub struct CompressedGraph {
    inner: Arc<CompressedInner>,
}

impl CompressedGraph {
    /// Compresses any store into the varint representation.
    pub fn from_store(g: &dyn GraphStore) -> CompressedGraph {
        let n = g.num_vertices();
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut in_offsets = Vec::with_capacity(n + 1);
        out_offsets.push(0);
        in_offsets.push(0);
        let mut out_total = 0usize;
        let mut in_total = 0usize;
        for raw in 0..n as u32 {
            let u = VertexId::new(raw);
            out_total += g.out_degree(u);
            in_total += g.in_degree(u);
            out_offsets.push(out_total);
            in_offsets.push(in_total);
        }
        let (out_stream, out_index) = encode_stream(n, |u| {
            g.out_neighbors(VertexId::new(u))
                .iter()
                .map(|v| v.as_u32())
                .collect()
        });
        let (in_stream, in_index) = encode_stream(n, |u| {
            g.in_neighbors(VertexId::new(u))
                .iter()
                .map(|v| v.as_u32())
                .collect()
        });
        let out_weights = if g.is_weighted() {
            let mut ws = Vec::with_capacity(out_total);
            for raw in 0..n as u32 {
                ws.extend_from_slice(g.out_weights(VertexId::new(raw)).unwrap_or(&[]));
            }
            Some(ws)
        } else {
            None
        };
        Self::from_sections(
            n,
            g.num_edges(),
            out_offsets,
            in_offsets,
            out_stream,
            in_stream,
            out_index,
            in_index,
            out_weights,
        )
    }

    /// Assembles a compressed store from already-decoded `SNPLG2`
    /// varint sections. Streams are *not* eagerly validated — malformed
    /// blocks fault lazily; call [`GraphStore::hydrate`] to force full
    /// validation.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_sections(
        n: usize,
        m: usize,
        out_offsets: Vec<usize>,
        in_offsets: Vec<usize>,
        out_stream: Vec<u8>,
        in_stream: Vec<u8>,
        out_index: Vec<usize>,
        in_index: Vec<usize>,
        out_weights: Option<Vec<f32>>,
    ) -> CompressedGraph {
        let blocks = n.div_ceil(BLOCK_VERTICES);
        CompressedGraph {
            inner: Arc::new(CompressedInner {
                n,
                m,
                weighted: out_weights.is_some(),
                out_offsets,
                in_offsets,
                out_stream,
                in_stream,
                out_index,
                in_index,
                out_weights,
                out_cache: (0..blocks).map(|_| OnceLock::new()).collect(),
                in_cache: (0..blocks).map(|_| OnceLock::new()).collect(),
                fault: OnceLock::new(),
            }),
        }
    }

    /// Opens a varint-flavored `SNPLG2` file (reads it fully; the
    /// streams stay compressed in memory).
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures, [`GraphError::Corrupt`]
    /// on a malformed or raw-flavored file.
    pub fn open(path: &Path) -> Result<CompressedGraph, GraphError> {
        let data = std::fs::read(path)?;
        Self::from_v2_bytes(&data)
    }

    /// Builds a compressed store from in-memory varint `SNPLG2` bytes.
    ///
    /// # Errors
    ///
    /// [`GraphError::Corrupt`] on a malformed or raw-flavored file.
    pub fn from_v2_bytes(data: &[u8]) -> Result<CompressedGraph, GraphError> {
        let h = v2::parse_header(data, data.len() as u64)?;
        if !h.varint {
            return Err(corrupt(
                "raw-flavored SNPLG2: open via FileCsr or io::read_binary",
            ));
        }
        let get = |kind: u32| -> Result<&[u8], GraphError> {
            let sec = h
                .section(kind)
                .ok_or_else(|| corrupt(format!("missing required section {kind}")))?;
            v2::section_bytes(data, sec)
        };
        let out_offsets = v2::decode_offsets(get(SEC_OUT_OFFSETS)?, h.n, h.m)?;
        let in_offsets = v2::decode_offsets(get(SEC_IN_OFFSETS)?, h.n, h.m)?;
        let out_index = v2::decode_block_index(get(SEC_OUT_BLOCK_INDEX)?)?;
        let in_index = v2::decode_block_index(get(SEC_IN_BLOCK_INDEX)?)?;
        let out_stream = get(SEC_OUT_TARGETS_VARINT)?.to_vec();
        let in_stream = get(SEC_IN_SOURCES_VARINT)?.to_vec();
        let blocks = h.n.div_ceil(BLOCK_VERTICES);
        for (index, stream) in [(&out_index, &out_stream), (&in_index, &in_stream)] {
            if index.len() != blocks + 1
                || index.first().copied().unwrap_or(1) != 0
                || index.last().copied().unwrap_or(usize::MAX) != stream.len()
                || !index.is_sorted()
            {
                return Err(corrupt("malformed varint block index"));
            }
        }
        let out_weights = if h.weighted {
            Some(v2::decode_weights(get(SEC_OUT_WEIGHTS)?, h.m)?)
        } else {
            None
        };
        Ok(Self::from_sections(
            h.n,
            h.m,
            out_offsets,
            in_offsets,
            out_stream,
            in_stream,
            out_index,
            in_index,
            out_weights,
        ))
    }

    /// The first deferred-decode failure, if any.
    pub fn fault(&self) -> Option<&str> {
        self.inner.fault.get().map(String::as_str)
    }

    fn block_of<'a>(
        &self,
        u: VertexId,
        cache: &'a [OnceLock<Vec<VertexId>>],
        stream: &[u8],
        index: &[usize],
        offsets: &[usize],
    ) -> &'a [VertexId] {
        let b = u.index() / BLOCK_VERTICES;
        let Some(cell) = cache.get(b) else {
            return &[];
        };
        cell.get_or_init(|| {
            let lo = b * BLOCK_VERTICES;
            let hi = ((b + 1) * BLOCK_VERTICES).min(self.inner.n);
            let bytes = index
                .get(b)
                .zip(index.get(b + 1))
                .and_then(|(&a, &z)| stream.get(a..z));
            match bytes
                .ok_or_else(|| corrupt("malformed varint block index"))
                .and_then(|bytes| decode_block(bytes, offsets, lo, hi, self.inner.n))
            {
                Ok(v) => v,
                Err(e) => {
                    let _ = self.inner.fault.set(e.to_string());
                    Vec::new()
                }
            }
        })
    }

    fn list(&self, u: VertexId, out_dir: bool) -> &[VertexId] {
        let inner = &self.inner;
        let (cache, stream, index, offsets) = if out_dir {
            (
                &inner.out_cache,
                &inner.out_stream,
                &inner.out_index,
                &inner.out_offsets,
            )
        } else {
            (
                &inner.in_cache,
                &inner.in_stream,
                &inner.in_index,
                &inner.in_offsets,
            )
        };
        let block = self.block_of(u, cache, stream, index, offsets);
        let b = u.index() / BLOCK_VERTICES;
        let base = offsets.get(b * BLOCK_VERTICES).copied().unwrap_or(0);
        let lo = offsets.get(u.index()).copied().unwrap_or(base);
        let hi = offsets.get(u.index() + 1).copied().unwrap_or(lo);
        block
            .get(lo.saturating_sub(base)..hi.saturating_sub(base))
            .unwrap_or(&[])
    }
}

impl GraphStore for CompressedGraph {
    fn num_vertices(&self) -> usize {
        self.inner.n
    }

    fn num_edges(&self) -> usize {
        self.inner.m
    }

    fn is_weighted(&self) -> bool {
        self.inner.weighted
    }

    fn out_degree(&self, u: VertexId) -> usize {
        let offs = &self.inner.out_offsets;
        match (offs.get(u.index()), offs.get(u.index() + 1)) {
            (Some(&lo), Some(&hi)) => hi.saturating_sub(lo),
            _ => 0,
        }
    }

    fn in_degree(&self, u: VertexId) -> usize {
        let offs = &self.inner.in_offsets;
        match (offs.get(u.index()), offs.get(u.index() + 1)) {
            (Some(&lo), Some(&hi)) => hi.saturating_sub(lo),
            _ => 0,
        }
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.list(u, true)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        self.list(u, false)
    }

    fn out_weights(&self, u: VertexId) -> Option<&[f32]> {
        let ws = self.inner.out_weights.as_deref()?;
        let lo = self.inner.out_offsets.get(u.index()).copied()?;
        let hi = self.inner.out_offsets.get(u.index() + 1).copied()?;
        ws.get(lo..hi)
    }

    fn backend_name(&self) -> &'static str {
        "varint"
    }

    fn storage_bytes(&self) -> u64 {
        let i = &self.inner;
        (i.out_offsets.len() + i.in_offsets.len() + i.out_index.len() + i.in_index.len()) as u64 * 8
            + (i.out_stream.len() + i.in_stream.len()) as u64
            + i.out_weights.as_ref().map_or(0, |w| w.len() as u64 * 4)
    }

    fn hydrate(&self) -> Result<(), GraphError> {
        for raw in 0..self.inner.n as u32 {
            let u = VertexId::new(raw);
            let _ = self.out_neighbors(u);
            let _ = self.in_neighbors(u);
        }
        match self.fault() {
            Some(msg) => Err(corrupt(msg.to_string())),
            None => Ok(()),
        }
    }

    fn to_csr(&self) -> CsrGraph {
        if self.hydrate().is_err() {
            return CsrGraph::from_edges(0, &[]);
        }
        let n = self.inner.n;
        let mut out_targets = Vec::with_capacity(self.inner.m);
        let mut in_sources = Vec::with_capacity(self.inner.m);
        for raw in 0..n as u32 {
            let u = VertexId::new(raw);
            out_targets.extend_from_slice(self.out_neighbors(u));
            in_sources.extend_from_slice(self.in_neighbors(u));
        }
        CsrGraph::from_parts_with_reverse(
            n,
            self.inner.out_offsets.clone(),
            out_targets,
            self.inner.out_weights.clone(),
            self.inner.in_offsets.clone(),
            in_sources,
        )
    }

    fn clone_shared(&self) -> Arc<dyn GraphStore> {
        Arc::new(self.clone())
    }
}

/// Encodes `graph` as a **varint**-flavored `SNPLG2` file.
///
/// The compressed streams are materialized in memory (they are the
/// small representation); offsets and weights stream raw.
///
/// # Errors
///
/// [`GraphError::Io`] on write failures.
pub fn write_v2_varint<W: std::io::Write>(
    graph: &dyn GraphStore,
    mut writer: W,
) -> Result<(), GraphError> {
    let n = graph.num_vertices();
    let m = graph.num_edges() as u64;
    let weighted = graph.is_weighted();
    let (out_stream, out_index) = encode_stream(n, |u| {
        graph
            .out_neighbors(VertexId::new(u))
            .iter()
            .map(|v| v.as_u32())
            .collect()
    });
    let (in_stream, in_index) = encode_stream(n, |u| {
        graph
            .in_neighbors(VertexId::new(u))
            .iter()
            .map(|v| v.as_u32())
            .collect()
    });
    let index_bytes = |index: &[usize]| -> Vec<u8> {
        let mut b = Vec::with_capacity(index.len() * 8);
        for &v in index {
            b.extend_from_slice(&(v as u64).to_le_bytes());
        }
        b
    };
    let offsets_bytes = |out_dir: bool| -> Vec<u8> {
        let mut b = Vec::with_capacity((n + 1) * 8);
        let mut total = 0u64;
        b.extend_from_slice(&0u64.to_le_bytes());
        for raw in 0..n as u32 {
            let u = VertexId::new(raw);
            total += if out_dir {
                graph.out_degree(u) as u64
            } else {
                graph.in_degree(u) as u64
            };
            b.extend_from_slice(&total.to_le_bytes());
        }
        b
    };
    let mut payloads: Vec<(u32, u64, Vec<u8>)> = vec![
        (SEC_OUT_OFFSETS, n as u64 + 1, offsets_bytes(true)),
        (SEC_OUT_TARGETS_VARINT, m, out_stream),
        (
            SEC_OUT_BLOCK_INDEX,
            out_index.len() as u64,
            index_bytes(&out_index),
        ),
        (SEC_IN_OFFSETS, n as u64 + 1, offsets_bytes(false)),
        (SEC_IN_SOURCES_VARINT, m, in_stream),
        (
            SEC_IN_BLOCK_INDEX,
            in_index.len() as u64,
            index_bytes(&in_index),
        ),
    ];
    if weighted {
        let mut ws = Vec::with_capacity(m as usize * 4);
        for raw in 0..n as u32 {
            for &w in graph.out_weights(VertexId::new(raw)).unwrap_or(&[]) {
                ws.extend_from_slice(&w.to_bits().to_le_bytes());
            }
        }
        payloads.push((SEC_OUT_WEIGHTS, m, ws));
    }
    let mut head = Vec::new();
    head.extend_from_slice(MAGIC2);
    head.push(VERSION2);
    head.push(FLAG2_VARINT | if weighted { FLAG2_WEIGHTED } else { 0 });
    head.extend_from_slice(&(n as u64).to_le_bytes());
    head.extend_from_slice(&m.to_le_bytes());
    head.extend_from_slice(&(payloads.len() as u32).to_le_bytes());
    head.extend_from_slice(&0u32.to_le_bytes());
    let mut offset = (HEADER2_LEN + payloads.len() * SECTION_ENTRY_LEN) as u64;
    for (kind, elem_count, bytes) in &payloads {
        let sec = Section {
            kind: *kind,
            crc: crc32(0, bytes),
            offset,
            byte_len: bytes.len() as u64,
            elem_count: *elem_count,
        };
        head.extend_from_slice(&sec.kind.to_le_bytes());
        head.extend_from_slice(&sec.crc.to_le_bytes());
        head.extend_from_slice(&sec.offset.to_le_bytes());
        head.extend_from_slice(&sec.byte_len.to_le_bytes());
        head.extend_from_slice(&sec.elem_count.to_le_bytes());
        offset += sec.byte_len;
    }
    writer.write_all(&head)?;
    for (_, _, bytes) in &payloads {
        writer.write_all(bytes)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        let mut b = GraphBuilder::new();
        for (u, v) in [
            (0u32, 1u32),
            (0, 7),
            (0, 130),
            (1, 2),
            (5, 0),
            (64, 65),
            (64, 200),
            (199, 3),
            (200, 64),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn varint_codec_round_trips() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16383, 16384, u32::MAX];
        for &v in &values {
            push_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).expect("decode"), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut buf = Vec::new();
        push_varint(&mut buf, u32::MAX);
        let mut pos = 0;
        assert!(read_varint(&buf[..buf.len() - 1], &mut pos).is_err());
        // Six continuation bytes can never fit a u32.
        let over = [0x80u8, 0x80, 0x80, 0x80, 0x80, 0x01];
        let mut pos = 0;
        assert!(read_varint(&over, &mut pos).is_err());
    }

    #[test]
    fn compressed_store_matches_the_csr() {
        let g = sample();
        let c = CompressedGraph::from_store(&g);
        assert!(c.hydrate().is_ok());
        assert_eq!(c.backend_name(), "varint");
        assert_eq!(c.num_vertices(), g.num_vertices());
        assert_eq!(c.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(c.out_neighbors(u), g.out_neighbors(u), "{u} out");
            assert_eq!(c.in_neighbors(u), g.in_neighbors(u), "{u} in");
            assert_eq!(c.out_degree(u), g.out_degree(u));
            assert_eq!(c.in_degree(u), g.in_degree(u));
        }
        let back = c.to_csr();
        assert_eq!(back.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(back.out_neighbors(u), g.out_neighbors(u));
        }
    }

    #[test]
    fn weighted_compressed_store_preserves_weight_bits() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 1.5)
            .add_weighted_edge(0, 2, -0.25)
            .add_weighted_edge(2, 0, 3.0);
        let g = b.build();
        let c = CompressedGraph::from_store(&g);
        for u in g.vertices() {
            let a: Option<Vec<u32>> = g
                .out_weights(u)
                .map(|ws| ws.iter().map(|w| w.to_bits()).collect());
            let b: Option<Vec<u32>> =
                GraphStore::out_weights(&c, u).map(|ws| ws.iter().map(|w| w.to_bits()).collect());
            assert_eq!(a, b);
        }
    }

    #[test]
    fn varint_v2_file_round_trips_through_both_paths() {
        let g = sample();
        let mut bytes = Vec::new();
        write_v2_varint(&g, &mut bytes).expect("encode");
        // Eager full load.
        let eager = crate::v2::decode_v2(&bytes).expect("decode");
        assert_eq!(eager.num_edges(), g.num_edges());
        for u in g.vertices() {
            assert_eq!(eager.out_neighbors(u), g.out_neighbors(u));
            assert_eq!(eager.in_neighbors(u), g.in_neighbors(u));
        }
        // Lazy compressed open.
        let c = CompressedGraph::from_v2_bytes(&bytes).expect("open");
        assert!(c.hydrate().is_ok());
        for u in g.vertices() {
            assert_eq!(c.out_neighbors(u), g.out_neighbors(u));
        }
    }

    #[test]
    fn corrupt_varint_files_are_typed_errors() {
        let g = sample();
        let mut bytes = Vec::new();
        write_v2_varint(&g, &mut bytes).expect("encode");
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x20;
            assert!(
                crate::v2::decode_v2(&bad).is_err(),
                "flip at {pos} went unnoticed"
            );
        }
    }

    #[test]
    fn malformed_stream_faults_instead_of_panicking() {
        let g = sample();
        let n = g.num_vertices();
        let (mut stream, index) = encode_stream(n, |u| {
            g.out_neighbors(VertexId::new(u))
                .iter()
                .map(|v| v.as_u32())
                .collect()
        });
        // Blow up a gap so a decoded id lands out of range.
        if let Some(b) = stream.first_mut() {
            *b = 0xFF;
        }
        if let Some(b) = stream.get_mut(1) {
            *b = 0x7F;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut total = 0usize;
        for u in g.vertices() {
            total += g.out_degree(u);
            offsets.push(total);
        }
        let c = CompressedGraph::from_sections(
            n,
            g.num_edges(),
            offsets.clone(),
            offsets,
            stream,
            Vec::new(),
            index,
            vec![0; n.div_ceil(BLOCK_VERTICES) + 1],
            None,
        );
        let _ = c.out_neighbors(VertexId::new(0));
        assert!(c.fault().is_some());
        assert!(c.hydrate().is_err());
    }
}
