//! `SNPLG2`: the zero-parse on-disk CSR format, and [`FileCsr`], its
//! lazily loaded file-backed [`GraphStore`] backend.
//!
//! # Why a second binary format
//!
//! `SNPLG1` (see [`io`](crate::io)) stores only the out-adjacency and
//! re-derives the in-adjacency with an O(edges) scatter on every load —
//! fine at bench scale, fatal at the paper's billion-edge scale, where
//! load cost must stop growing with the graph. `SNPLG2` makes the
//! on-disk layout *be* the in-memory layout: its sections are the
//! [`CsrGraph`] arrays verbatim (both directions, little-endian), so
//!
//! * a full load ([`io::read_binary`](crate::io::read_binary)) is a
//!   straight bytes→ints copy per section — `chunks_exact` loops the
//!   compiler vectorizes to memcpy speed, no per-edge branching — plus
//!   O(vertices) offset monotonicity and one vectorizable target range
//!   scan; and
//! * [`FileCsr::open`] reads only the fixed header and section table —
//!   **O(1) in the edge count** — and faults each section in on first
//!   touch, so a server can open a 100M-edge graph in microseconds and
//!   pay only for the sections a workload actually walks.
//!
//! Everything stays inside `#![forbid(unsafe_code)]`: "zero-parse" here
//! means no per-edge decode work, not `mmap` pointer casts.
//!
//! # Layout
//!
//! ```text
//! offset  0  magic     "SNPLG2"                         6 B
//!         6  version   u8                                (currently 1)
//!         7  flags     u8                                bit0 weighted, bit1 varint
//!         8  n         u64 LE   vertex count
//!        16  m         u64 LE   edge count
//!        24  sections  u32 LE   section count
//!        28  reserved  u32 LE   (zero)
//!        32  section table: sections × 32 B entries
//!            kind u32 LE | crc32 u32 LE | offset u64 LE |
//!            byte_len u64 LE | elem_count u64 LE
//!         …  section payloads (referenced by absolute offset)
//! ```
//!
//! Raw files (`flags & VARINT == 0`) carry [`SEC_OUT_OFFSETS`],
//! [`SEC_OUT_TARGETS`], [`SEC_IN_OFFSETS`], [`SEC_IN_SOURCES`] and, when
//! weighted, [`SEC_OUT_WEIGHTS`]. Varint files replace the two id
//! sections with delta-varint streams plus per-block byte indexes (see
//! [`compress`](crate::compress)). Every section carries its own CRC-32;
//! the header and table are validated structurally (bounds, element
//! counts, duplicate/unknown kinds) before any allocation is sized from
//! them.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use crate::codec::crc32;
use crate::store::GraphStore;
use crate::{CsrGraph, GraphError, VertexId};

/// The six magic bytes opening every `SNPLG2` file.
pub const MAGIC2: &[u8; 6] = b"SNPLG2";

/// Current format version.
pub const VERSION2: u8 = 1;

/// Flag bit: the graph carries per-edge weights.
pub const FLAG2_WEIGHTED: u8 = 1;

/// Flag bit: adjacency ids are delta-varint compressed
/// (see [`compress`](crate::compress)).
pub const FLAG2_VARINT: u8 = 2;

/// Fixed header size; the section table starts here.
pub const HEADER2_LEN: usize = 32;

/// Size of one section-table entry.
pub const SECTION_ENTRY_LEN: usize = 32;

/// Section: out-adjacency offsets, `(n+1) × u64 LE`.
pub const SEC_OUT_OFFSETS: u32 = 1;
/// Section: out-adjacency targets, `m × u32 LE`.
pub const SEC_OUT_TARGETS: u32 = 2;
/// Section: out-edge weights, `m × f32 LE` (weighted graphs only).
pub const SEC_OUT_WEIGHTS: u32 = 3;
/// Section: in-adjacency offsets, `(n+1) × u64 LE`.
pub const SEC_IN_OFFSETS: u32 = 4;
/// Section: in-adjacency sources, `m × u32 LE`.
pub const SEC_IN_SOURCES: u32 = 5;
/// Section: delta-varint out-targets stream (`elem_count = m`).
pub const SEC_OUT_TARGETS_VARINT: u32 = 6;
/// Section: delta-varint in-sources stream (`elem_count = m`).
pub const SEC_IN_SOURCES_VARINT: u32 = 7;
/// Section: per-block byte index into the out varint stream,
/// `(blocks+1) × u64 LE`.
pub const SEC_OUT_BLOCK_INDEX: u32 = 8;
/// Section: per-block byte index into the in varint stream.
pub const SEC_IN_BLOCK_INDEX: u32 = 9;

/// One entry of the section table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Section {
    /// Section kind (`SEC_*`).
    pub kind: u32,
    /// CRC-32 of the section payload.
    pub crc: u32,
    /// Absolute file offset of the payload.
    pub offset: u64,
    /// Payload length in bytes.
    pub byte_len: u64,
    /// Logical element count (ids, offsets, weights — or ids encoded,
    /// for varint streams).
    pub elem_count: u64,
}

/// The parsed, structurally validated prelude of a `SNPLG2` file:
/// header fields plus section table. This is everything [`FileCsr::open`]
/// reads — O(sections), independent of the edge count.
#[derive(Clone, Debug)]
pub struct V2Header {
    /// Vertex count.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Whether the graph carries per-edge weights.
    pub weighted: bool,
    /// Whether adjacency ids are delta-varint compressed.
    pub varint: bool,
    /// The section table, in file order.
    pub sections: Vec<Section>,
}

impl V2Header {
    /// The table entry for `kind`, if present.
    pub fn section(&self, kind: u32) -> Option<&Section> {
        self.sections.iter().find(|s| s.kind == kind)
    }
}

fn le_u32(b: &[u8], at: usize) -> Option<u32> {
    b.get(at..at.checked_add(4)?)?
        .try_into()
        .ok()
        .map(u32::from_le_bytes)
}

fn le_u64(b: &[u8], at: usize) -> Option<u64> {
    b.get(at..at.checked_add(8)?)?
        .try_into()
        .ok()
        .map(u64::from_le_bytes)
}

fn corrupt(msg: impl Into<String>) -> GraphError {
    GraphError::Corrupt(msg.into())
}

/// Parses and structurally validates the header + section table of a
/// `SNPLG2` prelude. `file_len` bounds every section; all arithmetic is
/// wide so hostile offsets cannot overflow the checks.
///
/// # Errors
///
/// [`GraphError::Corrupt`] naming the malformed field.
pub fn parse_header(prelude: &[u8], file_len: u64) -> Result<V2Header, GraphError> {
    if prelude.get(..MAGIC2.len()) != Some(MAGIC2.as_slice()) {
        return Err(corrupt("bad magic"));
    }
    let version = *prelude.get(6).ok_or_else(|| corrupt("truncated header"))?;
    if version != VERSION2 {
        return Err(corrupt(format!("unsupported SNPLG2 version {version}")));
    }
    let flags = *prelude.get(7).ok_or_else(|| corrupt("truncated header"))?;
    if flags & !(FLAG2_WEIGHTED | FLAG2_VARINT) != 0 {
        return Err(corrupt(format!("unknown flag bits {flags:#x}")));
    }
    let weighted = flags & FLAG2_WEIGHTED != 0;
    let varint = flags & FLAG2_VARINT != 0;
    let raw_n = le_u64(prelude, 8).ok_or_else(|| corrupt("truncated header"))?;
    let raw_m = le_u64(prelude, 16).ok_or_else(|| corrupt("truncated header"))?;
    let count = le_u32(prelude, 24).ok_or_else(|| corrupt("truncated header"))? as usize;
    let reserved = le_u32(prelude, 28).ok_or_else(|| corrupt("truncated header"))?;
    if reserved != 0 {
        return Err(corrupt("nonzero reserved header field"));
    }
    // Vertex ids are u32; see the identical guard on the SNPLG1 path.
    if raw_n > u32::MAX as u64 + 1 {
        return Err(corrupt(format!(
            "vertex count {raw_n} exceeds the u32 id space"
        )));
    }
    if raw_m > u32::MAX as u64 {
        return Err(corrupt(format!(
            "edge count {raw_m} exceeds the u32 target space"
        )));
    }
    let n = raw_n as usize;
    let m = raw_m as usize;
    // A plausible table must fit the file before we allocate it.
    let table_end = HEADER2_LEN as u128 + count as u128 * SECTION_ENTRY_LEN as u128;
    if table_end > file_len as u128 || count > 64 {
        return Err(corrupt(format!("section table ({count} entries) overruns")));
    }
    // snaple-lint: allow(wire-alloc) — count validated <= 64 (and table fits the file) just above
    let mut sections = Vec::with_capacity(count);
    for i in 0..count {
        let at = HEADER2_LEN + i * SECTION_ENTRY_LEN;
        let kind = le_u32(prelude, at).ok_or_else(|| corrupt("truncated section table"))?;
        let crc = le_u32(prelude, at + 4).ok_or_else(|| corrupt("truncated section table"))?;
        let offset = le_u64(prelude, at + 8).ok_or_else(|| corrupt("truncated section table"))?;
        let byte_len =
            le_u64(prelude, at + 16).ok_or_else(|| corrupt("truncated section table"))?;
        let elem_count =
            le_u64(prelude, at + 24).ok_or_else(|| corrupt("truncated section table"))?;
        if (offset as u128) < table_end || offset as u128 + byte_len as u128 > file_len as u128 {
            return Err(corrupt(format!("section {kind} overruns the file")));
        }
        if sections.iter().any(|s: &Section| s.kind == kind) {
            return Err(corrupt(format!("duplicate section {kind}")));
        }
        let expect_elems = |elems: u64, width: u64| -> Result<(), GraphError> {
            if elem_count != elems || byte_len != elems.saturating_mul(width) {
                Err(corrupt(format!("section {kind} has inconsistent size")))
            } else {
                Ok(())
            }
        };
        match kind {
            SEC_OUT_OFFSETS | SEC_IN_OFFSETS => expect_elems(raw_n + 1, 8)?,
            SEC_OUT_TARGETS | SEC_IN_SOURCES => expect_elems(raw_m, 4)?,
            SEC_OUT_WEIGHTS => expect_elems(raw_m, 4)?,
            SEC_OUT_TARGETS_VARINT | SEC_IN_SOURCES_VARINT => {
                if elem_count != raw_m {
                    return Err(corrupt(format!("section {kind} has inconsistent size")));
                }
            }
            SEC_OUT_BLOCK_INDEX | SEC_IN_BLOCK_INDEX => {
                if byte_len != elem_count.saturating_mul(8) {
                    return Err(corrupt(format!("section {kind} has inconsistent size")));
                }
            }
            other => return Err(corrupt(format!("unknown section kind {other}"))),
        }
        sections.push(Section {
            kind,
            crc,
            offset,
            byte_len,
            elem_count,
        });
    }
    let require = |kind: u32| -> Result<(), GraphError> {
        if sections.iter().any(|s| s.kind == kind) {
            Ok(())
        } else {
            Err(corrupt(format!("missing required section {kind}")))
        }
    };
    require(SEC_OUT_OFFSETS)?;
    require(SEC_IN_OFFSETS)?;
    if varint {
        require(SEC_OUT_TARGETS_VARINT)?;
        require(SEC_IN_SOURCES_VARINT)?;
        require(SEC_OUT_BLOCK_INDEX)?;
        require(SEC_IN_BLOCK_INDEX)?;
    } else {
        require(SEC_OUT_TARGETS)?;
        require(SEC_IN_SOURCES)?;
    }
    if weighted {
        require(SEC_OUT_WEIGHTS)?;
    }
    Ok(V2Header {
        n,
        m,
        weighted,
        varint,
        sections,
    })
}

// ---------------------------------------------------------------------------
// Section byte conversions — the "zero-parse" loops. `chunks_exact`
// over little-endian payloads vectorizes to memcpy speed; validation is
// O(n) offset monotonicity plus one O(m) range scan.
// ---------------------------------------------------------------------------

/// Converts a `u64 LE` offsets payload and validates monotonicity and
/// the final value against `m`.
///
/// # Errors
///
/// [`GraphError::Corrupt`] on a checksum-passing but inconsistent
/// payload.
pub fn decode_offsets(bytes: &[u8], n: usize, m: usize) -> Result<Vec<usize>, GraphError> {
    if bytes.len() != (n + 1) * 8 {
        return Err(corrupt("offsets section size mismatch"));
    }
    let offsets: Vec<usize> = bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])) as usize)
        .collect();
    let first = offsets.first().copied().unwrap_or(1);
    let last = offsets.last().copied().unwrap_or(usize::MAX);
    if first != 0 || last != m || !offsets.is_sorted() {
        return Err(corrupt("non-monotonic offsets"));
    }
    Ok(offsets)
}

/// Converts a `u32 LE` id payload and range-checks every id below `n`
/// with a single vectorizable scan.
///
/// # Errors
///
/// [`GraphError::VertexOutOfRange`] when an id is out of range.
pub fn decode_ids(bytes: &[u8], n: usize, m: usize) -> Result<Vec<VertexId>, GraphError> {
    if bytes.len() != m * 4 {
        return Err(corrupt("id section size mismatch"));
    }
    let ids: Vec<VertexId> = bytes
        .chunks_exact(4)
        .map(|c| VertexId::new(u32::from_le_bytes(c.try_into().unwrap_or([0; 4]))))
        .collect();
    let max = ids.iter().map(|v| v.as_u32()).max();
    if let Some(max) = max {
        if max as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: max,
                num_vertices: n,
            });
        }
    }
    Ok(ids)
}

/// Converts an `f32 LE` weights payload (bit-preserving).
///
/// # Errors
///
/// [`GraphError::Corrupt`] on a size mismatch.
pub fn decode_weights(bytes: &[u8], m: usize) -> Result<Vec<f32>, GraphError> {
    if bytes.len() != m * 4 {
        return Err(corrupt("weights section size mismatch"));
    }
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap_or([0; 4]))))
        .collect())
}

pub(crate) fn section_bytes<'a>(data: &'a [u8], sec: &Section) -> Result<&'a [u8], GraphError> {
    let lo = sec.offset as usize;
    let hi = lo
        .checked_add(sec.byte_len as usize)
        .ok_or_else(|| corrupt("section overruns the file"))?;
    let bytes = data
        .get(lo..hi)
        .ok_or_else(|| corrupt("section overruns the file"))?;
    if crc32(0, bytes) != sec.crc {
        return Err(corrupt(format!("section {} checksum mismatch", sec.kind)));
    }
    Ok(bytes)
}

/// Eagerly decodes a whole in-memory `SNPLG2` file into a [`CsrGraph`].
///
/// Raw files cost one vectorized copy per section; varint files decode
/// through [`compress`](crate::compress). Used by
/// [`io::read_binary`](crate::io::read_binary) after magic dispatch.
///
/// # Errors
///
/// [`GraphError::Corrupt`] / [`GraphError::VertexOutOfRange`] on any
/// structural, checksum or range failure.
pub fn decode_v2(data: &[u8]) -> Result<CsrGraph, GraphError> {
    let h = parse_header(data, data.len() as u64)?;
    let get = |kind: u32| -> Result<&[u8], GraphError> {
        let sec = h
            .section(kind)
            .ok_or_else(|| corrupt(format!("missing required section {kind}")))?;
        section_bytes(data, sec)
    };
    let out_offsets = decode_offsets(get(SEC_OUT_OFFSETS)?, h.n, h.m)?;
    let in_offsets = decode_offsets(get(SEC_IN_OFFSETS)?, h.n, h.m)?;
    let weights = if h.weighted {
        Some(decode_weights(get(SEC_OUT_WEIGHTS)?, h.m)?)
    } else {
        None
    };
    let (out_targets, in_sources) = if h.varint {
        let out_index = decode_block_index(get(SEC_OUT_BLOCK_INDEX)?)?;
        let in_index = decode_block_index(get(SEC_IN_BLOCK_INDEX)?)?;
        let out = crate::compress::decode_all_blocks(
            get(SEC_OUT_TARGETS_VARINT)?,
            &out_index,
            &out_offsets,
            h.n,
        )?;
        let inn = crate::compress::decode_all_blocks(
            get(SEC_IN_SOURCES_VARINT)?,
            &in_index,
            &in_offsets,
            h.n,
        )?;
        (out, inn)
    } else {
        (
            decode_ids(get(SEC_OUT_TARGETS)?, h.n, h.m)?,
            decode_ids(get(SEC_IN_SOURCES)?, h.n, h.m)?,
        )
    };
    Ok(CsrGraph::from_parts_with_reverse(
        h.n,
        out_offsets,
        out_targets,
        weights,
        in_offsets,
        in_sources,
    ))
}

/// Converts a block-index payload (`u64 LE` byte offsets).
///
/// # Errors
///
/// [`GraphError::Corrupt`] on a size mismatch.
pub fn decode_block_index(bytes: &[u8]) -> Result<Vec<usize>, GraphError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(corrupt("block index size mismatch"));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])) as usize)
        .collect())
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

/// Exact encoded size of `graph` as a **raw** `SNPLG2` file — known
/// ahead of writing, which is what lets the snapshot store stream a
/// checkpoint without buffering it (`snaple-store` embeds the graph at
/// an offset computed from this).
pub fn encoded_len(graph: &dyn GraphStore) -> u64 {
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    let sections: u64 = if graph.is_weighted() { 5 } else { 4 };
    let payload = 2 * (n + 1) * 8 + 2 * m * 4 + if graph.is_weighted() { m * 4 } else { 0 };
    HEADER2_LEN as u64 + sections * SECTION_ENTRY_LEN as u64 + payload
}

/// Streams one logical section's bytes through `sink` in bounded
/// chunks — used twice per section: a CRC pre-pass, then the write.
fn stream_section<E>(
    graph: &dyn GraphStore,
    kind: u32,
    sink: &mut impl FnMut(&[u8]) -> Result<(), E>,
) -> Result<(), E> {
    let mut buf = Vec::with_capacity(64 * 1024);
    macro_rules! flush_if_full {
        () => {
            if buf.len() >= 64 * 1024 - 8 {
                sink(&buf)?;
                buf.clear();
            }
        };
    }
    let n = graph.num_vertices();
    match kind {
        SEC_OUT_OFFSETS | SEC_IN_OFFSETS => {
            let mut total = 0u64;
            buf.extend_from_slice(&0u64.to_le_bytes());
            for raw in 0..n as u32 {
                let u = VertexId::new(raw);
                total += if kind == SEC_OUT_OFFSETS {
                    graph.out_degree(u) as u64
                } else {
                    graph.in_degree(u) as u64
                };
                buf.extend_from_slice(&total.to_le_bytes());
                flush_if_full!();
            }
        }
        SEC_OUT_TARGETS | SEC_IN_SOURCES => {
            for raw in 0..n as u32 {
                let u = VertexId::new(raw);
                let list = if kind == SEC_OUT_TARGETS {
                    graph.out_neighbors(u)
                } else {
                    graph.in_neighbors(u)
                };
                for v in list {
                    buf.extend_from_slice(&v.as_u32().to_le_bytes());
                    flush_if_full!();
                }
            }
        }
        SEC_OUT_WEIGHTS => {
            for raw in 0..n as u32 {
                for &w in graph.out_weights(VertexId::new(raw)).unwrap_or(&[]) {
                    buf.extend_from_slice(&w.to_bits().to_le_bytes());
                    flush_if_full!();
                }
            }
        }
        _ => {}
    }
    if !buf.is_empty() {
        sink(&buf)?;
    }
    Ok(())
}

/// Encodes `graph` as a **raw** `SNPLG2` file.
///
/// Two passes per section — a CRC/length pre-pass, then the write — so
/// nothing is buffered beyond a 64 KiB chunk: a 100M-edge checkpoint
/// streams straight to its file instead of transiently tripling memory.
/// For the varint flavor use
/// [`compress::write_v2_varint`](crate::compress::write_v2_varint).
///
/// # Errors
///
/// [`GraphError::Io`] on write failures.
pub fn write_v2<W: std::io::Write>(
    graph: &dyn GraphStore,
    mut writer: W,
) -> Result<(), GraphError> {
    let n = graph.num_vertices() as u64;
    let m = graph.num_edges() as u64;
    let weighted = graph.is_weighted();
    let mut kinds = vec![SEC_OUT_OFFSETS, SEC_OUT_TARGETS];
    if weighted {
        kinds.push(SEC_OUT_WEIGHTS);
    }
    kinds.push(SEC_IN_OFFSETS);
    kinds.push(SEC_IN_SOURCES);

    // Pass 1: per-section CRC + length, no buffering.
    let mut sections = Vec::with_capacity(kinds.len());
    let mut offset = (HEADER2_LEN + kinds.len() * SECTION_ENTRY_LEN) as u64;
    for &kind in &kinds {
        let mut crc = 0u32;
        let mut len = 0u64;
        stream_section::<std::convert::Infallible>(graph, kind, &mut |chunk| {
            crc = crc32(crc, chunk);
            len += chunk.len() as u64;
            Ok(())
        })
        .unwrap_or(());
        let elem_count = match kind {
            SEC_OUT_OFFSETS | SEC_IN_OFFSETS => n + 1,
            _ => m,
        };
        sections.push(Section {
            kind,
            crc,
            offset,
            byte_len: len,
            elem_count,
        });
        offset += len;
    }

    // Header + section table.
    let mut head = Vec::with_capacity(HEADER2_LEN + kinds.len() * SECTION_ENTRY_LEN);
    head.extend_from_slice(MAGIC2);
    head.push(VERSION2);
    head.push(if weighted { FLAG2_WEIGHTED } else { 0 });
    head.extend_from_slice(&n.to_le_bytes());
    head.extend_from_slice(&m.to_le_bytes());
    head.extend_from_slice(&(kinds.len() as u32).to_le_bytes());
    head.extend_from_slice(&0u32.to_le_bytes());
    for s in &sections {
        head.extend_from_slice(&s.kind.to_le_bytes());
        head.extend_from_slice(&s.crc.to_le_bytes());
        head.extend_from_slice(&s.offset.to_le_bytes());
        head.extend_from_slice(&s.byte_len.to_le_bytes());
        head.extend_from_slice(&s.elem_count.to_le_bytes());
    }
    writer.write_all(&head)?;

    // Pass 2: the payloads.
    for &kind in &kinds {
        stream_section::<GraphError>(graph, kind, &mut |chunk| {
            writer.write_all(chunk).map_err(GraphError::from)
        })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// FileCsr: the lazy file-backed backend.
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct FileCsrInner {
    path: PathBuf,
    file: Mutex<File>,
    header: V2Header,
    out_offsets: OnceLock<Vec<usize>>,
    out_targets: OnceLock<Vec<VertexId>>,
    out_weights: OnceLock<Vec<f32>>,
    in_offsets: OnceLock<Vec<usize>>,
    in_sources: OnceLock<Vec<VertexId>>,
    /// First deferred load failure; accessors serve empty lists once
    /// set, [`FileCsr::hydrate`] surfaces it as a typed error.
    fault: OnceLock<String>,
}

/// A file-backed [`GraphStore`] over a raw `SNPLG2` file.
///
/// [`FileCsr::open`] reads only the header and section table — open
/// time is flat in the edge count (the property `exp_dataplane`
/// exit-enforces). Adjacency sections fault in lazily, each validated
/// against its CRC on load. Accessors never panic: a section that fails
/// its deferred load reads as empty and the failure is reported by
/// [`FileCsr::hydrate`] — serving layers hydrate once up front, so the
/// panic-free engine zones never observe a half-loaded graph.
///
/// Cloning is cheap (`Arc`-backed); clones share loaded sections.
#[derive(Clone, Debug)]
pub struct FileCsr {
    inner: Arc<FileCsrInner>,
}

impl FileCsr {
    /// Opens a raw `SNPLG2` file, validating the header and section
    /// table only — O(sections), not O(edges).
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures, [`GraphError::Corrupt`]
    /// on a malformed prelude, or if the file is varint-flavored (open
    /// those via [`io::open_store`](crate::io::open_store), which routes
    /// them to the compressed backend).
    pub fn open(path: &Path) -> Result<FileCsr, GraphError> {
        let mut file = File::open(path)?;
        let file_len = file.metadata()?.len();
        let prelude_len = (file_len as usize).min(HEADER2_LEN + 64 * SECTION_ENTRY_LEN);
        let mut prelude = vec![0u8; prelude_len];
        file.read_exact(&mut prelude)?;
        let header = parse_header(&prelude, file_len)?;
        if header.varint {
            return Err(corrupt(
                "varint-flavored SNPLG2: open via io::open_store, not FileCsr",
            ));
        }
        Ok(FileCsr {
            inner: Arc::new(FileCsrInner {
                path: path.to_path_buf(),
                file: Mutex::new(file),
                header,
                out_offsets: OnceLock::new(),
                out_targets: OnceLock::new(),
                out_weights: OnceLock::new(),
                in_offsets: OnceLock::new(),
                in_sources: OnceLock::new(),
                fault: OnceLock::new(),
            }),
        })
    }

    /// The path this store reads from.
    pub fn path(&self) -> &Path {
        &self.inner.path
    }

    /// The parsed file header.
    pub fn header(&self) -> &V2Header {
        &self.inner.header
    }

    /// The first deferred-load failure, if any section failed to fault
    /// in. [`FileCsr::hydrate`] returns this as a typed error.
    pub fn fault(&self) -> Option<&str> {
        self.inner.fault.get().map(String::as_str)
    }

    fn record_fault(&self, e: &GraphError) {
        let _ = self
            .inner
            .fault
            .set(format!("{}: {e}", self.inner.path.display()));
    }

    /// Reads and CRC-checks one section's raw bytes.
    fn read_section(&self, kind: u32) -> Result<Vec<u8>, GraphError> {
        let sec = self
            .inner
            .header
            .section(kind)
            .ok_or_else(|| corrupt(format!("missing required section {kind}")))?;
        // byte_len was validated against the real file size at open, so
        // this allocation is bounded by bytes that actually exist.
        // snaple-lint: allow(wire-length) — byte_len checked against the real file size at open
        let mut buf = vec![0u8; sec.byte_len as usize];
        {
            let mut file = self
                .inner
                .file
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            file.seek(SeekFrom::Start(sec.offset))?;
            file.read_exact(&mut buf)?;
        }
        if crc32(0, &buf) != sec.crc {
            return Err(corrupt(format!("section {} checksum mismatch", sec.kind)));
        }
        Ok(buf)
    }

    fn offsets_of<'a>(&self, cell: &'a OnceLock<Vec<usize>>, kind: u32) -> &'a [usize] {
        cell.get_or_init(|| {
            match self
                .read_section(kind)
                .and_then(|b| decode_offsets(&b, self.inner.header.n, self.inner.header.m))
            {
                Ok(v) => v,
                Err(e) => {
                    self.record_fault(&e);
                    Vec::new()
                }
            }
        })
    }

    fn ids_of<'a>(&self, cell: &'a OnceLock<Vec<VertexId>>, kind: u32) -> &'a [VertexId] {
        cell.get_or_init(|| {
            match self
                .read_section(kind)
                .and_then(|b| decode_ids(&b, self.inner.header.n, self.inner.header.m))
            {
                Ok(v) => v,
                Err(e) => {
                    self.record_fault(&e);
                    Vec::new()
                }
            }
        })
    }

    fn weights_slice(&self) -> Option<&[f32]> {
        if !self.inner.header.weighted {
            return None;
        }
        Some(self.inner.out_weights.get_or_init(|| {
            match self
                .read_section(SEC_OUT_WEIGHTS)
                .and_then(|b| decode_weights(&b, self.inner.header.m))
            {
                Ok(v) => v,
                Err(e) => {
                    self.record_fault(&e);
                    Vec::new()
                }
            }
        }))
    }

    fn out_offs(&self) -> &[usize] {
        self.offsets_of(&self.inner.out_offsets, SEC_OUT_OFFSETS)
    }

    fn in_offs(&self) -> &[usize] {
        self.offsets_of(&self.inner.in_offsets, SEC_IN_OFFSETS)
    }

    fn list<'a>(offsets: &[usize], items: &'a [VertexId], u: VertexId) -> &'a [VertexId] {
        let lo = offsets.get(u.index()).copied();
        let hi = offsets.get(u.index() + 1).copied();
        match (lo, hi) {
            (Some(lo), Some(hi)) => items.get(lo..hi).unwrap_or(&[]),
            _ => &[],
        }
    }
}

impl GraphStore for FileCsr {
    fn num_vertices(&self) -> usize {
        self.inner.header.n
    }

    fn num_edges(&self) -> usize {
        self.inner.header.m
    }

    fn is_weighted(&self) -> bool {
        self.inner.header.weighted
    }

    fn out_degree(&self, u: VertexId) -> usize {
        let offs = self.out_offs();
        match (offs.get(u.index()), offs.get(u.index() + 1)) {
            (Some(&lo), Some(&hi)) => hi.saturating_sub(lo),
            _ => 0,
        }
    }

    fn in_degree(&self, u: VertexId) -> usize {
        let offs = self.in_offs();
        match (offs.get(u.index()), offs.get(u.index() + 1)) {
            (Some(&lo), Some(&hi)) => hi.saturating_sub(lo),
            _ => 0,
        }
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        let targets = self.ids_of(&self.inner.out_targets, SEC_OUT_TARGETS);
        Self::list(self.out_offs(), targets, u)
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        let sources = self.ids_of(&self.inner.in_sources, SEC_IN_SOURCES);
        Self::list(self.in_offs(), sources, u)
    }

    fn out_weights(&self, u: VertexId) -> Option<&[f32]> {
        let ws = self.weights_slice()?;
        let offs = self.out_offs();
        let lo = offs.get(u.index()).copied()?;
        let hi = offs.get(u.index() + 1).copied()?;
        ws.get(lo..hi)
    }

    fn backend_name(&self) -> &'static str {
        "file-csr"
    }

    fn storage_bytes(&self) -> u64 {
        self.inner
            .header
            .sections
            .iter()
            .map(|s| s.byte_len)
            .sum::<u64>()
            + HEADER2_LEN as u64
    }

    fn hydrate(&self) -> Result<(), GraphError> {
        self.out_offs();
        self.ids_of(&self.inner.out_targets, SEC_OUT_TARGETS);
        self.in_offs();
        self.ids_of(&self.inner.in_sources, SEC_IN_SOURCES);
        self.weights_slice();
        match self.fault() {
            Some(msg) => Err(corrupt(msg.to_string())),
            None => Ok(()),
        }
    }

    fn to_csr(&self) -> CsrGraph {
        if self.hydrate().is_err() {
            return CsrGraph::from_edges(0, &[]);
        }
        let h = &self.inner.header;
        CsrGraph::from_parts_with_reverse(
            h.n,
            self.out_offs().to_vec(),
            self.ids_of(&self.inner.out_targets, SEC_OUT_TARGETS)
                .to_vec(),
            self.weights_slice().map(<[f32]>::to_vec),
            self.in_offs().to_vec(),
            self.ids_of(&self.inner.in_sources, SEC_IN_SOURCES).to_vec(),
        )
    }

    fn clone_shared(&self) -> Arc<dyn GraphStore> {
        Arc::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store;
    use crate::GraphBuilder;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (3, 1), (4, 0)])
    }

    fn weighted_sample() -> CsrGraph {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 2.5)
            .add_weighted_edge(1, 0, 0.5)
            .add_weighted_edge(1, 2, -1.25);
        b.build()
    }

    fn encode(g: &CsrGraph) -> Vec<u8> {
        let mut out = Vec::new();
        write_v2(g, &mut out).expect("encode");
        out
    }

    fn assert_same(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.is_weighted(), b.is_weighted());
        for u in a.vertices() {
            assert_eq!(a.out_neighbors(u), b.out_neighbors(u), "{u} out");
            assert_eq!(a.in_neighbors(u), b.in_neighbors(u), "{u} in");
            match (a.out_weights(u), b.out_weights(u)) {
                (Some(x), Some(y)) => assert_eq!(
                    x.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                    y.iter().map(|w| w.to_bits()).collect::<Vec<_>>(),
                    "{u} weights"
                ),
                (None, None) => {}
                other => panic!("weight presence diverged at {u}: {other:?}"),
            }
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for g in [sample(), weighted_sample(), CsrGraph::from_edges(0, &[])] {
            let bytes = encode(&g);
            let g2 = decode_v2(&bytes).expect("decode");
            assert_same(&g, &g2);
        }
    }

    #[test]
    fn encoded_len_matches_reality() {
        for g in [sample(), weighted_sample(), CsrGraph::from_edges(3, &[])] {
            assert_eq!(encode(&g).len() as u64, encoded_len(&g));
        }
    }

    #[test]
    fn every_corrupt_byte_is_a_typed_error() {
        let bytes = encode(&weighted_sample());
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            assert!(decode_v2(&bad).is_err(), "flip at {pos} went unnoticed");
        }
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let bytes = encode(&sample());
        for cut in [0, 3, 7, HEADER2_LEN - 1, HEADER2_LEN + 5, bytes.len() - 1] {
            assert!(decode_v2(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn file_csr_matches_the_ram_graph() {
        let dir = std::env::temp_dir().join(format!("snplg2-basic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        for (name, g) in [("plain", sample()), ("weighted", weighted_sample())] {
            let path = dir.join(format!("{name}.snplg"));
            std::fs::write(&path, encode(&g)).expect("write");
            let f = FileCsr::open(&path).expect("open");
            assert!(f.hydrate().is_ok());
            assert_eq!(f.backend_name(), "file-csr");
            let s: &dyn GraphStore = &f;
            assert_eq!(s.num_vertices(), g.num_vertices());
            assert_eq!(s.num_edges(), g.num_edges());
            for u in store::vertices(s) {
                assert_eq!(s.out_neighbors(u), g.out_neighbors(u));
                assert_eq!(s.in_neighbors(u), g.in_neighbors(u));
                assert_eq!(s.out_degree(u), g.out_degree(u));
                assert_eq!(s.in_degree(u), g.in_degree(u));
                assert_eq!(s.out_weights(u), g.out_weights(u));
            }
            assert_same(&g, &s.to_csr());
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_csr_open_reads_only_the_prelude_and_faults_lazily() {
        let dir = std::env::temp_dir().join(format!("snplg2-lazy-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let g = sample();
        let path = dir.join("lazy.snplg");
        let mut bytes = encode(&g);
        // Corrupt a payload byte (past the section table): open must
        // still succeed, the fault surfaces on access/hydrate.
        let table_end = HEADER2_LEN + 4 * SECTION_ENTRY_LEN;
        bytes[table_end + 3] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("write");
        let f = FileCsr::open(&path).expect("open ignores payloads");
        assert!(f.fault().is_none());
        // Touching the corrupt section serves empty and records a fault.
        let _ = f.out_degree(VertexId::new(0));
        assert!(f.fault().is_some());
        assert!(matches!(f.hydrate(), Err(GraphError::Corrupt(_))));
        assert!(f.out_neighbors(VertexId::new(0)).is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_csr_rejects_missing_and_forged_files() {
        let dir = std::env::temp_dir().join(format!("snplg2-forged-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        assert!(matches!(
            FileCsr::open(&dir.join("nope.snplg")),
            Err(GraphError::Io(_))
        ));
        // A v1 file is a clean typed error, not a panic.
        let p = dir.join("v1.snplg");
        let mut v1 = Vec::new();
        crate::io::write_binary_v1(&sample(), &mut v1).expect("v1");
        std::fs::write(&p, &v1).expect("write");
        assert!(matches!(FileCsr::open(&p), Err(GraphError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn header_rejects_hostile_section_tables() {
        let g = sample();
        let bytes = encode(&g);
        // Section offset pointing past the file.
        let mut bad = bytes.clone();
        let off_at = HEADER2_LEN + 8; // first entry's offset field
        bad[off_at..off_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            parse_header(&bad, bad.len() as u64),
            Err(GraphError::Corrupt(_))
        ));
        // Duplicate section kind.
        let mut dup = bytes.clone();
        let second = HEADER2_LEN + SECTION_ENTRY_LEN;
        let first_kind = dup[HEADER2_LEN..HEADER2_LEN + 4].to_vec();
        dup[second..second + 4].copy_from_slice(&first_kind);
        assert!(parse_header(&dup, dup.len() as u64).is_err());
        // Unknown section kind.
        let mut unk = bytes;
        unk[HEADER2_LEN..HEADER2_LEN + 4].copy_from_slice(&99u32.to_le_bytes());
        assert!(parse_header(&unk, unk.len() as u64).is_err());
    }
}
