//! Vertex subsets as bitmasks — the substrate of targeted (query-subset)
//! prediction.
//!
//! A [`VertexMask`] marks the *active* vertices of a computation step.
//! Targeted prediction runs SNAPLE's GAS steps only for the vertices that
//! can influence a query's result; the masks for successive steps are built
//! by [expanding](VertexMask::expand) a query set along the graph's edges,
//! one hop per step of lookahead.

use crate::csr::Direction;
use crate::id::VertexId;
use crate::store::GraphStore;

/// A subset of a graph's vertices, stored as a bitmask.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexMask {
    bits: Vec<u64>,
    num_vertices: usize,
    count: usize,
}

impl VertexMask {
    /// Creates an empty mask over `num_vertices` vertices.
    pub fn empty(num_vertices: usize) -> Self {
        VertexMask {
            bits: vec![0; num_vertices.div_ceil(64)],
            num_vertices,
            count: 0,
        }
    }

    /// Creates a mask with every vertex set.
    pub fn full(num_vertices: usize) -> Self {
        let mut mask = VertexMask {
            bits: vec![!0u64; num_vertices.div_ceil(64)],
            num_vertices,
            count: num_vertices,
        };
        let spill = num_vertices % 64;
        if spill != 0 {
            if let Some(last) = mask.bits.last_mut() {
                *last = (1u64 << spill) - 1;
            }
        }
        mask
    }

    /// Creates a mask over `num_vertices` vertices from an id iterator.
    ///
    /// # Panics
    ///
    /// Panics when an id is out of range.
    pub fn from_vertices(
        num_vertices: usize,
        vertices: impl IntoIterator<Item = VertexId>,
    ) -> Self {
        let mut mask = VertexMask::empty(num_vertices);
        for v in vertices {
            mask.insert(v);
        }
        mask
    }

    /// Number of vertices the mask ranges over (set or not).
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of set vertices.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether no vertex is set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether every vertex is set.
    pub fn is_full(&self) -> bool {
        self.count == self.num_vertices
    }

    /// Adds a vertex; returns whether it was newly set.
    ///
    /// # Panics
    ///
    /// Panics when `v` is out of range.
    pub fn insert(&mut self, v: VertexId) -> bool {
        let i = v.index();
        assert!(
            i < self.num_vertices,
            "vertex {i} out of range for mask over {} vertices",
            self.num_vertices
        );
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        let newly = self.bits[word] & bit == 0;
        if newly {
            self.bits[word] |= bit;
            self.count += 1;
        }
        newly
    }

    /// Whether `v` is set (out-of-range vertices are not).
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        let i = v.index();
        i < self.num_vertices && self.bits[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Iterates the set vertices in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, &word)| {
            let base = w as u32 * 64;
            let mut rest = word;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(VertexId::new(base + bit))
            })
        })
    }

    /// Returns this mask united with the `dir`-neighbors of its set
    /// vertices — one hop of frontier growth.
    ///
    /// With [`Direction::Out`], a query mask `Q` becomes `Q ∪ Γ(Q)`: the
    /// set of vertices whose state a gather over `Q`'s out-edges can read.
    ///
    /// # Panics
    ///
    /// Panics when the mask and graph sizes disagree.
    pub fn expand(&self, graph: &dyn GraphStore, dir: Direction) -> VertexMask {
        assert_eq!(
            self.num_vertices,
            graph.num_vertices(),
            "mask does not match graph"
        );
        let mut out = self.clone();
        for v in self.iter() {
            for &w in graph.neighbors(v, dir) {
                out.insert(w);
            }
        }
        out
    }

    /// [`expand`](Self::expand) along out-edges — the direction SNAPLE's
    /// steps gather over.
    pub fn expand_out(&self, graph: &dyn GraphStore) -> VertexMask {
        self.expand(graph, Direction::Out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrGraph;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn insert_contains_len() {
        let mut m = VertexMask::empty(100);
        assert!(m.is_empty());
        assert!(m.insert(v(3)));
        assert!(!m.insert(v(3)));
        assert!(m.insert(v(64)));
        assert!(m.insert(v(99)));
        assert_eq!(m.len(), 3);
        assert!(m.contains(v(3)));
        assert!(m.contains(v(64)));
        assert!(!m.contains(v(4)));
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![v(3), v(64), v(99)]);
    }

    #[test]
    fn full_masks_cover_exactly_the_range() {
        for n in [0usize, 1, 63, 64, 65, 130] {
            let m = VertexMask::full(n);
            assert_eq!(m.len(), n);
            assert!(m.is_full());
            assert_eq!(m.iter().count(), n);
            assert!(!m.contains(v(n as u32)));
        }
        assert!(!VertexMask::full(64).is_empty());
        assert!(VertexMask::full(0).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_insert_panics() {
        VertexMask::empty(5).insert(v(5));
    }

    #[test]
    fn expand_follows_out_edges() {
        // 0 → 1 → 2 → 3, 4 isolated.
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let q = VertexMask::from_vertices(5, [v(0)]);
        let one = q.expand_out(&g);
        assert_eq!(one.iter().collect::<Vec<_>>(), vec![v(0), v(1)]);
        let two = one.expand_out(&g);
        assert_eq!(two.iter().collect::<Vec<_>>(), vec![v(0), v(1), v(2)]);
        let in_dir = VertexMask::from_vertices(5, [v(2)]).expand(&g, Direction::In);
        assert_eq!(in_dir.iter().collect::<Vec<_>>(), vec![v(1), v(2)]);
    }

    #[test]
    fn expand_saturates_at_full() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let mut m = VertexMask::from_vertices(3, [v(0)]);
        for _ in 0..4 {
            m = m.expand_out(&g);
        }
        assert!(m.is_full());
    }

    #[test]
    fn expanding_an_empty_mask_stays_empty() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        for dir in [Direction::Out, Direction::In] {
            let e = VertexMask::empty(4).expand(&g, dir);
            assert!(e.is_empty());
            assert_eq!(e.num_vertices(), 4);
        }
    }

    #[test]
    fn expanding_a_full_mask_stays_full() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        for dir in [Direction::Out, Direction::In] {
            let f = VertexMask::full(5).expand(&g, dir);
            assert!(f.is_full());
            assert_eq!(f.len(), 5);
        }
    }

    #[test]
    fn isolated_vertices_expand_to_themselves() {
        // 2 is fully isolated; 4 has only an in-edge.
        let g = CsrGraph::from_edges(5, &[(0, 1), (3, 4)]);
        let iso = VertexMask::from_vertices(5, [v(2)]);
        assert_eq!(iso.expand_out(&g), iso);
        assert_eq!(iso.expand(&g, Direction::In), iso);
        // A sink vertex grows along In but not along Out.
        let sink = VertexMask::from_vertices(5, [v(4)]);
        assert_eq!(sink.expand_out(&g), sink);
        assert_eq!(
            sink.expand(&g, Direction::In).iter().collect::<Vec<_>>(),
            vec![v(3), v(4)]
        );
    }

    #[test]
    fn in_and_out_expansion_differ_on_directed_graphs() {
        // 0 → 1 → 2: from {1}, Out reaches 2, In reaches 0.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let m = VertexMask::from_vertices(3, [v(1)]);
        let out = m.expand(&g, Direction::Out);
        let inward = m.expand(&g, Direction::In);
        assert_eq!(out.iter().collect::<Vec<_>>(), vec![v(1), v(2)]);
        assert_eq!(inward.iter().collect::<Vec<_>>(), vec![v(0), v(1)]);
        assert_ne!(out, inward);
    }

    #[test]
    fn expand_on_an_empty_graph_is_identity() {
        let g = CsrGraph::from_edges(0, &[]);
        let m = VertexMask::empty(0);
        assert!(m.expand_out(&g).is_empty());
        assert_eq!(m.expand_out(&g).num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "mask does not match graph")]
    fn expand_rejects_mismatched_sizes() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        VertexMask::empty(4).expand_out(&g);
    }
}
