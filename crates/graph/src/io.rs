//! Graph serialization: SNAP-style text edge lists and the binary
//! formats.
//!
//! The text format is one `source target [weight]` triple per line, with `#`
//! or `%` starting comment lines — the format the paper's public datasets
//! ship in.
//!
//! # Binary formats and routing
//!
//! Two binary formats exist; both are auto-detected from their magic:
//!
//! * **`SNPLG2`** (see [`v2`]) — the current format.
//!   [`write_binary`] emits it; its sections are the CSR arrays
//!   verbatim (both adjacency directions), so loading is a vectorized
//!   bytes→ints copy with no per-edge decode and no reverse-adjacency
//!   rebuild, and [`v2::FileCsr`] can open it
//!   lazily in O(1) of the edge count.
//! * **`SNPLG1`** — the legacy format (out-adjacency only, in-adjacency
//!   re-derived on load). Kept fully readable; [`write_binary_v1`]
//!   still writes it for tooling that needs the old layout.
//!
//! [`read_binary`] accepts either. [`open_store`] is the file-level
//! entry point: it dispatches on magic (and the varint flag) to the
//! right [`GraphStore`] backend — eager [`CsrGraph`], lazy
//! [`FileCsr`](crate::v2::FileCsr), or compressed
//! [`CompressedGraph`](crate::compress::CompressedGraph).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;
use std::sync::Arc;

use bytes::{Buf, BufMut};

use crate::store::GraphStore;
use crate::{store, v2, CsrGraph, GraphBuilder, GraphError, VertexId};

const MAGIC: &[u8; 6] = b"SNPLG1";
const FLAG_WEIGHTED: u8 = 1;

/// Reads a text edge list.
///
/// Lines starting with `#` or `%` and blank lines are skipped. Each data
/// line must contain two vertex ids and may contain a third `f32` weight
/// field; fields are whitespace-separated.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] on malformed lines and [`GraphError::Io`]
/// on read failures.
///
/// ```
/// use snaple_graph::io::read_edge_list;
/// let g = read_edge_list("# demo\n0 1\n1 2\n".as_bytes(), false)?;
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), snaple_graph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R, symmetrize: bool) -> Result<CsrGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    builder.symmetrize(symmetrize);
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let (su, sv) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    message: "expected at least two fields".into(),
                })
            }
        };
        let parse = |s: &str| -> Result<u32, GraphError> {
            s.parse().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid vertex id {s:?}"),
            })
        };
        let (u, v) = (parse(su)?, parse(sv)?);
        match it.next() {
            Some(sw) => {
                let w: f32 = sw.parse().map_err(|_| GraphError::Parse {
                    line: lineno + 1,
                    message: format!("invalid weight {sw:?}"),
                })?;
                builder.add_weighted_edge(u, v, w);
            }
            None => {
                builder.add_edge(u, v);
            }
        }
        if let Some(extra) = it.next() {
            // A line like `0 1 0.5 junk` is corrupt input, not a comment
            // — accepting it silently hides truncated/merged records.
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: format!("trailing field {extra:?} after edge data"),
            });
        }
    }
    Ok(builder.build())
}

/// Writes a graph as a text edge list (weights included when present).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(graph: &dyn GraphStore, mut writer: W) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# snaple edge list: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    )?;
    for u in store::vertices(graph) {
        let nbrs = graph.out_neighbors(u);
        match graph.out_weights(u) {
            Some(ws) => {
                for (v, w) in nbrs.iter().zip(ws) {
                    writeln!(writer, "{} {} {}", u.as_u32(), v.as_u32(), w)?;
                }
            }
            None => {
                for v in nbrs {
                    writeln!(writer, "{} {}", u.as_u32(), v.as_u32())?;
                }
            }
        }
    }
    Ok(())
}

/// Encodes a graph in the current binary format (`SNPLG2`, raw flavor).
///
/// Use [`write_binary_v1`] when the legacy layout is explicitly needed;
/// [`read_binary`] auto-detects either. For the compressed flavor see
/// [`compress::write_v2_varint`](crate::compress::write_v2_varint).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_binary<W: Write>(graph: &dyn GraphStore, writer: W) -> Result<(), GraphError> {
    v2::write_v2(graph, writer)
}

/// Encodes a graph into the legacy `SNPLG1` binary format.
///
/// Kept for tooling pinned to the old layout; new writes should go
/// through [`write_binary`]. Unlike `SNPLG2`, this stores only the
/// out-adjacency — readers pay an O(edges) reverse-adjacency rebuild.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failures.
pub fn write_binary_v1<W: Write>(graph: &CsrGraph, mut writer: W) -> Result<(), GraphError> {
    let mut header = Vec::with_capacity(MAGIC.len() + 1 + 16);
    header.put_slice(MAGIC);
    header.put_u8(if graph.is_weighted() {
        FLAG_WEIGHTED
    } else {
        0
    });
    header.put_u64_le(graph.num_vertices() as u64);
    header.put_u64_le(graph.num_edges() as u64);
    writer.write_all(&header)?;

    let mut body = Vec::with_capacity(graph.num_edges() * 4 + graph.num_vertices() * 8 + 16);
    let mut offset = 0u64;
    body.put_u64_le(0);
    for u in graph.vertices() {
        offset += graph.out_degree(u) as u64;
        body.put_u64_le(offset);
    }
    for u in graph.vertices() {
        for v in graph.out_neighbors(u) {
            body.put_u32_le(v.as_u32());
        }
    }
    if graph.is_weighted() {
        for u in graph.vertices() {
            for &w in graph.out_weights(u).unwrap_or(&[]) {
                body.put_f32_le(w);
            }
        }
    }
    writer.write_all(&body)?;
    Ok(())
}

/// Decodes a graph from either binary format, auto-detected from the
/// magic (`SNPLG2` current, `SNPLG1` legacy).
///
/// # Errors
///
/// Returns [`GraphError::Corrupt`] on malformed input and [`GraphError::Io`]
/// on read failures.
pub fn read_binary<R: Read>(mut reader: R) -> Result<CsrGraph, GraphError> {
    let mut data = Vec::new();
    reader.read_to_end(&mut data)?;
    if data.get(..v2::MAGIC2.len()) == Some(v2::MAGIC2.as_slice()) {
        return v2::decode_v2(&data);
    }
    read_binary_v1_bytes(&data)
}

/// Opens a graph file as the [`GraphStore`] backend its format calls
/// for, dispatching on the magic bytes:
///
/// * raw `SNPLG2` → lazy [`FileCsr`](crate::v2::FileCsr) (open is O(1)
///   in the edge count);
/// * varint `SNPLG2` → [`CompressedGraph`](crate::compress::CompressedGraph)
///   (streams stay compressed in memory);
/// * `SNPLG1` → eager in-RAM [`CsrGraph`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] on filesystem failures and
/// [`GraphError::Corrupt`] on malformed or unrecognized files.
pub fn open_store(path: &Path) -> Result<Arc<dyn GraphStore>, GraphError> {
    use std::io::Seek;
    let mut file = std::fs::File::open(path)?;
    let mut prelude = [0u8; 8];
    let got = file.read(&mut prelude)?;
    if prelude.get(..v2::MAGIC2.len()) == Some(v2::MAGIC2.as_slice()) {
        let varint = prelude.get(7).is_some_and(|f| f & v2::FLAG2_VARINT != 0);
        drop(file);
        if varint {
            return Ok(Arc::new(crate::compress::CompressedGraph::open(path)?));
        }
        return Ok(Arc::new(v2::FileCsr::open(path)?));
    }
    if prelude.get(..MAGIC.len()) == Some(MAGIC.as_slice()) {
        file.seek(std::io::SeekFrom::Start(0))?;
        return Ok(Arc::new(read_binary(BufReader::new(file))?));
    }
    let _ = got;
    Err(GraphError::Corrupt(format!(
        "{}: not a SNPLG1/SNPLG2 graph file",
        path.display()
    )))
}

fn read_binary_v1_bytes(data: &[u8]) -> Result<CsrGraph, GraphError> {
    let mut buf = data;
    if buf.remaining() < MAGIC.len() + 1 + 16 {
        return Err(GraphError::Corrupt("truncated header".into()));
    }
    let mut magic = [0u8; 6];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(GraphError::Corrupt("bad magic".into()));
    }
    let flags = buf.get_u8();
    if flags & !FLAG_WEIGHTED != 0 {
        return Err(GraphError::Corrupt(format!("unknown flag bits {flags:#x}")));
    }
    let weighted = flags & FLAG_WEIGHTED != 0;
    let raw_n = buf.get_u64_le();
    let raw_m = buf.get_u64_le();
    // Vertex ids are u32: a count beyond u32::MAX + 1 cannot index and
    // would only arise from corruption; rejecting it here keeps the
    // allocation sizing below meaningful.
    if raw_n > u32::MAX as u64 + 1 {
        return Err(GraphError::Corrupt(format!(
            "vertex count {raw_n} exceeds the u32 id space"
        )));
    }
    let n = raw_n as usize;
    let m = raw_m as usize;

    // Validate the declared counts against the bytes actually present
    // BEFORE any allocation is sized from them: a truncated or corrupt
    // header must produce `GraphError::Corrupt`, not an OOM or panic.
    // Wide arithmetic so hostile counts cannot overflow the check itself.
    let need =
        (n as u128 + 1) * 8 + (raw_m as u128) * 4 + if weighted { raw_m as u128 * 4 } else { 0 };
    if (buf.remaining() as u128) < need {
        return Err(GraphError::Corrupt(format!(
            "body too short: need {need} bytes, have {}",
            buf.remaining()
        )));
    }
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(buf.get_u64_le() as usize);
    }
    if offsets[0] != 0 || offsets[n] != m || offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(GraphError::Corrupt("non-monotonic offsets".into()));
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        let t = buf.get_u32_le();
        if t as usize >= n {
            return Err(GraphError::VertexOutOfRange {
                vertex: t,
                num_vertices: n,
            });
        }
        targets.push(VertexId::new(t));
    }
    let weights = if weighted {
        let mut w = Vec::with_capacity(m);
        for _ in 0..m {
            w.push(buf.get_f32_le());
        }
        Some(w)
    } else {
        None
    };
    Ok(CsrGraph::from_parts(n, offsets, targets, weights))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        CsrGraph::from_edges(5, &[(0, 1), (0, 4), (1, 2), (3, 1), (4, 0)])
    }

    #[test]
    fn text_round_trip() {
        let g = sample();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&out[..], false).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for u in g.vertices() {
            assert_eq!(g.out_neighbors(u), g2.out_neighbors(u));
        }
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let g = read_edge_list("# c\n% c\n\n0 1\n".as_bytes(), false).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn text_symmetrize_doubles_edges() {
        let g = read_edge_list("0 1\n1 2\n".as_bytes(), true).unwrap();
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn text_rejects_garbage() {
        let err = read_edge_list("0\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("0 x\n".as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
        let err = read_edge_list("0 1 zz\n".as_bytes(), false).unwrap_err();
        assert!(err.to_string().contains("invalid weight"));
    }

    #[test]
    fn text_rejects_trailing_fields() {
        // Regression: `0 1 0.5 junk` used to parse silently, dropping
        // the extra field — a merged or truncated record must error.
        let err = read_edge_list("0 1 0.5 junk\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{err}");
        assert!(err.to_string().contains("trailing field"), "{err}");
        let err = read_edge_list("0 1\n2 3 1.0 4 5\n".as_bytes(), false).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 2, .. }), "{err}");
    }

    #[test]
    fn text_parses_weights() {
        let g = read_edge_list("0 1 0.5\n".as_bytes(), false).unwrap();
        assert!(g.is_weighted());
        assert_eq!(g.edge_weight(VertexId::new(0), VertexId::new(1)), Some(0.5));
    }

    #[test]
    fn binary_round_trip() {
        let g = sample();
        let mut out = Vec::new();
        write_binary(&g, &mut out).unwrap();
        assert_eq!(&out[..6], b"SNPLG2", "default writes are v2");
        let g2 = read_binary(&out[..]).unwrap();
        assert_eq!(g.num_vertices(), g2.num_vertices());
        assert_eq!(g.num_edges(), g2.num_edges());
        for u in g.vertices() {
            assert_eq!(g.out_neighbors(u), g2.out_neighbors(u));
            assert_eq!(g.in_neighbors(u), g2.in_neighbors(u));
        }
    }

    #[test]
    fn legacy_v1_files_stay_readable_through_the_same_entry_point() {
        let g = sample();
        let mut v1 = Vec::new();
        write_binary_v1(&g, &mut v1).unwrap();
        assert_eq!(&v1[..6], b"SNPLG1");
        let g2 = read_binary(&v1[..]).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        for u in g.vertices() {
            assert_eq!(g.out_neighbors(u), g2.out_neighbors(u));
            assert_eq!(g.in_neighbors(u), g2.in_neighbors(u));
        }
    }

    #[test]
    fn open_store_dispatches_every_format_to_its_backend() {
        let dir = std::env::temp_dir().join(format!("snpl-open-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();

        let v2_path = dir.join("g.v2.snplg");
        let mut v2_bytes = Vec::new();
        write_binary(&g, &mut v2_bytes).unwrap();
        std::fs::write(&v2_path, &v2_bytes).unwrap();

        let v1_path = dir.join("g.v1.snplg");
        let mut v1_bytes = Vec::new();
        write_binary_v1(&g, &mut v1_bytes).unwrap();
        std::fs::write(&v1_path, &v1_bytes).unwrap();

        let vz_path = dir.join("g.vz.snplg");
        let mut vz_bytes = Vec::new();
        crate::compress::write_v2_varint(&g, &mut vz_bytes).unwrap();
        std::fs::write(&vz_path, &vz_bytes).unwrap();

        let expectations = [
            (&v2_path, "file-csr"),
            (&v1_path, "csr"),
            (&vz_path, "varint"),
        ];
        for (path, backend) in expectations {
            let s = open_store(path).unwrap();
            assert_eq!(s.backend_name(), backend, "{}", path.display());
            assert!(s.hydrate().is_ok());
            assert_eq!(s.num_edges(), g.num_edges());
            for u in g.vertices() {
                assert_eq!(s.out_neighbors(u), g.out_neighbors(u));
                assert_eq!(s.in_neighbors(u), g.in_neighbors(u));
            }
        }

        let junk = dir.join("junk.bin");
        std::fs::write(&junk, b"not a graph at all").unwrap();
        assert!(matches!(open_store(&junk), Err(GraphError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_round_trip_weighted() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 2.5).add_weighted_edge(1, 0, 0.5);
        let g = b.build();
        let mut out = Vec::new();
        write_binary(&g, &mut out).unwrap();
        let g2 = read_binary(&out[..]).unwrap();
        assert!(g2.is_weighted());
        assert_eq!(
            g2.edge_weight(VertexId::new(0), VertexId::new(1)),
            Some(2.5)
        );
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let err = read_binary(&b"NOTMAG\x00"[..]).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)));
    }

    #[test]
    fn binary_rejects_truncation() {
        let g = sample();
        let mut out = Vec::new();
        write_binary(&g, &mut out).unwrap();
        for cut in [3, MAGIC.len() + 10, out.len() - 1] {
            let err = read_binary(&out[..cut]).unwrap_err();
            assert!(matches!(err, GraphError::Corrupt(_)), "cut at {cut}");
        }
    }

    /// Hand-crafts a `SNPLG1` header with arbitrary counts and a short
    /// body.
    fn forged_header(flags: u8, n: u64, m: u64, body_bytes: usize) -> Vec<u8> {
        let mut out = Vec::new();
        out.put_slice(MAGIC);
        out.put_u8(flags);
        out.put_u64_le(n);
        out.put_u64_le(m);
        out.extend(std::iter::repeat_n(0u8, body_bytes));
        out
    }

    #[test]
    fn binary_rejects_counts_larger_than_the_body() {
        // Counts drive allocations: a corrupt header declaring billions
        // of vertices/edges over a tiny body must fail cleanly *before*
        // any allocation is sized from it.
        for (n, m) in [
            (1u64 << 32, 0u64),     // vertex count beyond u32 ids
            (u64::MAX, u64::MAX),   // would overflow naive size math
            (10, u64::MAX / 4),     // edge bytes overflow
            (1_000_000, 1_000_000), // plausible counts, missing body
        ] {
            let err = read_binary(&forged_header(0, n, m, 64)[..]).unwrap_err();
            assert!(matches!(err, GraphError::Corrupt(_)), "n={n} m={m}: {err}");
        }
    }

    #[test]
    fn binary_rejects_unknown_flags() {
        let err = read_binary(&forged_header(0xfe, 1, 0, 64)[..]).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "{err}");
        assert!(err.to_string().contains("flag"), "{err}");
    }

    #[test]
    fn binary_rejects_non_monotonic_offsets() {
        let mut out = Vec::new();
        out.put_slice(MAGIC);
        out.put_u8(0);
        out.put_u64_le(2); // 2 vertices
        out.put_u64_le(2); // 2 edges
        out.put_u64_le(0);
        out.put_u64_le(9); // offset beyond the edge count...
        out.put_u64_le(2);
        out.put_u32_le(0);
        out.put_u32_le(1);
        let err = read_binary(&out[..]).unwrap_err();
        assert!(matches!(err, GraphError::Corrupt(_)), "{err}");
    }

    #[test]
    fn binary_rejects_out_of_range_targets() {
        // Hand-craft: 1 vertex, 1 edge pointing at vertex 5.
        let mut out = Vec::new();
        out.put_slice(MAGIC);
        out.put_u8(0);
        out.put_u64_le(1);
        out.put_u64_le(1);
        out.put_u64_le(0);
        out.put_u64_le(1);
        out.put_u32_le(5);
        let err = read_binary(&out[..]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::VertexOutOfRange { vertex: 5, .. }
        ));
    }
}
