//! Graph statistics: degree distributions, CDFs, clustering, reciprocity.
//!
//! These drive the paper's Figure 6a–c (out-degree CDFs of orkut,
//! livejournal and twitter-rv) and the sanity checks on the synthetic
//! dataset emulators.

use std::collections::BTreeMap;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{CsrGraph, Direction, VertexId};

/// Summary statistics of a degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeSummary {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub p50: usize,
    /// 90th-percentile degree.
    pub p90: usize,
    /// 99th-percentile degree.
    pub p99: usize,
}

/// Computes the degree summary in the given direction.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn degree_summary(graph: &CsrGraph, dir: Direction) -> DegreeSummary {
    assert!(graph.num_vertices() > 0, "degree summary of empty graph");
    let mut degrees: Vec<usize> = graph.vertices().map(|u| graph.degree(u, dir)).collect();
    degrees.sort_unstable();
    let n = degrees.len();
    let pct = |p: f64| degrees[(((n - 1) as f64) * p).round() as usize];
    DegreeSummary {
        min: degrees[0],
        max: degrees[n - 1],
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        p50: pct(0.50),
        p90: pct(0.90),
        p99: pct(0.99),
    }
}

/// Histogram of degrees: `degree -> number of vertices with that degree`.
pub fn degree_histogram(graph: &CsrGraph, dir: Direction) -> BTreeMap<usize, usize> {
    let mut hist = BTreeMap::new();
    for u in graph.vertices() {
        *hist.entry(graph.degree(u, dir)).or_insert(0) += 1;
    }
    hist
}

/// Empirical CDF of the degree distribution as `(degree, P[deg <= degree])`
/// points, one per distinct degree, in increasing degree order.
///
/// This is exactly the curve plotted in the paper's Figure 6a–c.
pub fn degree_cdf(graph: &CsrGraph, dir: Direction) -> Vec<(usize, f64)> {
    let hist = degree_histogram(graph, dir);
    let n = graph.num_vertices() as f64;
    let mut acc = 0usize;
    hist.into_iter()
        .map(|(d, c)| {
            acc += c;
            (d, acc as f64 / n)
        })
        .collect()
}

/// Fraction of vertices whose degree is `<= threshold`; i.e. the CDF
/// evaluated at `threshold`. Used for the paper's §5.5 observation that
/// `thrΓ = 80` already covers >= 80% of the vertices of all three datasets.
pub fn degree_coverage(graph: &CsrGraph, dir: Direction, threshold: usize) -> f64 {
    if graph.num_vertices() == 0 {
        return 1.0;
    }
    let covered = graph
        .vertices()
        .filter(|&u| graph.degree(u, dir) <= threshold)
        .count();
    covered as f64 / graph.num_vertices() as f64
}

/// Estimates the mean local clustering coefficient by sampling `samples`
/// vertices with degree >= 2 (treating edges as undirected via out-adjacency).
///
/// Returns `0.0` for graphs with no such vertex.
pub fn clustering_coefficient<R: Rng>(graph: &CsrGraph, samples: usize, rng: &mut R) -> f64 {
    let candidates: Vec<VertexId> = graph
        .vertices()
        .filter(|&u| graph.out_degree(u) >= 2)
        .collect();
    if candidates.is_empty() {
        return 0.0;
    }
    let picked: Vec<VertexId> = if candidates.len() <= samples {
        candidates
    } else {
        candidates.choose_multiple(rng, samples).copied().collect()
    };
    let mut total = 0.0;
    for &u in &picked {
        let nbrs = graph.out_neighbors(u);
        let d = nbrs.len();
        let mut closed = 0usize;
        for (i, &a) in nbrs.iter().enumerate() {
            for &b in &nbrs[i + 1..] {
                if graph.has_edge(a, b) || graph.has_edge(b, a) {
                    closed += 1;
                }
            }
        }
        total += closed as f64 / (d * (d - 1) / 2) as f64;
    }
    total / picked.len() as f64
}

/// Exact triangle count over the undirected view of the graph (each
/// unordered vertex triple counted once), by rank-ordered neighbor-list
/// intersection.
pub fn triangle_count(graph: &CsrGraph) -> u64 {
    // Undirected neighbor sets, deduplicated, restricted to higher ids so
    // each triangle is counted exactly once at its smallest vertex.
    let n = graph.num_vertices();
    let mut und: Vec<Vec<VertexId>> = Vec::with_capacity(n);
    for u in graph.vertices() {
        let mut ns: Vec<VertexId> = graph
            .out_neighbors(u)
            .iter()
            .chain(graph.in_neighbors(u))
            .copied()
            .filter(|&v| v > u)
            .collect();
        ns.sort_unstable();
        ns.dedup();
        und.push(ns);
    }
    let mut triangles = 0u64;
    for u in 0..n {
        let nu = &und[u];
        for (i, &v) in nu.iter().enumerate() {
            let nv = &und[v.index()];
            // |{w > v} ∩ nu ∩ nv| via sorted merge over the tails.
            let (mut a, mut b) = (i + 1, 0);
            while a < nu.len() && b < nv.len() {
                match nu[a].cmp(&nv[b]) {
                    std::cmp::Ordering::Less => a += 1,
                    std::cmp::Ordering::Greater => b += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    triangles
}

/// Exact global clustering coefficient (transitivity):
/// `3·triangles / open-and-closed wedge count` over the undirected view.
pub fn transitivity(graph: &CsrGraph) -> f64 {
    let triangles = triangle_count(graph);
    let mut wedges = 0u64;
    for u in graph.vertices() {
        let mut ns: Vec<VertexId> = graph
            .out_neighbors(u)
            .iter()
            .chain(graph.in_neighbors(u))
            .copied()
            .collect();
        ns.sort_unstable();
        ns.dedup();
        let d = ns.len() as u64;
        wedges += d * d.saturating_sub(1) / 2;
    }
    if wedges == 0 {
        0.0
    } else {
        3.0 * triangles as f64 / wedges as f64
    }
}

/// Fraction of directed edges `(u, v)` whose reverse `(v, u)` also exists.
pub fn reciprocity(graph: &CsrGraph) -> f64 {
    if graph.num_edges() == 0 {
        return 0.0;
    }
    let mut reciprocal = 0usize;
    for (u, v) in graph.edges() {
        if graph.has_edge(v, u) {
            reciprocal += 1;
        }
    }
    reciprocal as f64 / graph.num_edges() as f64
}

/// One-line structural summary of a graph, convenient for logs and tables.
#[derive(Clone, Debug)]
pub struct GraphSummary {
    /// Vertex count.
    pub vertices: usize,
    /// Directed edge count.
    pub edges: usize,
    /// Out-degree summary.
    pub out_degree: DegreeSummary,
    /// Estimated mean local clustering coefficient.
    pub clustering: f64,
    /// Fraction of reciprocated edges.
    pub reciprocity: f64,
}

impl GraphSummary {
    /// Computes the summary, sampling `clustering_samples` vertices for the
    /// clustering estimate.
    pub fn compute<R: Rng>(graph: &CsrGraph, clustering_samples: usize, rng: &mut R) -> Self {
        GraphSummary {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            out_degree: degree_summary(graph, Direction::Out),
            clustering: clustering_coefficient(graph, clustering_samples, rng),
            reciprocity: reciprocity(graph),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn triangle_plus_tail() -> CsrGraph {
        // triangle 0-1-2 (symmetric) plus a one-way tail 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn summary_of_triangle_tail() {
        let g = triangle_plus_tail();
        let s = degree_summary(&g, Direction::Out);
        assert_eq!(s.min, 0); // vertex 3
        assert_eq!(s.max, 3); // vertex 2
        assert!((s.mean - 7.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_every_vertex() {
        let g = triangle_plus_tail();
        let h = degree_histogram(&g, Direction::Out);
        assert_eq!(h.values().sum::<usize>(), g.num_vertices());
        assert_eq!(h[&0], 1);
        assert_eq!(h[&2], 2);
        assert_eq!(h[&3], 1);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let g = triangle_plus_tail();
        let cdf = degree_cdf(&g, Direction::Out);
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1 && w[0].0 < w[1].0));
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn coverage_matches_cdf() {
        let g = triangle_plus_tail();
        assert!((degree_coverage(&g, Direction::Out, 2) - 0.75).abs() < 1e-12);
        assert_eq!(degree_coverage(&g, Direction::Out, 100), 1.0);
        // Only the tail vertex has out-degree 0.
        assert!((degree_coverage(&g, Direction::Out, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_full_triangle_is_one_at_its_corners() {
        let mut b = crate::GraphBuilder::new();
        b.symmetrize(true);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(0, 2);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let c = clustering_coefficient(&g, 10, &mut rng);
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clustering_of_star_is_zero() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(clustering_coefficient(&g, 10, &mut rng), 0.0);
    }

    #[test]
    fn triangle_count_on_known_shapes() {
        // One triangle, symmetric.
        let tri = CsrGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)]);
        assert_eq!(triangle_count(&tri), 1);
        assert!((transitivity(&tri) - 1.0).abs() < 1e-12);

        // Direction must not matter: a directed 3-cycle is one triangle.
        let cycle = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(triangle_count(&cycle), 1);

        // K4 has 4 triangles.
        let mut edges = Vec::new();
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    edges.push((a, b));
                }
            }
        }
        let k4 = CsrGraph::from_edges(4, &edges);
        assert_eq!(triangle_count(&k4), 4);
        assert!((transitivity(&k4) - 1.0).abs() < 1e-12);

        // Star has zero triangles and zero transitivity.
        let star = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(triangle_count(&star), 0);
        assert_eq!(transitivity(&star), 0.0);
    }

    #[test]
    fn reciprocity_bounds() {
        let g = triangle_plus_tail();
        // 6 of 7 edges are reciprocated (2->3 is not).
        assert!((reciprocity(&g) - 6.0 / 7.0).abs() < 1e-12);
        let directed = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(reciprocity(&directed), 0.0);
        let empty = CsrGraph::from_edges(2, &[]);
        assert_eq!(reciprocity(&empty), 0.0);
    }

    #[test]
    fn graph_summary_is_consistent() {
        let g = triangle_plus_tail();
        let mut rng = StdRng::seed_from_u64(7);
        let s = GraphSummary::compute(&g, 100, &mut rng);
        assert_eq!(s.vertices, 4);
        assert_eq!(s.edges, 7);
        assert!(s.clustering > 0.0);
    }
}
