//! The storage-backend abstraction: one adjacency interface over every
//! way this crate can hold a graph.
//!
//! The GAS engine and the serving layers upstream used to be welded to an
//! owned, in-RAM [`CsrGraph`]. At the paper's headline scale (a billion
//! edges and beyond) that is the binding constraint: the graph must be
//! *opened*, not parsed, and sometimes must not be fully resident at all.
//! [`GraphStore`] is the seam that makes the engine indifferent:
//!
//! * [`CsrGraph`] — everything in RAM, the fastest backend and the only
//!   one that can absorb [`GraphDelta`](crate::GraphDelta)s directly;
//! * [`FileCsr`](crate::v2::FileCsr) — a zero-parse file-backed view of a
//!   [`SNPLG2`](crate::v2) file: opening reads only the header and
//!   section table, adjacency sections fault in lazily on first touch;
//! * [`CompressedGraph`](crate::compress::CompressedGraph) — opt-in
//!   delta-varint compressed adjacency, decoded block-by-block on
//!   demand.
//!
//! The trait is object-safe on purpose: deployments and requests carry
//! `&dyn GraphStore` (or `Arc<dyn GraphStore>`), so a single prepared
//! serving stack handles any backend. Prediction results are pinned
//! bit-identical across backends by the `dataplane` property suite.
//!
//! Iterator-shaped access ([`vertices`], [`edges`]) lives in free
//! functions because returning `impl Iterator` would break object
//! safety.

use std::sync::Arc;

use crate::csr::Direction;
use crate::{CsrGraph, GraphError, VertexId};

/// Read access to a directed graph in CSR discipline: sorted,
/// duplicate-free neighbor lists in both directions.
///
/// Implementations must be cheap to share across threads — the engine
/// gathers from many worker threads against one `&dyn GraphStore`.
/// Accessors never panic; a backend that discovers corruption after
/// construction (e.g. a lazily loaded section failing its checksum)
/// serves empty lists and surfaces the fault through
/// [`GraphStore::hydrate`].
pub trait GraphStore: Send + Sync + std::fmt::Debug {
    /// Number of vertices (ids are `0..num_vertices`).
    fn num_vertices(&self) -> usize;

    /// Number of directed edges.
    fn num_edges(&self) -> usize;

    /// Whether the graph carries per-edge weights.
    fn is_weighted(&self) -> bool;

    /// Out-degree `|Γ(u)|`; `0` for out-of-range ids.
    fn out_degree(&self, u: VertexId) -> usize;

    /// In-degree `|Γ⁻¹(u)|`; `0` for out-of-range ids.
    fn in_degree(&self, u: VertexId) -> usize;

    /// Sorted out-neighbor list `Γ(u)`; empty for out-of-range ids.
    fn out_neighbors(&self, u: VertexId) -> &[VertexId];

    /// Sorted in-neighbor list `Γ⁻¹(u)`; empty for out-of-range ids.
    fn in_neighbors(&self, u: VertexId) -> &[VertexId];

    /// Weights parallel to [`GraphStore::out_neighbors`], if weighted.
    fn out_weights(&self, u: VertexId) -> Option<&[f32]>;

    /// A short static name for diagnostics and bench labels
    /// (`"csr"`, `"file-csr"`, `"varint"`).
    fn backend_name(&self) -> &'static str;

    /// Total bytes of the backend's storage (resident or on disk) — the
    /// same accounting [`CsrGraph::storage_bytes`] reports for RAM.
    fn storage_bytes(&self) -> u64;

    /// Forces every lazily loaded structure resident and surfaces any
    /// deferred I/O or checksum failure as a typed error.
    ///
    /// Serving layers call this once before entering panic-free zones so
    /// the infallible accessors above never have to hide a fault behind
    /// an empty list mid-superstep. In-RAM backends return `Ok(())`.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] / [`GraphError::Corrupt`] from the deferred
    /// load.
    fn hydrate(&self) -> Result<(), GraphError> {
        Ok(())
    }

    /// Materializes the graph as an owned in-RAM [`CsrGraph`] — the form
    /// deltas compact against.
    fn to_csr(&self) -> CsrGraph;

    /// A cheaply clonable shared handle to this backend (`Arc`-backed
    /// where the backend supports it, a materialized copy otherwise) —
    /// what [`detach`](GraphStore::clone_shared)-style epoch forks hold.
    fn clone_shared(&self) -> Arc<dyn GraphStore>;

    /// The concrete in-RAM graph, if this backend *is* one — lets
    /// delta compaction and bulk serializers skip the accessor loop.
    fn as_csr(&self) -> Option<&CsrGraph> {
        None
    }

    /// Degree in the requested direction.
    fn degree(&self, u: VertexId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.out_degree(u),
            Direction::In => self.in_degree(u),
        }
    }

    /// Neighbor list in the requested direction.
    fn neighbors(&self, u: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Out => self.out_neighbors(u),
            Direction::In => self.in_neighbors(u),
        }
    }

    /// Whether the directed edge `(u, v)` exists. O(log out-degree).
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Weight of edge `(u, v)`; `1.0` for unweighted graphs, `None` if
    /// the edge does not exist.
    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        let pos = self.out_neighbors(u).binary_search(&v).ok()?;
        Some(match self.out_weights(u) {
            Some(ws) => ws.get(pos).copied().unwrap_or(1.0),
            None => 1.0,
        })
    }

    /// Average out-degree `|E| / |V|`.
    fn mean_out_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices() as f64
        }
    }
}

impl GraphStore for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn is_weighted(&self) -> bool {
        CsrGraph::is_weighted(self)
    }

    fn out_degree(&self, u: VertexId) -> usize {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::out_degree(self, u)
        } else {
            0
        }
    }

    fn in_degree(&self, u: VertexId) -> usize {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::in_degree(self, u)
        } else {
            0
        }
    }

    fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::out_neighbors(self, u)
        } else {
            &[]
        }
    }

    fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::in_neighbors(self, u)
        } else {
            &[]
        }
    }

    fn out_weights(&self, u: VertexId) -> Option<&[f32]> {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::out_weights(self, u)
        } else {
            None
        }
    }

    fn backend_name(&self) -> &'static str {
        "csr"
    }

    fn storage_bytes(&self) -> u64 {
        CsrGraph::storage_bytes(self)
    }

    fn to_csr(&self) -> CsrGraph {
        self.clone()
    }

    fn clone_shared(&self) -> Arc<dyn GraphStore> {
        Arc::new(self.clone())
    }

    fn as_csr(&self) -> Option<&CsrGraph> {
        Some(self)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u.index() < CsrGraph::num_vertices(self) && CsrGraph::has_edge(self, u, v)
    }

    fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        if u.index() < CsrGraph::num_vertices(self) {
            CsrGraph::edge_weight(self, u, v)
        } else {
            None
        }
    }
}

/// Iterator over all vertex ids of a store — the object-safe stand-in
/// for [`CsrGraph::vertices`].
pub fn vertices(store: &dyn GraphStore) -> impl Iterator<Item = VertexId> + '_ {
    (0..store.num_vertices() as u32).map(VertexId::new)
}

/// Iterator over all directed edges of a store as `(source, target)`
/// pairs, in source-major sorted order — the object-safe stand-in for
/// [`CsrGraph::edges`].
pub fn edges(store: &dyn GraphStore) -> StoreEdges<'_> {
    StoreEdges {
        store,
        src: 0,
        pos: 0,
    }
}

/// Iterator over the edges of any [`GraphStore`]; see [`edges`].
#[derive(Debug)]
pub struct StoreEdges<'a> {
    store: &'a dyn GraphStore,
    src: u32,
    pos: usize,
}

impl Iterator for StoreEdges<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if (self.src as usize) >= self.store.num_vertices() {
                return None;
            }
            let u = VertexId::new(self.src);
            let nbrs = self.store.out_neighbors(u);
            if let Some(&v) = nbrs.get(self.pos) {
                self.pos += 1;
                return Some((u, v));
            }
            self.src += 1;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_store_view_matches_inherent_accessors() {
        let g = diamond();
        let s: &dyn GraphStore = &g;
        assert_eq!(s.num_vertices(), 4);
        assert_eq!(s.num_edges(), 4);
        assert!(!s.is_weighted());
        for u in vertices(s) {
            assert_eq!(s.out_neighbors(u), CsrGraph::out_neighbors(&g, u));
            assert_eq!(s.in_neighbors(u), CsrGraph::in_neighbors(&g, u));
            assert_eq!(s.out_degree(u), CsrGraph::out_degree(&g, u));
            assert_eq!(s.in_degree(u), CsrGraph::in_degree(&g, u));
        }
        assert!(s.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(!s.has_edge(VertexId::new(1), VertexId::new(0)));
        assert_eq!(s.edge_weight(VertexId::new(0), VertexId::new(1)), Some(1.0));
        assert_eq!(s.storage_bytes(), g.storage_bytes());
        assert_eq!(s.backend_name(), "csr");
        assert!(s.hydrate().is_ok());
        assert!(s.as_csr().is_some());
    }

    #[test]
    fn out_of_range_ids_are_empty_not_panics() {
        let g = diamond();
        let s: &dyn GraphStore = &g;
        let far = VertexId::new(99);
        assert_eq!(s.out_degree(far), 0);
        assert_eq!(s.in_degree(far), 0);
        assert!(s.out_neighbors(far).is_empty());
        assert!(s.in_neighbors(far).is_empty());
        assert!(s.out_weights(far).is_none());
        assert!(!s.has_edge(far, VertexId::new(0)));
        assert_eq!(s.edge_weight(far, VertexId::new(0)), None);
    }

    #[test]
    fn edges_helper_matches_csr_iterator() {
        let g = diamond();
        let via_store: Vec<_> = edges(&g).collect();
        let via_csr: Vec<_> = g.edges().collect();
        assert_eq!(via_store, via_csr);
    }

    #[test]
    fn clone_shared_is_an_independent_equal_graph() {
        let g = diamond();
        let shared = GraphStore::clone_shared(&g);
        assert_eq!(shared.num_edges(), 4);
        assert_eq!(shared.to_csr().num_edges(), g.num_edges());
    }

    #[test]
    fn weighted_edge_weight_through_the_trait() {
        let mut b = crate::GraphBuilder::new();
        b.add_weighted_edge(0, 1, 2.5);
        let g = b.build();
        let s: &dyn GraphStore = &g;
        assert_eq!(s.edge_weight(VertexId::new(0), VertexId::new(1)), Some(2.5));
        assert_eq!(s.out_weights(VertexId::new(0)), Some(&[2.5f32][..]));
    }
}
