//! Streaming graph mutation: batched edge deltas over an immutable CSR.
//!
//! SNAPLE's target workload is a *growing* social graph: the deployment
//! keeps serving "who to follow" requests while new follow edges arrive
//! and old ones are retracted. [`CsrGraph`] is deliberately immutable —
//! the GAS engine's partitions and masks index straight into its arrays —
//! so mutation is expressed as a *delta*:
//!
//! 1. collect insertions and removals into a [`GraphDelta`] (order
//!    matters only per edge: the last operation on a pair wins);
//! 2. [`GraphDelta::resolve`] the batch against a base graph into a
//!    [`DeltaOverlay`] — the *effective* changes, deduplicated,
//!    self-loop-free and grouped per source vertex, which composes with
//!    the base CSR as an overlay adjacency
//!    ([`DeltaOverlay::out_neighbors`]);
//! 3. [`CsrGraph::compact`] folds the overlay back into a fresh CSR —
//!    a linear merge per touched vertex, no global re-sort.
//!
//! Insertions may reference vertices beyond the base graph's range; the
//! overlay (and the compacted graph) grow to cover them, which is how a
//! stream of follow events introduces new users.
//!
//! ```
//! use snaple_graph::{CsrGraph, GraphDelta, VertexId};
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
//! let mut delta = GraphDelta::new();
//! delta.insert(0, 2).remove(1, 2).insert(2, 3); // grows to 4 vertices
//! let g2 = g.compact(&delta);
//! assert_eq!(g2.num_vertices(), 4);
//! assert!(g2.has_edge(VertexId::new(0), VertexId::new(2)));
//! assert!(!g2.has_edge(VertexId::new(1), VertexId::new(2)));
//! ```

use crate::store::GraphStore;
use crate::{CsrGraph, VertexId};

/// A batch of edge insertions and removals against a base [`CsrGraph`].
///
/// Operations are collected in arrival order; when the same `(u, v)` pair
/// appears more than once, the **last** operation wins (an insert followed
/// by a remove is a net no-op, and vice versa). Self-loops are dropped at
/// resolution time, mirroring [`GraphBuilder`](crate::GraphBuilder).
///
/// See the [module docs](self) for the full lifecycle.
#[derive(Clone, Debug, Default)]
pub struct GraphDelta {
    /// `(u, v, weight, is_insert)` in arrival order.
    ops: Vec<(u32, u32, f32, bool)>,
}

impl GraphDelta {
    /// Creates an empty delta.
    pub fn new() -> Self {
        GraphDelta::default()
    }

    /// Creates an empty delta with capacity for `ops` operations.
    pub fn with_capacity(ops: usize) -> Self {
        GraphDelta {
            ops: Vec::with_capacity(ops),
        }
    }

    /// Queues the insertion of edge `(u, v)` with weight `1.0`.
    ///
    /// Inserting an edge the base graph already holds is a no-op;
    /// endpoints beyond the base graph's vertex range grow the graph.
    pub fn insert(&mut self, u: u32, v: u32) -> &mut Self {
        self.ops.push((u, v, 1.0, true));
        self
    }

    /// Queues the insertion of edge `(u, v)` with an explicit weight.
    ///
    /// The weight only matters when the base graph is weighted; unweighted
    /// bases stay unweighted through [`CsrGraph::compact`].
    pub fn insert_weighted(&mut self, u: u32, v: u32, w: f32) -> &mut Self {
        self.ops.push((u, v, w, true));
        self
    }

    /// Queues the removal of edge `(u, v)`.
    ///
    /// Removing an edge the base graph does not hold is a no-op.
    pub fn remove(&mut self, u: u32, v: u32) -> &mut Self {
        self.ops.push((u, v, 0.0, false));
        self
    }

    /// Number of queued operations (before resolution).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates the queued operations as `(u, v, weight, is_insert)` in
    /// arrival order — the exact sequence a serializer must preserve for
    /// a decoded delta to resolve identically (last-wins dedup is order
    /// sensitive). Removals carry weight `0.0`.
    pub fn ops(&self) -> impl Iterator<Item = (u32, u32, f32, bool)> + '_ {
        self.ops.iter().copied()
    }

    /// Resolves the batch against `base` into its effective overlay:
    /// deduplicated (last operation per pair wins), self-loop-free, with
    /// no-op insertions (edge already present) and no-op removals (edge
    /// absent) dropped, grouped per source vertex.
    pub fn resolve(&self, base: &dyn GraphStore) -> DeltaOverlay {
        let n = base.num_vertices();
        // Last-wins dedup: sort by (u, v, arrival) and keep each pair's
        // final operation.
        let mut keyed: Vec<(u32, u32, usize)> = self
            .ops
            .iter()
            .enumerate()
            .filter(|(_, &(u, v, _, _))| u != v)
            .map(|(i, &(u, v, _, _))| (u, v, i))
            .collect();
        keyed.sort_unstable();

        let mut num_vertices = n;
        let mut entries: Vec<OverlayEntry> = Vec::new();
        let mut in_added: Vec<(VertexId, VertexId)> = Vec::new(); // (target, source)
        let mut in_removed: Vec<(VertexId, VertexId)> = Vec::new();
        let mut inserted = 0usize;
        let mut removed = 0usize;
        let mut i = 0;
        while i < keyed.len() {
            let (u, v, _) = keyed[i];
            let mut last = keyed[i].2;
            while i + 1 < keyed.len() && keyed[i + 1].0 == u && keyed[i + 1].1 == v {
                i += 1;
                last = keyed[i].2;
            }
            i += 1;
            let (_, _, w, is_insert) = self.ops[last];
            let exists = (u as usize) < n && base.has_edge(VertexId::new(u), VertexId::new(v));
            if is_insert == exists {
                continue; // inserting a present edge / removing an absent one
            }
            if entries.last().map(|e| e.source.as_u32()) != Some(u) {
                entries.push(OverlayEntry {
                    source: VertexId::new(u),
                    added: Vec::new(),
                    removed: Vec::new(),
                });
            }
            let entry = entries.last_mut().expect("just pushed");
            if is_insert {
                entry.added.push((VertexId::new(v), w));
                in_added.push((VertexId::new(v), VertexId::new(u)));
                inserted += 1;
                num_vertices = num_vertices.max(u as usize + 1).max(v as usize + 1);
            } else {
                entry.removed.push(VertexId::new(v));
                in_removed.push((VertexId::new(v), VertexId::new(u)));
                removed += 1;
            }
        }
        DeltaOverlay {
            num_vertices,
            entries,
            in_entries: group_by_target(in_added, in_removed),
            inserted,
            removed,
        }
    }
}

/// Per-source overlay entry: the effective additions and removals of one
/// source vertex, each sorted by target id.
#[derive(Clone, Debug)]
struct OverlayEntry {
    source: VertexId,
    added: Vec<(VertexId, f32)>,
    removed: Vec<VertexId>,
}

/// The in-direction mirror of [`OverlayEntry`]: per *target* vertex, the
/// sources gained and lost — what the compactor needs to patch the
/// reverse adjacency with a merge instead of a full re-scatter.
#[derive(Clone, Debug)]
struct InOverlayEntry {
    target: VertexId,
    added: Vec<VertexId>,
    removed: Vec<VertexId>,
}

/// Groups `(target, source)` pairs into sorted per-target entries: one
/// sort plus a linear grouping pass.
fn group_by_target(
    added: Vec<(VertexId, VertexId)>,
    removed: Vec<(VertexId, VertexId)>,
) -> Vec<InOverlayEntry> {
    let mut tagged: Vec<(VertexId, VertexId, bool)> = added
        .into_iter()
        .map(|(t, s)| (t, s, true))
        .chain(removed.into_iter().map(|(t, s)| (t, s, false)))
        .collect();
    tagged.sort_unstable_by_key(|&(t, s, _)| (t, s));
    let mut entries: Vec<InOverlayEntry> = Vec::new();
    for (t, s, is_add) in tagged {
        if entries.last().map(|e| e.target) != Some(t) {
            entries.push(InOverlayEntry {
                target: t,
                added: Vec::new(),
                removed: Vec::new(),
            });
        }
        let entry = entries.last_mut().expect("just pushed");
        if is_add {
            entry.added.push(s);
        } else {
            entry.removed.push(s);
        }
    }
    entries
}

/// The effective changes of a [`GraphDelta`] against one base graph: an
/// overlay adjacency that composes with the immutable CSR.
///
/// Produced by [`GraphDelta::resolve`]; consumed by [`CsrGraph::compact`]
/// and by the incremental partition repair in `snaple-gas`.
#[derive(Clone, Debug)]
pub struct DeltaOverlay {
    num_vertices: usize,
    /// Sorted by source id; each entry's `added`/`removed` sorted by
    /// target id.
    entries: Vec<OverlayEntry>,
    /// Sorted by target id; each entry's `added`/`removed` sorted by
    /// source id.
    in_entries: Vec<InOverlayEntry>,
    inserted: usize,
    removed: usize,
}

impl DeltaOverlay {
    /// Vertices of the mutated graph: the base range, grown to cover any
    /// inserted endpoint beyond it.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of effective edge insertions.
    pub fn num_inserted(&self) -> usize {
        self.inserted
    }

    /// Number of effective edge removals.
    pub fn num_removed(&self) -> usize {
        self.removed
    }

    /// Whether the overlay changes nothing (every queued operation was a
    /// no-op against the base).
    pub fn is_noop(&self) -> bool {
        self.inserted == 0 && self.removed == 0
    }

    /// Iterates the effective insertions as `(source, target, weight)`,
    /// in `(source, target)` order.
    pub fn inserted_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, f32)> + '_ {
        self.entries
            .iter()
            .flat_map(|e| e.added.iter().map(move |&(v, w)| (e.source, v, w)))
    }

    /// Iterates the effective removals as `(source, target)`, in
    /// `(source, target)` order.
    pub fn removed_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.entries
            .iter()
            .flat_map(|e| e.removed.iter().map(move |&v| (e.source, v)))
    }

    /// The composed out-neighborhood of `u`: the base adjacency with this
    /// overlay's removals dropped and additions merged in, sorted.
    ///
    /// This is the adjacency the compacted graph will materialize; it lets
    /// callers consult the mutated topology *before* paying for
    /// [`CsrGraph::compact`].
    pub fn out_neighbors(&self, base: &CsrGraph, u: VertexId) -> Vec<VertexId> {
        let base_nbrs: &[VertexId] = if u.index() < base.num_vertices() {
            base.out_neighbors(u)
        } else {
            &[]
        };
        let Some(entry) = self.entry_for(u) else {
            return base_nbrs.to_vec();
        };
        let mut out = Vec::with_capacity(base_nbrs.len() + entry.added.len());
        let mut add = entry.added.iter().peekable();
        for &v in base_nbrs {
            if entry.removed.binary_search(&v).is_ok() {
                continue;
            }
            while add.peek().is_some_and(|&&(a, _)| a < v) {
                out.push(add.next().expect("peeked").0);
            }
            out.push(v);
        }
        out.extend(add.map(|&(a, _)| a));
        out
    }

    fn entry_for(&self, u: VertexId) -> Option<&OverlayEntry> {
        self.entries
            .binary_search_by_key(&u, |e| e.source)
            .ok()
            .map(|i| &self.entries[i])
    }
}

impl CsrGraph {
    /// Folds a delta back into CSR form: a fresh graph holding the base
    /// adjacency with the delta's effective removals dropped and
    /// insertions merged in.
    ///
    /// The result is exactly the graph [`GraphBuilder`](crate::GraphBuilder)
    /// would produce from the mutated edge list: sorted neighbor lists, no
    /// duplicates, no self-loops, vertex range grown to cover inserted
    /// endpoints. Weighted bases stay weighted (insertions carry their
    /// [`GraphDelta::insert_weighted`] weight, `1.0` by default);
    /// unweighted bases stay unweighted.
    ///
    /// Cost is a linear merge — O(V + E) with small constants and no
    /// global re-sort — which is what makes a delta-then-compact refresh
    /// an order of magnitude cheaper than rebuilding from an edge list.
    pub fn compact(&self, delta: &GraphDelta) -> CsrGraph {
        self.compact_overlay(&delta.resolve(self))
    }

    /// [`CsrGraph::compact`] with the delta already resolved — lets
    /// callers that also need the overlay (e.g. the incremental partition
    /// repair) resolve once.
    ///
    /// # Panics
    ///
    /// Panics if `overlay` was resolved against a different graph (its
    /// vertex range must cover this graph's).
    pub fn compact_overlay(&self, overlay: &DeltaOverlay) -> CsrGraph {
        let n_old = self.num_vertices();
        let n = overlay.num_vertices();
        assert!(
            n >= n_old,
            "overlay ranges over {n} vertices but the base graph has {n_old}"
        );
        let weighted = self.is_weighted();

        // Out-adjacency: bulk-copy the CSR runs of untouched vertices and
        // merge only the touched ones — the whole pass is memcpy-bound
        // for small deltas.
        let (base_offsets, base_targets, base_weights) = self.out_csr();
        let mut out = SideBuilder::new(n, base_targets.len() + overlay.inserted, weighted);
        for entry in &overlay.entries {
            out.copy_until(
                entry.source.index(),
                n_old,
                base_offsets,
                base_targets,
                base_weights,
            );
            let u = entry.source.index();
            let (lo, hi) = if u < n_old {
                (base_offsets[u], base_offsets[u + 1])
            } else {
                (0, 0)
            };
            let mut add = entry.added.iter().peekable();
            let mut rem = entry.removed.iter().peekable();
            for i in lo..hi {
                let v = base_targets[i];
                while add.peek().is_some_and(|&&(a, _)| a < v) {
                    let &(a, w) = add.next().expect("peeked");
                    out.push(a, w);
                }
                while rem.peek().is_some_and(|&&r| r < v) {
                    rem.next();
                }
                if rem.peek() == Some(&&v) {
                    rem.next();
                    continue;
                }
                out.push(v, base_weights.map_or(1.0, |ws| ws[i]));
            }
            for &(a, w) in add {
                out.push(a, w);
            }
            out.seal_vertex();
        }
        out.copy_until(n, n_old, base_offsets, base_targets, base_weights);
        let (offsets, targets, weights) = out.finish();

        // In-adjacency by the same scheme: patch the reverse lists of the
        // targets the delta touches, bulk-copy everything else — no
        // re-scatter of all E edges.
        let (base_in_offsets, base_in_sources) = self.in_csr();
        let mut inn = SideBuilder::new(n, targets.len(), false);
        for entry in &overlay.in_entries {
            inn.copy_until(
                entry.target.index(),
                n_old,
                base_in_offsets,
                base_in_sources,
                None,
            );
            let v = entry.target.index();
            let (lo, hi) = if v < n_old {
                (base_in_offsets[v], base_in_offsets[v + 1])
            } else {
                (0, 0)
            };
            let mut add = entry.added.iter().peekable();
            let mut rem = entry.removed.iter().peekable();
            for &s in &base_in_sources[lo..hi] {
                while add.peek().is_some_and(|&&a| a < s) {
                    inn.push(*add.next().expect("peeked"), 1.0);
                }
                while rem.peek().is_some_and(|&&r| r < s) {
                    rem.next();
                }
                if rem.peek() == Some(&&s) {
                    rem.next();
                    continue;
                }
                inn.push(s, 1.0);
            }
            for &a in add {
                inn.push(a, 1.0);
            }
            inn.seal_vertex();
        }
        inn.copy_until(n, n_old, base_in_offsets, base_in_sources, None);
        let (in_offsets, in_sources, _) = inn.finish();

        CsrGraph::from_parts_with_reverse(
            n,
            offsets,
            targets,
            weighted.then_some(weights),
            in_offsets,
            in_sources,
        )
    }

    /// Consuming [`CsrGraph::compact`]: folds the delta into this
    /// graph's own arrays instead of building fresh copies.
    pub fn compact_owned(self, delta: &GraphDelta) -> CsrGraph {
        let overlay = delta.resolve(&self);
        self.compact_overlay_owned(&overlay)
    }

    /// Consuming [`CsrGraph::compact_overlay`]: the adjacency arrays are
    /// rebuilt **in place** by a two-phase merge (removals compacted
    /// left-to-right, then insertions merged right-to-left), so peak
    /// memory is the *final* graph plus O(vertices) for new offsets —
    /// not base + result simultaneously. At 100M edges that's the
    /// difference between a checkpoint/delta refresh fitting in memory
    /// or transiently doubling it. Produces exactly the graph
    /// [`CsrGraph::compact_overlay`] would.
    ///
    /// # Panics
    ///
    /// Panics if `overlay` was resolved against a different graph (its
    /// vertex range must cover this graph's).
    pub fn compact_overlay_owned(self, overlay: &DeltaOverlay) -> CsrGraph {
        let n_old = self.num_vertices();
        let n = overlay.num_vertices();
        assert!(
            n >= n_old,
            "overlay ranges over {n} vertices but the base graph has {n_old}"
        );
        let (_, out_offsets, mut out_targets, mut out_weights, in_offsets, mut in_sources) =
            self.into_parts();

        let out_touched: Vec<TouchedSide<'_>> = overlay
            .entries
            .iter()
            .map(|e| TouchedSide {
                vertex: e.source.index(),
                added_ids: e.added.iter().map(|&(v, _)| v).collect(),
                added_ws: e.added.iter().map(|&(_, w)| w).collect(),
                removed: &e.removed,
            })
            .collect();
        let new_out_offsets = rebuild_side_owned(
            n_old,
            n,
            &out_offsets,
            &mut out_targets,
            out_weights.as_mut(),
            &out_touched,
        );
        drop(out_offsets);

        let in_touched: Vec<TouchedSide<'_>> = overlay
            .in_entries
            .iter()
            .map(|e| TouchedSide {
                vertex: e.target.index(),
                added_ids: e.added.clone(),
                added_ws: Vec::new(),
                removed: &e.removed,
            })
            .collect();
        let new_in_offsets =
            rebuild_side_owned(n_old, n, &in_offsets, &mut in_sources, None, &in_touched);
        drop(in_offsets);

        CsrGraph::from_parts_with_reverse(
            n,
            new_out_offsets,
            out_targets,
            out_weights,
            new_in_offsets,
            in_sources,
        )
    }
}

/// One vertex's effective changes on one adjacency side, in the shape
/// the in-place rebuild consumes. `added_ws` is empty on unweighted
/// sides.
struct TouchedSide<'o> {
    vertex: usize,
    added_ids: Vec<VertexId>,
    added_ws: Vec<f32>,
    removed: &'o [VertexId],
}

/// Rebuilds one adjacency side in place and returns its new offsets.
///
/// Phase R drops removed items with a left-to-right compaction (writes
/// never pass reads: every write index ≤ its read index). Phase I then
/// resizes to the final length and merges additions right-to-left
/// (writes never clobber unread data: at vertex `u`, pending writes
/// below the write cursor always exceed pending reads by the additions
/// still owed at or before `u`, so the write cursor stays ≥ the read
/// cursor; bulk runs move with `copy_within`, which handles overlap).
/// Both phases are O(edges) with bulk `copy_within` for untouched runs.
fn rebuild_side_owned(
    n_old: usize,
    n: usize,
    base_offsets: &[usize],
    items: &mut Vec<VertexId>,
    mut weights: Option<&mut Vec<f32>>,
    touched: &[TouchedSide<'_>],
) -> Vec<usize> {
    // Degree bookkeeping: mid = base − removed, final = mid + added.
    let deg_of = |u: usize| {
        if u < n_old {
            base_offsets[u + 1] - base_offsets[u]
        } else {
            0
        }
    };

    // Phase R: left-to-right removal compaction.
    let mut write = 0usize;
    let mut read = 0usize;
    for t in touched {
        if t.removed.is_empty() {
            continue;
        }
        let u = t.vertex;
        debug_assert!(u < n_old, "effective removals only target base edges");
        let (lo, hi) = (base_offsets[u], base_offsets[u + 1]);
        if write != read {
            items.copy_within(read..lo, write);
            if let Some(ws) = weights.as_deref_mut() {
                ws.copy_within(read..lo, write);
            }
        }
        write += lo - read;
        let mut rem = t.removed.iter().peekable();
        for i in lo..hi {
            let v = items[i];
            while rem.peek().is_some_and(|&&r| r < v) {
                rem.next();
            }
            if rem.peek() == Some(&&v) {
                rem.next();
                continue;
            }
            items[write] = v;
            if let Some(ws) = weights.as_deref_mut() {
                ws[write] = ws[i];
            }
            write += 1;
        }
        read = hi;
    }
    let m_old = base_offsets.last().copied().unwrap_or(0);
    if write != read {
        items.copy_within(read..m_old, write);
        if let Some(ws) = weights.as_deref_mut() {
            ws.copy_within(read..m_old, write);
        }
    }
    write += m_old - read;
    items.truncate(write);
    if let Some(ws) = weights.as_deref_mut() {
        ws.truncate(write);
    }

    // Mid/final offsets from the degree deltas.
    let mut mid_offsets = Vec::with_capacity(n + 1);
    let mut fin_offsets = Vec::with_capacity(n + 1);
    {
        let mut ti = touched.iter().peekable();
        let mut mid = 0usize;
        let mut fin = 0usize;
        mid_offsets.push(0);
        fin_offsets.push(0);
        for u in 0..n {
            let mut d_mid = deg_of(u);
            let mut d_fin = d_mid;
            if ti.peek().is_some_and(|t| t.vertex == u) {
                let t = ti.next().expect("peeked");
                d_mid -= t.removed.len();
                d_fin = d_mid + t.added_ids.len();
            }
            mid += d_mid;
            fin += d_fin;
            mid_offsets.push(mid);
            fin_offsets.push(fin);
        }
    }
    let final_m = fin_offsets.last().copied().unwrap_or(0);
    debug_assert_eq!(mid_offsets.last().copied().unwrap_or(0), items.len());

    // Phase I: right-to-left insertion merge.
    items.resize(final_m, VertexId::new(0));
    if let Some(ws) = weights.as_deref_mut() {
        ws.resize(final_m, 0.0);
    }
    let mut hi_v = n; // exclusive top of the yet-unmoved suffix run
    for t in touched.iter().rev() {
        if t.added_ids.is_empty() {
            continue;
        }
        let u = t.vertex;
        // Untouched run (u, hi_v): one bulk move.
        let (src_lo, src_hi) = (mid_offsets[u + 1], mid_offsets[hi_v]);
        let dst = fin_offsets[u + 1];
        if src_lo != dst {
            items.copy_within(src_lo..src_hi, dst);
            if let Some(ws) = weights.as_deref_mut() {
                ws.copy_within(src_lo..src_hi, dst);
            }
        }
        // Vertex u: descending merge of its mid list with the additions.
        let mut w = fin_offsets[u + 1];
        let mut r = mid_offsets[u + 1];
        let r_lo = mid_offsets[u];
        let mut ai = t.added_ids.len();
        while ai > 0 || r > r_lo {
            let take_base = r > r_lo && (ai == 0 || items[r - 1] > t.added_ids[ai - 1]);
            w -= 1;
            if take_base {
                r -= 1;
                items[w] = items[r];
                if let Some(ws) = weights.as_deref_mut() {
                    ws[w] = ws[r];
                }
            } else {
                ai -= 1;
                items[w] = t.added_ids[ai];
                if let Some(ws) = weights.as_deref_mut() {
                    ws[w] = t.added_ws.get(ai).copied().unwrap_or(1.0);
                }
            }
        }
        debug_assert_eq!(w, fin_offsets[u]);
        hi_v = u;
    }
    // Leading run.
    let (src_lo, src_hi) = (mid_offsets[0], mid_offsets[hi_v]);
    let dst = fin_offsets[0];
    if src_lo != dst {
        items.copy_within(src_lo..src_hi, dst);
        if let Some(ws) = weights {
            ws.copy_within(src_lo..src_hi, dst);
        }
    }
    fin_offsets
}

/// Accumulates one adjacency side (offsets + item list + optional
/// weights) of a compacted graph, bulk-copying the untouched vertex runs
/// between overlay entries.
struct SideBuilder {
    offsets: Vec<usize>,
    items: Vec<VertexId>,
    weights: Vec<f32>,
    weighted: bool,
    /// Next vertex whose list has not been emitted yet.
    next: usize,
}

impl SideBuilder {
    fn new(n: usize, item_capacity: usize, weighted: bool) -> Self {
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        SideBuilder {
            offsets,
            items: Vec::with_capacity(item_capacity),
            weights: if weighted {
                Vec::with_capacity(item_capacity)
            } else {
                Vec::new()
            },
            weighted,
            next: 0,
        }
    }

    /// Emits the lists of every vertex in `[next, until)` straight from
    /// the base arrays: one slice copy for the whole run plus a shifted
    /// offset fill. Vertices at or beyond `n_old` (grown range) get empty
    /// lists.
    fn copy_until(
        &mut self,
        until: usize,
        n_old: usize,
        base_offsets: &[usize],
        base_items: &[VertexId],
        base_weights: Option<&[f32]>,
    ) {
        let run_end = until.min(n_old);
        if self.next < run_end {
            let lo = base_offsets[self.next];
            let hi = base_offsets[run_end];
            let shift = self.items.len() as i64 - lo as i64;
            self.items.extend_from_slice(&base_items[lo..hi]);
            if self.weighted {
                self.weights
                    .extend_from_slice(&base_weights.expect("weighted base")[lo..hi]);
            }
            self.offsets.extend(
                base_offsets[self.next + 1..=run_end]
                    .iter()
                    .map(|&o| (o as i64 + shift) as usize),
            );
            self.next = run_end;
        }
        // Grown vertices without overlay entries: empty lists.
        while self.next < until {
            self.offsets.push(self.items.len());
            self.next += 1;
        }
    }

    fn push(&mut self, item: VertexId, weight: f32) {
        self.items.push(item);
        if self.weighted {
            self.weights.push(weight);
        }
    }

    /// Closes the currently-merged (touched) vertex.
    fn seal_vertex(&mut self) {
        self.offsets.push(self.items.len());
        self.next += 1;
    }

    fn finish(self) -> (Vec<usize>, Vec<VertexId>, Vec<f32>) {
        (self.offsets, self.items, self.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn neighbors(g: &CsrGraph, u: u32) -> Vec<u32> {
        g.out_neighbors(v(u)).iter().map(|x| x.as_u32()).collect()
    }

    #[test]
    fn compact_applies_insertions_and_removals() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 2), (3, 0)]);
        let mut d = GraphDelta::new();
        d.insert(0, 3).remove(0, 2).insert(2, 0);
        let g2 = g.compact(&d);
        assert_eq!(g2.num_vertices(), 4);
        assert_eq!(neighbors(&g2, 0), vec![1, 3]);
        assert_eq!(neighbors(&g2, 2), vec![0]);
        assert_eq!(g2.num_edges(), g.num_edges() + 2 - 1);
    }

    #[test]
    fn compact_matches_a_ground_truth_rebuild() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 3)]);
        let mut d = GraphDelta::new();
        d.remove(0, 3).remove(4, 0).insert(1, 4).insert(0, 4);
        let incremental = g.compact(&d);
        let rebuilt = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4), (0, 4)]);
        assert_eq!(incremental.num_edges(), rebuilt.num_edges());
        for u in 0..5 {
            assert_eq!(neighbors(&incremental, u), neighbors(&rebuilt, u), "{u}");
        }
    }

    #[test]
    fn last_operation_per_pair_wins() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut d = GraphDelta::new();
        d.insert(0, 2).remove(0, 2); // net no-op on an absent edge
        d.remove(0, 1).insert(0, 1); // net no-op on a present edge
        let overlay = d.resolve(&g);
        assert!(overlay.is_noop());
        let g2 = g.compact(&d);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(neighbors(&g2, 0), vec![1]);
    }

    #[test]
    fn noop_operations_are_dropped_at_resolution() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut d = GraphDelta::new();
        d.insert(0, 1) // already present
            .remove(1, 2) // absent
            .insert(1, 1) // self-loop
            .insert(2, 0); // effective
        let overlay = d.resolve(&g);
        assert_eq!(overlay.num_inserted(), 1);
        assert_eq!(overlay.num_removed(), 0);
        assert_eq!(
            overlay.inserted_edges().collect::<Vec<_>>(),
            vec![(v(2), v(0), 1.0)]
        );
    }

    #[test]
    fn insertions_grow_the_vertex_range() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let mut d = GraphDelta::new();
        d.insert(1, 5).insert(6, 0);
        let g2 = g.compact(&d);
        assert_eq!(g2.num_vertices(), 7);
        assert_eq!(neighbors(&g2, 1), vec![5]);
        assert_eq!(neighbors(&g2, 6), vec![0]);
        assert!(g2.out_neighbors(v(4)).is_empty());
        // In-adjacency is rebuilt consistently for the new range.
        assert_eq!(g2.in_neighbors(v(5)), &[v(1)]);
    }

    #[test]
    fn overlay_adjacency_matches_the_compacted_graph() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 3), (0, 5), (1, 2), (2, 0), (4, 1)]);
        let mut d = GraphDelta::new();
        d.remove(0, 3)
            .insert(0, 2)
            .insert(0, 4)
            .remove(2, 0)
            .insert(7, 1);
        let overlay = d.resolve(&g);
        let compacted = g.compact(&d);
        assert_eq!(overlay.num_vertices(), compacted.num_vertices());
        for u in 0..overlay.num_vertices() as u32 {
            assert_eq!(
                overlay.out_neighbors(&g, v(u)),
                compacted.out_neighbors(v(u)),
                "vertex {u}"
            );
        }
    }

    #[test]
    fn weighted_bases_keep_and_gain_weights() {
        let mut b = GraphBuilder::new();
        b.add_weighted_edge(0, 1, 0.25).add_weighted_edge(1, 2, 4.0);
        let g = b.build();
        let mut d = GraphDelta::new();
        d.insert_weighted(0, 2, 0.5).insert(2, 0).remove(1, 2);
        let g2 = g.compact(&d);
        assert!(g2.is_weighted());
        assert_eq!(g2.edge_weight(v(0), v(1)), Some(0.25));
        assert_eq!(g2.edge_weight(v(0), v(2)), Some(0.5));
        assert_eq!(g2.edge_weight(v(2), v(0)), Some(1.0));
        assert_eq!(g2.edge_weight(v(1), v(2)), None);
    }

    #[test]
    fn unweighted_bases_stay_unweighted() {
        let g = CsrGraph::from_edges(3, &[(0, 1)]);
        let mut d = GraphDelta::new();
        d.insert_weighted(1, 2, 9.0);
        let g2 = g.compact(&d);
        assert!(!g2.is_weighted());
        assert_eq!(g2.edge_weight(v(1), v(2)), Some(1.0));
    }

    #[test]
    fn ops_iterator_round_trips_a_delta() {
        let mut d = GraphDelta::new();
        d.insert(0, 1).insert_weighted(2, 3, 0.5).remove(0, 1);
        let mut copy = GraphDelta::new();
        for (u, v, w, is_insert) in d.ops() {
            if is_insert {
                copy.insert_weighted(u, v, w);
            } else {
                copy.remove(u, v);
            }
        }
        assert_eq!(copy.len(), d.len());
        assert_eq!(d.ops().collect::<Vec<_>>(), copy.ops().collect::<Vec<_>>());
        // Arrival order is preserved: the remove still cancels the insert.
        let g = CsrGraph::from_edges(4, &[]);
        assert_eq!(copy.resolve(&g).num_inserted(), 1);
    }

    #[test]
    fn empty_delta_compacts_to_an_identical_graph() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3), (3, 0)]);
        let g2 = g.compact(&GraphDelta::new());
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        for u in 0..4 {
            assert_eq!(neighbors(&g2, u), neighbors(&g, u));
        }
        assert!(GraphDelta::new().is_empty());
        assert_eq!(GraphDelta::with_capacity(8).len(), 0);
    }

    #[test]
    fn owned_compact_matches_the_cloning_compact() {
        // The in-place two-phase merge must produce exactly what the
        // SideBuilder path produces, across removals, insertions, range
        // growth and weights.
        let mut rng = StdRng::seed_from_u64(23);
        for round in 0..30 {
            let n = rng.gen_range(1usize..30);
            let m = rng.gen_range(0usize..120);
            let weighted = rng.gen_bool(0.5);
            let mut b = GraphBuilder::new();
            b.reserve_vertices(n);
            for _ in 0..m {
                let (u, w) = (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32));
                if weighted {
                    b.add_weighted_edge(u, w, rng.gen_range(0..100) as f32 * 0.25);
                } else {
                    b.add_edge(u, w);
                }
            }
            let g = b.build();
            let mut d = GraphDelta::new();
            let grown = n as u32 + rng.gen_range(0u32..3);
            for _ in 0..rng.gen_range(1usize..25) {
                let (u, w) = (rng.gen_range(0..grown), rng.gen_range(0..grown));
                if rng.gen_bool(0.5) {
                    d.insert_weighted(u, w, rng.gen_range(0..100) as f32 * 0.5);
                } else {
                    d.remove(u, w);
                }
            }
            let overlay = d.resolve(&g);
            let cloning = g.compact_overlay(&overlay);
            let owned = g.compact_overlay_owned(&overlay);
            assert_eq!(
                owned.num_vertices(),
                cloning.num_vertices(),
                "round {round}"
            );
            assert_eq!(owned.num_edges(), cloning.num_edges(), "round {round}");
            assert_eq!(owned.is_weighted(), cloning.is_weighted());
            for u in 0..owned.num_vertices() as u32 {
                assert_eq!(
                    owned.out_neighbors(v(u)),
                    cloning.out_neighbors(v(u)),
                    "round {round}, out-list of {u}"
                );
                assert_eq!(
                    owned.in_neighbors(v(u)),
                    cloning.in_neighbors(v(u)),
                    "round {round}, in-list of {u}"
                );
                let a: Option<Vec<u32>> = owned
                    .out_weights(v(u))
                    .map(|ws| ws.iter().map(|w| w.to_bits()).collect());
                let b: Option<Vec<u32>> = cloning
                    .out_weights(v(u))
                    .map(|ws| ws.iter().map(|w| w.to_bits()).collect());
                assert_eq!(a, b, "round {round}, weights of {u}");
            }
        }
    }

    #[test]
    fn random_deltas_match_builder_rebuilds() {
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..20 {
            let n = rng.gen_range(2usize..40);
            let m = rng.gen_range(0usize..150);
            let mut edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)))
                .collect();
            edges.retain(|&(a, b)| a != b);
            edges.sort_unstable();
            edges.dedup();
            let g = CsrGraph::from_edges(n, &edges);

            // A random batch of insertions (possibly growing) and
            // removals (possibly of absent edges).
            let grown = n as u32 + rng.gen_range(0u32..4);
            let mut d = GraphDelta::new();
            let mut expected: Vec<(u32, u32)> = edges.clone();
            for _ in 0..rng.gen_range(1usize..30) {
                let u = rng.gen_range(0..grown);
                let w = rng.gen_range(0..grown);
                if rng.gen_bool(0.5) {
                    d.insert(u, w);
                    if u != w && !expected.contains(&(u, w)) {
                        expected.push((u, w));
                    }
                } else {
                    d.remove(u, w);
                    expected.retain(|&e| e != (u, w));
                }
            }
            let incremental = g.compact(&d);
            let max_id = expected
                .iter()
                .flat_map(|&(a, b)| [a, b])
                .max()
                .map_or(0, |x| x as usize + 1);
            let mut b = GraphBuilder::new();
            b.reserve_vertices(n.max(max_id));
            for &(u, w) in &expected {
                b.add_edge(u, w);
            }
            let rebuilt = b.build();
            assert_eq!(
                incremental.num_vertices(),
                rebuilt.num_vertices(),
                "round {round}"
            );
            for u in 0..incremental.num_vertices() as u32 {
                assert_eq!(
                    neighbors(&incremental, u),
                    neighbors(&rebuilt, u),
                    "round {round}, vertex {u}"
                );
                // The merge-patched reverse adjacency must match the
                // scatter-built one too.
                assert_eq!(
                    incremental.in_neighbors(v(u)),
                    rebuilt.in_neighbors(v(u)),
                    "round {round}, in-list of vertex {u}"
                );
            }
        }
    }
}
