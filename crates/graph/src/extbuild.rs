//! [`ExternalGraphBuilder`]: out-of-core graph construction.
//!
//! [`GraphBuilder`](crate::GraphBuilder) holds every added edge in RAM
//! until `build()` — a non-starter at the paper's billion-edge scale.
//! This builder accepts the same edge stream with the same semantics
//! (symmetrize, self-loop removal, first-occurrence-wins dedup) but
//! holds only a bounded chunk in memory: full chunks are stably sorted
//! and spilled to disk as sorted runs, and `build` k-way-merges the
//! runs **directly into a raw `SNPLG2` file** — the output never exists
//! as an in-RAM graph. Peak memory is `O(chunk + vertices)`, not
//! `O(edges)`.
//!
//! Equivalence with the in-RAM builder is exact, not approximate: the
//! in-RAM path is one stable sort over the insertion sequence with
//! first-wins dedup, and chunked stable sorts merged with the run index
//! as tie-break reproduce precisely that order. A property test pins
//! the two byte-identical.
//!
//! ```no_run
//! use snaple_graph::extbuild::ExternalGraphBuilder;
//!
//! let mut b = ExternalGraphBuilder::new();
//! b.symmetrize(true);
//! for (u, v) in [(0, 1), (1, 2)] {
//!     b.add_edge(u, v);
//! }
//! let stats = b.build(std::path::Path::new("/tmp/big.snplg"))?;
//! assert_eq!(stats.edges, 4);
//! # Ok::<(), snaple_graph::GraphError>(())
//! ```

use std::collections::BinaryHeap;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::codec::crc32;
use crate::v2::{
    Section, FLAG2_WEIGHTED, HEADER2_LEN, MAGIC2, SECTION_ENTRY_LEN, SEC_IN_OFFSETS,
    SEC_IN_SOURCES, SEC_OUT_OFFSETS, SEC_OUT_TARGETS, SEC_OUT_WEIGHTS, VERSION2,
};
use crate::GraphError;

/// Default in-RAM chunk size, in edges (~48 MiB of triples).
pub const DEFAULT_CHUNK_EDGES: usize = 4 * 1024 * 1024;

/// Summary of an out-of-core build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BuildStats {
    /// Vertices in the built graph.
    pub vertices: usize,
    /// Unique edges written (post dedup/self-loop removal).
    pub edges: usize,
    /// Edge records ingested (post symmetrize, pre dedup).
    pub records: u64,
    /// Sorted runs spilled to scratch space.
    pub runs: usize,
    /// Bytes of the final `SNPLG2` file.
    pub output_bytes: u64,
}

/// 12-byte little-endian triple: `u, v, weight bits`.
const TRIPLE: usize = 12;
/// 8-byte little-endian pair: `v, u` (pass-2 records).
const PAIR: usize = 8;

/// Sorted runs spilled to one append-only scratch file.
struct RunFile {
    path: PathBuf,
    writer: Option<BufWriter<File>>,
    /// Per-run `(byte_offset, record_count)`.
    runs: Vec<(u64, u64)>,
    written: u64,
}

impl RunFile {
    fn create(path: PathBuf) -> Result<RunFile, GraphError> {
        let file = File::create(&path)?;
        Ok(RunFile {
            path,
            writer: Some(BufWriter::new(file)),
            runs: Vec::new(),
            written: 0,
        })
    }

    fn spill(&mut self, records: &[u8], record_size: usize) -> Result<(), GraphError> {
        let count = (records.len() / record_size) as u64;
        if count == 0 {
            return Ok(());
        }
        if let Some(w) = self.writer.as_mut() {
            w.write_all(records)?;
        }
        self.runs.push((self.written, count));
        self.written += records.len() as u64;
        Ok(())
    }

    /// Flushes and reopens one buffered reader per run.
    fn open_readers(&mut self, record_size: usize) -> Result<Vec<RunReader>, GraphError> {
        if let Some(w) = self.writer.take() {
            w.into_inner()
                .map_err(|e| GraphError::Io(e.into_error()))?
                .sync_all()
                .ok();
        }
        let mut readers = Vec::with_capacity(self.runs.len());
        for &(offset, count) in &self.runs {
            let mut f = File::open(&self.path)?;
            f.seek(SeekFrom::Start(offset))?;
            readers.push(RunReader {
                reader: BufReader::with_capacity(1 << 20, f),
                remaining: count,
                record_size,
            });
        }
        Ok(readers)
    }
}

struct RunReader {
    reader: BufReader<File>,
    remaining: u64,
    record_size: usize,
}

impl RunReader {
    fn next(&mut self) -> Result<Option<[u8; TRIPLE]>, GraphError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut rec = [0u8; TRIPLE];
        self.reader
            .read_exact(&mut rec[..self.record_size])
            .map_err(GraphError::from)?;
        Ok(Some(rec))
    }
}

fn le32(rec: &[u8; TRIPLE], at: usize) -> u32 {
    u32::from_le_bytes([rec[at], rec[at + 1], rec[at + 2], rec[at + 3]])
}

/// A [`Write`] that tracks CRC-32 and length of everything written —
/// sections stream through one of these so the table can be patched in
/// afterwards without buffering payloads.
struct CrcWriter<W: Write> {
    inner: W,
    crc: u32,
    len: u64,
}

impl<W: Write> CrcWriter<W> {
    fn new(inner: W) -> Self {
        CrcWriter {
            inner,
            crc: 0,
            len: 0,
        }
    }

    fn reset(&mut self) {
        self.crc = 0;
        self.len = 0;
    }
}

impl<W: Write> Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc = crc32(self.crc, buf.get(..n).unwrap_or(&[]));
        self.len += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Out-of-core counterpart of [`GraphBuilder`](crate::GraphBuilder);
/// see the module docs.
pub struct ExternalGraphBuilder {
    chunk: Vec<u8>,
    chunk_capacity: usize,
    scratch_dir: Option<PathBuf>,
    runs: Option<RunFile>,
    weighted: bool,
    symmetrize: bool,
    keep_self_loops: bool,
    min_vertices: usize,
    records: u64,
}

impl std::fmt::Debug for ExternalGraphBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExternalGraphBuilder")
            .field("records", &self.records)
            .field("chunk_capacity", &self.chunk_capacity)
            .field("runs", &self.runs.as_ref().map_or(0, |r| r.runs.len()))
            .finish()
    }
}

impl Default for ExternalGraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExternalGraphBuilder {
    /// Creates a builder with the default chunk size, spilling runs to
    /// the system temp directory.
    pub fn new() -> Self {
        Self::with_chunk_edges(DEFAULT_CHUNK_EDGES)
    }

    /// Creates a builder spilling after `chunk_edges` buffered edge
    /// records (post-symmetrize). Small values are only useful to force
    /// multi-run merges in tests.
    pub fn with_chunk_edges(chunk_edges: usize) -> Self {
        ExternalGraphBuilder {
            chunk: Vec::new(),
            chunk_capacity: chunk_edges.max(2),
            scratch_dir: None,
            runs: None,
            weighted: false,
            symmetrize: false,
            keep_self_loops: false,
            min_vertices: 0,
            records: 0,
        }
    }

    /// Directs scratch runs to `dir` (default: the system temp dir).
    /// Scratch space peaks at roughly `12 bytes × edge records × 2`.
    pub fn scratch_dir(&mut self, dir: &Path) -> &mut Self {
        self.scratch_dir = Some(dir.to_path_buf());
        self
    }

    /// Ensures the built graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) -> &mut Self {
        self.min_vertices = self.min_vertices.max(n);
        self
    }

    /// If `true`, every added edge `(u, v)` also produces `(v, u)`.
    pub fn symmetrize(&mut self, yes: bool) -> &mut Self {
        self.symmetrize = yes;
        self
    }

    /// If `true`, self-loops survive into the built graph.
    pub fn keep_self_loops(&mut self, yes: bool) -> &mut Self {
        self.keep_self_loops = yes;
        self
    }

    /// Edge records ingested so far (post-symmetrize, pre-dedup).
    pub fn len(&self) -> u64 {
        self.records
    }

    /// Whether no edges have been added.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Adds a directed edge with weight `1.0`.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] if spilling a full chunk fails.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<(), GraphError> {
        self.push(u, v, 1.0f32.to_bits())
    }

    /// Adds a directed edge with an explicit weight. Once any weighted
    /// edge is added the built graph is weighted.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] if spilling a full chunk fails.
    pub fn add_weighted_edge(&mut self, u: u32, v: u32, w: f32) -> Result<(), GraphError> {
        self.weighted = true;
        self.push(u, v, w.to_bits())
    }

    fn push(&mut self, u: u32, v: u32, w: u32) -> Result<(), GraphError> {
        self.push_one(u, v, w)?;
        if self.symmetrize {
            self.push_one(v, u, w)?;
        }
        Ok(())
    }

    fn push_one(&mut self, u: u32, v: u32, w: u32) -> Result<(), GraphError> {
        // The in-RAM builder filters self-loops with a stable `retain`
        // before sorting; dropping them at ingestion is equivalent.
        if u == v && !self.keep_self_loops {
            self.records += 1;
            return Ok(());
        }
        self.chunk.extend_from_slice(&u.to_le_bytes());
        self.chunk.extend_from_slice(&v.to_le_bytes());
        self.chunk.extend_from_slice(&w.to_le_bytes());
        self.records += 1;
        if self.chunk.len() >= self.chunk_capacity * TRIPLE {
            self.spill_chunk()?;
        }
        Ok(())
    }

    fn scratch_file(&mut self, name: &str) -> Result<PathBuf, GraphError> {
        use std::sync::atomic::{AtomicU64, Ordering};
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        let dir = match &self.scratch_dir {
            Some(d) => d.clone(),
            None => std::env::temp_dir(),
        };
        std::fs::create_dir_all(&dir)?;
        let tag = UNIQUE.fetch_add(1, Ordering::Relaxed);
        Ok(dir.join(format!(
            "snaple-extbuild-{}-{tag}-{name}",
            std::process::id()
        )))
    }

    fn spill_chunk(&mut self) -> Result<(), GraphError> {
        if self.chunk.is_empty() {
            return Ok(());
        }
        if self.runs.is_none() {
            let path = self.scratch_file("runs1")?;
            self.runs = Some(RunFile::create(path)?);
        }
        sort_records(&mut self.chunk, TRIPLE, |rec| {
            (u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64) << 32
                | u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64
        });
        if let Some(runs) = self.runs.as_mut() {
            runs.spill(&self.chunk, TRIPLE)?;
        }
        self.chunk.clear();
        Ok(())
    }

    /// Consumes the builder, merging all runs into a raw `SNPLG2` file
    /// at `out`.
    ///
    /// Duplicated edges keep the weight of their first occurrence, in
    /// ingestion order — exactly the in-RAM builder's rule.
    ///
    /// # Errors
    ///
    /// [`GraphError::Io`] on filesystem failures.
    pub fn build(mut self, out: &Path) -> Result<BuildStats, GraphError> {
        self.spill_chunk()?;
        let mut runs = match self.runs.take() {
            Some(r) => r,
            None => RunFile::create(self.scratch_file("runs1")?)?,
        };
        let scratch1 = runs.path.clone();
        let pass2_path = self.scratch_file("runs2")?;
        let result = self.merge_to_file(&mut runs, &pass2_path, out);
        std::fs::remove_file(&scratch1).ok();
        std::fs::remove_file(&pass2_path).ok();
        result
    }

    fn merge_to_file(
        &mut self,
        runs: &mut RunFile,
        pass2_path: &Path,
        out: &Path,
    ) -> Result<BuildStats, GraphError> {
        let run_count = runs.runs.len();
        let mut readers = runs.open_readers(TRIPLE)?;

        let weighted = self.weighted;
        let section_count = if weighted { 5 } else { 4 };
        let prelude_len = HEADER2_LEN + section_count * SECTION_ENTRY_LEN;

        let out_file = File::create(out)?;
        let mut w = CrcWriter::new(BufWriter::with_capacity(1 << 20, out_file));
        // Placeholder prelude; patched after the payloads are placed.
        w.write_all(&vec![0u8; prelude_len])?;
        w.reset();

        let mut sections: Vec<Section> = Vec::with_capacity(section_count);
        let mut cursor = prelude_len as u64;
        let mut seal =
            |w: &mut CrcWriter<BufWriter<File>>, sections: &mut Vec<Section>, kind, elems| {
                sections.push(Section {
                    kind,
                    crc: w.crc,
                    offset: cursor,
                    byte_len: w.len,
                    elem_count: elems,
                });
                cursor += w.len;
                w.reset();
            };

        // Pass 1: k-way merge by (u, v, run). Targets stream straight
        // into the output; weights and reversed pairs go to scratch.
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32, usize, u32)>> = BinaryHeap::new();
        for (i, r) in readers.iter_mut().enumerate() {
            if let Some(rec) = r.next()? {
                heap.push(std::cmp::Reverse((
                    le32(&rec, 0),
                    le32(&rec, 4),
                    i,
                    le32(&rec, 8),
                )));
            }
        }
        let mut weights_file = if weighted {
            let p = self.scratch_file("weights")?;
            Some((CrcWriter::new(BufWriter::new(File::create(&p)?)), p))
        } else {
            None
        };
        let mut pass2 = RunFile::create(pass2_path.to_path_buf())?;
        let mut pass2_chunk: Vec<u8> = Vec::new();
        let pass2_cap = self.chunk_capacity * PAIR;

        let mut out_degrees: Vec<u64> = Vec::new();
        let mut m = 0usize;
        let mut max_vertex: Option<u32> = None;
        let mut last: Option<(u32, u32)> = None;
        while let Some(std::cmp::Reverse((u, v, run, wt))) = heap.pop() {
            if let Some(r) = readers.get_mut(run) {
                if let Some(rec) = r.next()? {
                    heap.push(std::cmp::Reverse((
                        le32(&rec, 0),
                        le32(&rec, 4),
                        run,
                        le32(&rec, 8),
                    )));
                }
            }
            if last == Some((u, v)) {
                continue; // duplicate: first occurrence already emitted
            }
            last = Some((u, v));
            if out_degrees.len() <= u as usize {
                out_degrees.resize(u as usize + 1, 0);
            }
            if let Some(d) = out_degrees.get_mut(u as usize) {
                *d += 1;
            }
            max_vertex = Some(max_vertex.map_or(u.max(v), |mv| mv.max(u).max(v)));
            m += 1;
            w.write_all(&v.to_le_bytes())?;
            if let Some((wf, _)) = weights_file.as_mut() {
                wf.write_all(&wt.to_le_bytes())?;
            }
            pass2_chunk.extend_from_slice(&v.to_le_bytes());
            pass2_chunk.extend_from_slice(&u.to_le_bytes());
            if pass2_chunk.len() >= pass2_cap {
                sort_records(&mut pass2_chunk, PAIR, |rec| {
                    (u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64) << 32
                        | u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64
                });
                pass2.spill(&pass2_chunk, PAIR)?;
                pass2_chunk.clear();
            }
        }
        seal(&mut w, &mut sections, SEC_OUT_TARGETS, m as u64);

        let n = max_vertex
            .map_or(0, |mv| mv as usize + 1)
            .max(self.min_vertices);

        // Weights, appended from scratch after the targets.
        if let Some((wf, path)) = weights_file.take() {
            let crc = wf.crc;
            let len = wf.len;
            wf.inner
                .into_inner()
                .map_err(|e| GraphError::Io(e.into_error()))?;
            let mut rf = File::open(&path)?;
            std::io::copy(&mut rf, &mut w)?;
            std::fs::remove_file(&path).ok();
            debug_assert_eq!((w.crc, w.len), (crc, len));
            seal(&mut w, &mut sections, SEC_OUT_WEIGHTS, m as u64);
        }

        // Pass 2: merge the reversed pairs by (v, u) into IN_SOURCES.
        if !pass2_chunk.is_empty() {
            sort_records(&mut pass2_chunk, PAIR, |rec| {
                (u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as u64) << 32
                    | u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as u64
            });
            pass2.spill(&pass2_chunk, PAIR)?;
            pass2_chunk.clear();
        }
        let mut readers2 = pass2.open_readers(PAIR)?;
        let mut heap2: BinaryHeap<std::cmp::Reverse<(u32, u32, usize)>> = BinaryHeap::new();
        for (i, r) in readers2.iter_mut().enumerate() {
            if let Some(rec) = r.next()? {
                heap2.push(std::cmp::Reverse((le32(&rec, 0), le32(&rec, 4), i)));
            }
        }
        let mut in_degrees: Vec<u64> = vec![0; n];
        while let Some(std::cmp::Reverse((v, u, run))) = heap2.pop() {
            if let Some(r) = readers2.get_mut(run) {
                if let Some(rec) = r.next()? {
                    heap2.push(std::cmp::Reverse((le32(&rec, 0), le32(&rec, 4), run)));
                }
            }
            if let Some(d) = in_degrees.get_mut(v as usize) {
                *d += 1;
            }
            w.write_all(&u.to_le_bytes())?;
        }
        seal(&mut w, &mut sections, SEC_IN_SOURCES, m as u64);

        // Offsets sections, derived from the degree counters.
        out_degrees.resize(n, 0);
        let mut total = 0u64;
        w.write_all(&0u64.to_le_bytes())?;
        for &d in &out_degrees {
            total += d;
            w.write_all(&total.to_le_bytes())?;
        }
        seal(&mut w, &mut sections, SEC_OUT_OFFSETS, n as u64 + 1);
        let mut total = 0u64;
        w.write_all(&0u64.to_le_bytes())?;
        for &d in &in_degrees {
            total += d;
            w.write_all(&total.to_le_bytes())?;
        }
        seal(&mut w, &mut sections, SEC_IN_OFFSETS, n as u64 + 1);

        // Patch in the real header + section table.
        let mut file = w
            .inner
            .into_inner()
            .map_err(|e| GraphError::Io(e.into_error()))?;
        let output_bytes = file.stream_position()?;
        file.seek(SeekFrom::Start(0))?;
        let mut head = Vec::with_capacity(prelude_len);
        head.extend_from_slice(MAGIC2);
        head.push(VERSION2);
        head.push(if weighted { FLAG2_WEIGHTED } else { 0 });
        head.extend_from_slice(&(n as u64).to_le_bytes());
        head.extend_from_slice(&(m as u64).to_le_bytes());
        head.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        for s in &sections {
            head.extend_from_slice(&s.kind.to_le_bytes());
            head.extend_from_slice(&s.crc.to_le_bytes());
            head.extend_from_slice(&s.offset.to_le_bytes());
            head.extend_from_slice(&s.byte_len.to_le_bytes());
            head.extend_from_slice(&s.elem_count.to_le_bytes());
        }
        file.write_all(&head)?;
        file.sync_all()?;

        Ok(BuildStats {
            vertices: n,
            edges: m,
            records: self.records,
            runs: run_count.max(1),
            output_bytes,
        })
    }
}

/// Stable in-place sort of fixed-size byte records by a `u64` key.
fn sort_records(bytes: &mut Vec<u8>, record_size: usize, key: impl Fn(&[u8]) -> u64) {
    let count = bytes.len() / record_size;
    let mut order: Vec<u32> = (0..count as u32).collect();
    order.sort_by_key(|&i| {
        bytes
            .get(i as usize * record_size..(i as usize + 1) * record_size)
            .map(&key)
            .unwrap_or(0)
    });
    let mut sorted = Vec::with_capacity(bytes.len());
    for &i in &order {
        if let Some(rec) = bytes.get(i as usize * record_size..(i as usize + 1) * record_size) {
            sorted.extend_from_slice(rec);
        }
    }
    *bytes = sorted;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{v2, CsrGraph, GraphBuilder};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("snpl-extbuild-test-{}-{name}", std::process::id()))
    }

    fn assert_matches_in_ram(
        edges: &[(u32, u32, f32)],
        weighted: bool,
        symmetrize: bool,
        keep_self_loops: bool,
        chunk: usize,
    ) {
        let mut ram = GraphBuilder::new();
        ram.symmetrize(symmetrize).keep_self_loops(keep_self_loops);
        let mut ext = ExternalGraphBuilder::with_chunk_edges(chunk);
        ext.symmetrize(symmetrize).keep_self_loops(keep_self_loops);
        for &(u, v, w) in edges {
            if weighted {
                ram.add_weighted_edge(u, v, w);
                ext.add_weighted_edge(u, v, w).expect("add");
            } else {
                ram.add_edge(u, v);
                ext.add_edge(u, v).expect("add");
            }
        }
        let expected = ram.build();
        let path = tmp(&format!("eq-{chunk}-{symmetrize}-{weighted}.snplg"));
        let stats = ext.build(&path).expect("build");
        assert_eq!(stats.edges, expected.num_edges());
        assert_eq!(stats.vertices, expected.num_vertices());
        let bytes = std::fs::read(&path).expect("read");
        let got = v2::decode_v2(&bytes).expect("decode");
        // The streaming layout orders sections differently (targets
        // stream out before n is known), so compare the graphs bit-for-
        // bit rather than the files byte-for-byte.
        assert_identical(&expected, &got);
        // And re-encoding the decoded graph is byte-stable.
        let mut reencoded = Vec::new();
        v2::write_v2(&got, &mut reencoded).expect("encode");
        let mut expected_bytes = Vec::new();
        v2::write_v2(&expected, &mut expected_bytes).expect("encode");
        assert_eq!(reencoded, expected_bytes, "canonical encodings diverge");
        std::fs::remove_file(&path).ok();
    }

    fn assert_identical(a: &CsrGraph, b: &CsrGraph) {
        assert_eq!(a.num_vertices(), b.num_vertices());
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(a.is_weighted(), b.is_weighted());
        for u in a.vertices() {
            assert_eq!(a.out_neighbors(u), b.out_neighbors(u), "{u} out");
            assert_eq!(a.in_neighbors(u), b.in_neighbors(u), "{u} in");
            let wa: Option<Vec<u32>> = a
                .out_weights(u)
                .map(|ws| ws.iter().map(|w| w.to_bits()).collect());
            let wb: Option<Vec<u32>> = b
                .out_weights(u)
                .map(|ws| ws.iter().map(|w| w.to_bits()).collect());
            assert_eq!(wa, wb, "{u} weights");
        }
    }

    #[test]
    fn single_run_matches_the_in_ram_builder() {
        assert_matches_in_ram(
            &[
                (0, 1, 1.0),
                (2, 1, 1.0),
                (0, 1, 1.0),
                (1, 1, 1.0),
                (3, 0, 1.0),
            ],
            false,
            false,
            false,
            1024,
        );
    }

    #[test]
    fn multi_run_merge_matches_the_in_ram_builder() {
        // chunk=2 forces a spill every two records: many runs.
        let edges: Vec<(u32, u32, f32)> = (0..200u32)
            .map(|i| {
                let u = (i * 37) % 50;
                let v = (i * 61 + 13) % 50;
                (u, v, (i % 7) as f32 * 0.5)
            })
            .collect();
        for symmetrize in [false, true] {
            for weighted in [false, true] {
                assert_matches_in_ram(&edges, weighted, symmetrize, false, 2);
            }
        }
    }

    #[test]
    fn first_occurrence_weight_wins_across_runs() {
        // Same edge in different chunks with different weights: the
        // in-RAM builder keeps the first; the merge tie-break must too.
        assert_matches_in_ram(
            &[
                (0, 1, 9.0),
                (5, 6, 1.0),
                (0, 1, 2.0),
                (0, 1, 3.0),
                (5, 6, 4.0),
            ],
            true,
            false,
            false,
            2,
        );
    }

    #[test]
    fn self_loops_and_reserve_follow_builder_semantics() {
        assert_matches_in_ram(&[(3, 3, 1.0), (0, 1, 1.0)], false, false, false, 2);
        assert_matches_in_ram(&[(3, 3, 1.0), (0, 1, 1.0)], false, false, true, 2);
        let mut ext = ExternalGraphBuilder::new();
        ext.reserve_vertices(9);
        ext.add_edge(0, 1).expect("add");
        let path = tmp("reserve.snplg");
        let stats = ext.build(&path).expect("build");
        assert_eq!(stats.vertices, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_builder_writes_an_openable_empty_graph() {
        let path = tmp("empty.snplg");
        let stats = ExternalGraphBuilder::new().build(&path).expect("build");
        assert_eq!(stats.edges, 0);
        let g = v2::decode_v2(&std::fs::read(&path).expect("read")).expect("decode");
        assert_eq!(g.num_vertices(), 0);
        let f = v2::FileCsr::open(&path).expect("open");
        assert!(crate::store::GraphStore::hydrate(&f).is_ok());
        std::fs::remove_file(&path).ok();
    }
}
