#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Graph substrate for the SNAPLE link-prediction framework.
//!
//! This crate provides everything the upper layers need to *hold* and
//! *produce* graphs:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row directed graph with
//!   both out- and in-adjacency, the storage format consumed by the GAS
//!   engine ([`snaple-gas`](https://example.org/snaple)).
//! * [`GraphStore`] — the storage-backend abstraction over adjacency
//!   access: [`CsrGraph`] (eager, in RAM), [`v2::FileCsr`] (lazy,
//!   file-backed, zero-parse) and [`compress::CompressedGraph`]
//!   (delta-varint, opt-in) all serve the same engine code.
//! * [`GraphBuilder`] — the mutable construction side: collect edges, then
//!   [`GraphBuilder::build`] a [`CsrGraph`] (deduplicated, sorted, optionally
//!   symmetrized).
//! * [`delta`] — streaming mutation: batched edge insertions/removals
//!   ([`GraphDelta`]) with an overlay adjacency that composes with the
//!   immutable CSR, folded back into CSR form by [`CsrGraph::compact`].
//! * [`io`] — text edge-list (SNAP style) and a compact binary codec.
//! * [`codec`] — the shared [`GraphDelta`] wire encoding (+ CRC-32),
//!   spoken identically by the shard protocol and the durability
//!   commitlog in the upper layers.
//! * [`stats`] — degree histograms/CDFs, clustering, reciprocity; used to
//!   regenerate the paper's Figure 6a–c.
//! * [`gen`] — seeded synthetic generators (Erdős–Rényi, Barabási–Albert,
//!   Holme–Kim, Watts–Strogatz) and [`gen::datasets`] emulating the five
//!   datasets of the paper's Table 4 at a configurable scale.
//! * [`mask`] — vertex-subset bitmasks ([`VertexMask`]), the substrate of
//!   targeted (query-subset) prediction in the upper layers.
//! * [`hash`] / [`sample`] — deterministic hashing and sampling utilities
//!   shared by the whole workspace (e.g. the probabilistic neighborhood
//!   truncation of SNAPLE's step 1).
//!
//! # Example
//!
//! ```
//! use snaple_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge(0, 1);
//! b.add_edge(1, 2);
//! b.add_edge(0, 2);
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 3);
//! assert_eq!(g.out_neighbors(VertexId::new(0)).len(), 2);
//! ```
//!
//! # Graphs bigger than RAM
//!
//! The paper's headline scale is a billion edges — graphs that cannot
//! be *built* in memory, and that a server should not have to *parse*
//! per run. Three pieces make that workflow:
//!
//! 1. **Build out of core.** [`extbuild::ExternalGraphBuilder`]
//!    chunk-sorts an edge stream of any length through bounded-memory
//!    runs on disk and merges it straight into a `SNPLG2` file, with
//!    the same dedup/symmetrize/self-loop semantics as the in-RAM
//!    [`GraphBuilder`]. [`gen::rmat`] streams synthetic RMAT/Kronecker
//!    edges into it without materializing the edge list. From the CLI:
//!    `snaple-cli graph gen --rmat-scale 25 --out big.snplg` and
//!    `snaple-cli graph convert --graph edges.txt --out big.snplg`.
//! 2. **Open without parsing.** `SNPLG2` ([`v2`]) stores the CSR
//!    arrays verbatim, both directions, each section checksummed.
//!    [`v2::FileCsr::open`] reads only the header and section table —
//!    open time is flat in the edge count — and faults sections in on
//!    first touch; [`io::open_store`] picks the right backend from the
//!    file magic. `--graph-format file` on `snaple predict`/`serve`
//!    selects it end to end.
//! 3. **Serve any backend.** The engine, partitioner and serving
//!    layers consume [`GraphStore`], so eager, file-backed and
//!    compressed ([`compress::CompressedGraph`], `--graph-format
//!    varint`) graphs produce bit-identical predictions — pinned by
//!    property tests.

pub mod algo;
pub mod builder;
pub mod codec;
pub mod compress;
pub mod csr;
pub mod delta;
pub mod error;
pub mod extbuild;
pub mod gen;
pub mod hash;
pub mod id;
pub mod io;
pub mod mask;
pub mod relabel;
pub mod sample;
pub mod stats;
pub mod store;
pub mod v2;

pub use builder::GraphBuilder;
pub use compress::CompressedGraph;
pub use csr::{CsrGraph, Direction};
pub use delta::{DeltaOverlay, GraphDelta};
pub use error::GraphError;
pub use extbuild::ExternalGraphBuilder;
pub use id::VertexId;
pub use mask::VertexMask;
pub use relabel::Relabeling;
pub use store::GraphStore;
pub use v2::FileCsr;
