//! Immutable compressed-sparse-row graph storage.

use crate::VertexId;

/// Direction of adjacency traversal.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// Follow edges from source to target (`Γ(u)` in the paper).
    Out,
    /// Follow edges from target to source (`Γ⁻¹(u)` in the paper).
    In,
}

/// An immutable directed graph in compressed-sparse-row form.
///
/// Both out-adjacency and in-adjacency are materialized so that GAS programs
/// can gather over either direction in O(degree). Neighbor lists are sorted
/// by vertex id and contain no duplicates or self-loops (the
/// [`GraphBuilder`](crate::GraphBuilder) enforces this), which lets
/// [`CsrGraph::has_edge`] run in O(log degree) and set intersections run as
/// linear merges.
///
/// # Example
///
/// ```
/// use snaple_graph::{CsrGraph, VertexId};
///
/// let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (2, 3)]);
/// assert_eq!(g.num_edges(), 3);
/// assert_eq!(g.out_degree(VertexId::new(0)), 2);
/// assert!(g.has_edge(VertexId::new(2), VertexId::new(3)));
/// assert!(!g.has_edge(VertexId::new(3), VertexId::new(2)));
/// ```
#[derive(Clone, Debug)]
pub struct CsrGraph {
    num_vertices: usize,
    out_offsets: Vec<usize>,
    out_targets: Vec<VertexId>,
    out_weights: Option<Vec<f32>>,
    in_offsets: Vec<usize>,
    in_sources: Vec<VertexId>,
}

/// Owned arrays of a decomposed [`CsrGraph`]:
/// `(n, out_offsets, out_targets, out_weights, in_offsets, in_sources)`.
pub(crate) type CsrParts = (
    usize,
    Vec<usize>,
    Vec<VertexId>,
    Option<Vec<f32>>,
    Vec<usize>,
    Vec<VertexId>,
);

impl CsrGraph {
    /// Builds a graph from raw, already validated CSR arrays.
    ///
    /// Intended for use by [`GraphBuilder`](crate::GraphBuilder) and the
    /// binary decoder; library users should prefer the builder.
    ///
    /// # Panics
    ///
    /// Panics if the offset arrays are inconsistent with the target arrays.
    pub(crate) fn from_parts(
        num_vertices: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        out_weights: Option<Vec<f32>>,
    ) -> Self {
        let (in_offsets, in_sources) = build_reverse(num_vertices, &out_offsets, &out_targets);
        CsrGraph::from_parts_with_reverse(
            num_vertices,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
        )
    }

    /// [`CsrGraph::from_parts`] with the reverse adjacency already built —
    /// used by the delta compactor, which patches the in-adjacency with a
    /// linear merge instead of re-scattering every edge.
    ///
    /// # Panics
    ///
    /// Panics if the offset arrays are inconsistent with the target arrays.
    pub(crate) fn from_parts_with_reverse(
        num_vertices: usize,
        out_offsets: Vec<usize>,
        out_targets: Vec<VertexId>,
        out_weights: Option<Vec<f32>>,
        in_offsets: Vec<usize>,
        in_sources: Vec<VertexId>,
    ) -> Self {
        assert_eq!(out_offsets.len(), num_vertices + 1);
        assert_eq!(*out_offsets.last().unwrap(), out_targets.len());
        if let Some(w) = &out_weights {
            assert_eq!(w.len(), out_targets.len());
        }
        assert_eq!(in_offsets.len(), num_vertices + 1);
        assert_eq!(*in_offsets.last().unwrap(), in_sources.len());
        assert_eq!(in_sources.len(), out_targets.len());
        CsrGraph {
            num_vertices,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
        }
    }

    /// Convenience constructor from `(source, target)` pairs.
    ///
    /// Duplicates and self-loops are removed. Pairs referencing vertices
    /// `>= num_vertices` panic; use [`GraphBuilder`](crate::GraphBuilder) for
    /// fallible construction.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn from_edges(num_vertices: usize, edges: &[(u32, u32)]) -> Self {
        let mut b = crate::GraphBuilder::with_capacity(edges.len());
        b.reserve_vertices(num_vertices);
        for &(u, v) in edges {
            assert!(
                (u as usize) < num_vertices && (v as usize) < num_vertices,
                "edge ({u}, {v}) out of range for {num_vertices} vertices"
            );
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices (ids are `0..num_vertices`).
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Whether the graph carries per-edge weights.
    #[inline]
    pub fn is_weighted(&self) -> bool {
        self.out_weights.is_some()
    }

    /// Out-degree `|Γ(u)|`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.out_offsets[u.index() + 1] - self.out_offsets[u.index()]
    }

    /// In-degree `|Γ⁻¹(u)|`.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.in_offsets[u.index() + 1] - self.in_offsets[u.index()]
    }

    /// Degree in the requested direction.
    #[inline]
    pub fn degree(&self, u: VertexId, dir: Direction) -> usize {
        match dir {
            Direction::Out => self.out_degree(u),
            Direction::In => self.in_degree(u),
        }
    }

    /// Sorted out-neighbor list `Γ(u)`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.out_targets[self.out_offsets[u.index()]..self.out_offsets[u.index() + 1]]
    }

    /// Sorted in-neighbor list `Γ⁻¹(u)`.
    #[inline]
    pub fn in_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.in_sources[self.in_offsets[u.index()]..self.in_offsets[u.index() + 1]]
    }

    /// Neighbor list in the requested direction.
    #[inline]
    pub fn neighbors(&self, u: VertexId, dir: Direction) -> &[VertexId] {
        match dir {
            Direction::Out => self.out_neighbors(u),
            Direction::In => self.in_neighbors(u),
        }
    }

    /// Weights parallel to [`CsrGraph::out_neighbors`], if the graph is
    /// weighted.
    #[inline]
    pub fn out_weights(&self, u: VertexId) -> Option<&[f32]> {
        self.out_weights
            .as_ref()
            .map(|w| &w[self.out_offsets[u.index()]..self.out_offsets[u.index() + 1]])
    }

    /// Weight of edge `(u, v)`; `1.0` for unweighted graphs, `None` if the
    /// edge does not exist.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        let nbrs = self.out_neighbors(u);
        let pos = nbrs.binary_search(&v).ok()?;
        Some(match &self.out_weights {
            Some(w) => w[self.out_offsets[u.index()] + pos],
            None => 1.0,
        })
    }

    /// Whether the directed edge `(u, v)` exists. O(log out-degree).
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.out_neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.num_vertices as u32).map(VertexId::new)
    }

    /// Iterator over all directed edges as `(source, target)` pairs, in
    /// source-major sorted order.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            src: 0,
            pos: 0,
        }
    }

    /// Global edge index of the `i`-th out-edge of `u` (used by partitioners
    /// to build per-edge tables).
    #[inline]
    pub fn edge_index(&self, u: VertexId, i: usize) -> usize {
        self.out_offsets[u.index()] + i
    }

    /// Raw out-CSR arrays `(offsets, targets, weights)` — for the delta
    /// compactor's bulk range copies.
    pub(crate) fn out_csr(&self) -> (&[usize], &[VertexId], Option<&[f32]>) {
        (
            &self.out_offsets,
            &self.out_targets,
            self.out_weights.as_deref(),
        )
    }

    /// Raw in-CSR arrays `(offsets, sources)`.
    pub(crate) fn in_csr(&self) -> (&[usize], &[VertexId]) {
        (&self.in_offsets, &self.in_sources)
    }

    /// Decomposes the graph into its owned arrays
    /// `(n, out_offsets, out_targets, out_weights, in_offsets, in_sources)`
    /// — for the consuming delta compactor, which rebuilds adjacency
    /// in place instead of cloning it.
    pub(crate) fn into_parts(self) -> CsrParts {
        (
            self.num_vertices,
            self.out_offsets,
            self.out_targets,
            self.out_weights,
            self.in_offsets,
            self.in_sources,
        )
    }

    /// Total bytes of the CSR arrays (used for memory accounting).
    pub fn storage_bytes(&self) -> u64 {
        let offsets = (self.out_offsets.len() + self.in_offsets.len()) * 8;
        let targets = (self.out_targets.len() + self.in_sources.len()) * 4;
        let weights = self.out_weights.as_ref().map_or(0, |w| w.len() * 4);
        (offsets + targets + weights) as u64
    }

    /// Average out-degree `|E| / |V|`.
    pub fn mean_out_degree(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.num_edges() as f64 / self.num_vertices as f64
        }
    }
}

/// Iterator over the edges of a [`CsrGraph`]; see [`CsrGraph::edges`].
#[derive(Debug)]
pub struct Edges<'a> {
    graph: &'a CsrGraph,
    src: u32,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (VertexId, VertexId);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if (self.src as usize) >= self.graph.num_vertices {
                return None;
            }
            let u = VertexId::new(self.src);
            let nbrs = self.graph.out_neighbors(u);
            if self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                return Some((u, v));
            }
            self.src += 1;
            self.pos = 0;
        }
    }
}

fn build_reverse(
    n: usize,
    out_offsets: &[usize],
    out_targets: &[VertexId],
) -> (Vec<usize>, Vec<VertexId>) {
    let mut counts = vec![0usize; n + 1];
    for t in out_targets {
        counts[t.index() + 1] += 1;
    }
    for i in 1..=n {
        counts[i] += counts[i - 1];
    }
    let in_offsets = counts.clone();
    let mut cursor = counts;
    let mut in_sources = vec![VertexId::default(); out_targets.len()];
    for u in 0..n {
        for t in &out_targets[out_offsets[u]..out_offsets[u + 1]] {
            // Sources arrive in increasing u, so each in-list ends up sorted.
            in_sources[cursor[t.index()]] = VertexId::new(u as u32);
            cursor[t.index()] += 1;
        }
    }
    (in_offsets, in_sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = diamond();
        assert_eq!(g.out_degree(VertexId::new(0)), 2);
        assert_eq!(g.in_degree(VertexId::new(0)), 0);
        assert_eq!(g.in_degree(VertexId::new(3)), 2);
        assert_eq!(
            g.out_neighbors(VertexId::new(0)),
            &[VertexId::new(1), VertexId::new(2)]
        );
        assert_eq!(
            g.in_neighbors(VertexId::new(3)),
            &[VertexId::new(1), VertexId::new(2)]
        );
    }

    #[test]
    fn direction_selector_matches_specific_accessors() {
        let g = diamond();
        let v = VertexId::new(3);
        assert_eq!(g.neighbors(v, Direction::In), g.in_neighbors(v));
        assert_eq!(g.neighbors(v, Direction::Out), g.out_neighbors(v));
        assert_eq!(g.degree(v, Direction::In), 2);
        assert_eq!(g.degree(v, Direction::Out), 0);
    }

    #[test]
    fn has_edge_respects_direction() {
        let g = diamond();
        assert!(g.has_edge(VertexId::new(0), VertexId::new(1)));
        assert!(!g.has_edge(VertexId::new(1), VertexId::new(0)));
    }

    #[test]
    fn edges_iterator_yields_sorted_pairs() {
        let g = diamond();
        let edges: Vec<_> = g.edges().map(|(u, v)| (u.as_u32(), v.as_u32())).collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn unweighted_edge_weight_defaults_to_one() {
        let g = diamond();
        assert_eq!(g.edge_weight(VertexId::new(0), VertexId::new(1)), Some(1.0));
        assert_eq!(g.edge_weight(VertexId::new(1), VertexId::new(0)), None);
        assert!(!g.is_weighted());
    }

    #[test]
    fn empty_graph_is_well_formed() {
        let g = CsrGraph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
        assert_eq!(g.mean_out_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices_have_empty_lists() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        assert!(g.out_neighbors(VertexId::new(3)).is_empty());
        assert!(g.in_neighbors(VertexId::new(3)).is_empty());
    }

    #[test]
    fn storage_bytes_counts_all_arrays() {
        let g = diamond();
        // 2*(n+1)*8 offset bytes + 2*m*4 target bytes
        assert_eq!(g.storage_bytes(), (2 * 5 * 8 + 2 * 4 * 4) as u64);
    }
}
