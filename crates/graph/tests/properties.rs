//! Property tests for the graph substrate: builder normalization, CSR/IO
//! round trips, and statistics consistency.

use proptest::prelude::*;

use snaple_graph::{io, stats, Direction, GraphBuilder, VertexId};

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..60, 0u32..60), 0..300)
}

proptest! {
    #[test]
    fn builder_output_is_sorted_deduped_loop_free(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        for u in g.vertices() {
            let nbrs = g.out_neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "unsorted or dup at {u}");
            prop_assert!(!nbrs.contains(&u), "self loop at {u}");
        }
        // Every non-loop input edge must be present.
        for (u, v) in edges {
            if u != v {
                prop_assert!(g.has_edge(VertexId::new(u), VertexId::new(v)));
            }
        }
    }

    #[test]
    fn out_and_in_adjacency_are_mutually_consistent(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        let mut out_pairs: Vec<(u32, u32)> = g
            .edges()
            .map(|(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        let mut in_pairs: Vec<(u32, u32)> = g
            .vertices()
            .flat_map(|v| {
                g.in_neighbors(v)
                    .iter()
                    .map(move |u| (u.as_u32(), v.as_u32()))
            })
            .collect();
        out_pairs.sort_unstable();
        in_pairs.sort_unstable();
        prop_assert_eq!(out_pairs, in_pairs);
        let total_out: usize = g.vertices().map(|u| g.out_degree(u)).sum();
        let total_in: usize = g.vertices().map(|u| g.in_degree(u)).sum();
        prop_assert_eq!(total_out, g.num_edges());
        prop_assert_eq!(total_in, g.num_edges());
    }

    #[test]
    fn symmetrize_produces_symmetric_graphs(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        b.symmetrize(true);
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        for (u, v) in g.edges() {
            prop_assert!(g.has_edge(v, u), "({u}, {v}) lacks its reverse");
        }
        if g.num_edges() > 0 {
            prop_assert!((stats::reciprocity(&g) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn binary_io_round_trips_arbitrary_graphs(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        let g2 = io::read_binary(&buf[..]).unwrap();
        prop_assert_eq!(g.num_vertices(), g2.num_vertices());
        for u in g.vertices() {
            prop_assert_eq!(g.out_neighbors(u), g2.out_neighbors(u));
        }
    }

    #[test]
    fn text_io_round_trips_arbitrary_graphs(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = io::read_edge_list(&buf[..], false).unwrap();
        prop_assert_eq!(g.num_edges(), g2.num_edges());
        for (u, v) in g.edges() {
            prop_assert!(g2.has_edge(u, v));
        }
    }

    #[test]
    fn degree_cdf_is_a_distribution(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        b.reserve_vertices(1);
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        let cdf = stats::degree_cdf(&g, Direction::Out);
        prop_assert!(!cdf.is_empty());
        prop_assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        // Coverage agrees with the CDF at each knot.
        for &(d, p) in &cdf {
            let c = stats::degree_coverage(&g, Direction::Out, d);
            prop_assert!((c - p).abs() < 1e-9, "coverage({d}) = {c} vs cdf {p}");
        }
    }

    #[test]
    fn truncated_corrupt_binary_never_panics(
        edges in edges_strategy(),
        cut in 0usize..4096,
        flip in 0usize..4096,
    ) {
        let mut b = GraphBuilder::new();
        for (u, v) in &edges {
            b.add_edge(*u, *v);
        }
        let g = b.build();
        let mut buf = Vec::new();
        io::write_binary(&g, &mut buf).unwrap();
        // Truncation: must error or produce a valid graph, never panic.
        let cut = cut.min(buf.len());
        let _ = io::read_binary(&buf[..cut]);
        // Bit flip: same.
        if !buf.is_empty() {
            let mut corrupted = buf.clone();
            let i = flip % corrupted.len();
            corrupted[i] ^= 0x5a;
            let _ = io::read_binary(&corrupted[..]);
        }
    }
}
