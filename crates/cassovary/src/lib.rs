#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Single-machine random-walk link prediction — the reproduction's stand-in
//! for **Cassovary**, Twitter's multithreaded in-memory graph library
//! (paper §5.9).
//!
//! The paper's strongest single-machine comparator approximates
//! personalized PageRank with bounded random walks: for every vertex `u` it
//! runs `w` walks of depth `d` (following uniformly random out-edges,
//! restarting at `u` on dead ends), counts visits, and predicts the `k`
//! most-visited vertices outside `Γ(u)`. Increasing `w` and `d` widens the
//! explored neighborhood exactly like SNAPLE's `klocal` does.
//!
//! The predictor executes for real (multithreaded over vertex shards) and
//! returns the shared [`snaple_core::Prediction`] type, with simulated time
//! derived from the same [`snaple_gas::CostModel`] as the distributed runs
//! — one work unit per walk hop — so Table 6 and Figure 11 compare like
//! with like.
//!
//! Random walks are sourced per vertex, which makes this backend the
//! natural fit for targeted prediction: with
//! [`PredictRequest::queries`](snaple_core::PredictRequest::queries) only
//! the queried vertices walk, and the hop budget shrinks proportionally.
//!
//! # Example
//!
//! ```
//! use snaple_cassovary::{RandomWalkConfig, RandomWalkPpr};
//! use snaple_core::{PredictRequest, Predictor};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
//! let machine = ClusterSpec::single_machine(20, 128 << 30);
//! let ppr = RandomWalkPpr::new(RandomWalkConfig::new().walks(50).depth(3));
//! let p = Predictor::predict(&ppr, &PredictRequest::new(&g, &machine))?;
//! assert_eq!(p.num_vertices(), 4);
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::thread;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snaple_core::topk::top_k_by_score;
use snaple_core::{
    ExecuteRequest, Prediction, Predictor, PrepareRequest, PreparedPredictor, SetupStats,
    SnapleError,
};
use snaple_gas::stats::{NodeStats, RunStats, StepStats};
use snaple_gas::CostModel;
use snaple_graph::hash::hash2;
use snaple_graph::{CsrGraph, GraphStore, VertexId};

/// Cost of one random-walk hop, in seconds.
///
/// A hop is a uniformly random neighbor lookup plus a visit-counter
/// update — a DRAM-latency-bound operation, unlike SNAPLE's sequential
/// merge primitives. Calibrated against the paper's own Cassovary
/// measurements (§5.9: livejournal w = 100, d = 3 takes 93 s on 20 cores
/// ≈ 0.96×10⁹ hops; twitter-rv w = 1000, d = 3 takes 5 420 s ≈ 83×10⁹
/// hops), both of which give ≈ 1.9 µs per hop on the paper's JVM stack.
pub const WALK_HOP_COST: f64 = 1.9e-6;

/// Configuration of the random-walk PPR predictor.
///
/// Defaults mirror the paper's best trade-off (`w = 100`, `d = 3`,
/// `k = 5`).
#[derive(Clone, Debug)]
pub struct RandomWalkConfig {
    /// Predictions per vertex.
    pub k: usize,
    /// Number of walks per vertex (`w`).
    pub walks: usize,
    /// Walk depth (`d`): the paper's convention where `d = 2` reaches
    /// direct neighbors and `d = 3` reaches neighbors of neighbors, i.e. a
    /// walk takes `d − 1` hops.
    pub depth: usize,
    /// Random seed.
    pub seed: u64,
    /// Worker threads; `None` uses the host's available parallelism.
    pub threads: Option<usize>,
}

impl RandomWalkConfig {
    /// Creates the default configuration.
    pub fn new() -> Self {
        RandomWalkConfig {
            k: 5,
            walks: 100,
            depth: 3,
            seed: 0xca550,
            threads: None,
        }
    }

    /// Sets the number of predictions per vertex.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the number of walks per vertex.
    pub fn walks(mut self, w: usize) -> Self {
        self.walks = w;
        self
    }

    /// Sets the walk depth.
    pub fn depth(mut self, d: usize) -> Self {
        self.depth = d;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads.
    pub fn threads(mut self, t: Option<usize>) -> Self {
        self.threads = t;
        self
    }
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Multithreaded random-walk personalized-PageRank link predictor.
#[derive(Clone, Debug)]
pub struct RandomWalkPpr {
    config: RandomWalkConfig,
}

impl RandomWalkPpr {
    /// Creates a predictor.
    pub fn new(config: RandomWalkConfig) -> Self {
        RandomWalkPpr { config }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &RandomWalkConfig {
        &self.config
    }

    fn validate_config(&self) -> Result<(), SnapleError> {
        if self.config.k == 0 {
            return Err(SnapleError::InvalidConfig(
                "k must be at least 1".to_owned(),
            ));
        }
        if self.config.walks == 0 {
            return Err(SnapleError::InvalidConfig(
                "walks must be at least 1".to_owned(),
            ));
        }
        if self.config.depth == 0 {
            return Err(SnapleError::InvalidConfig(
                "depth must be at least 1 (d = 2 reaches direct neighbors)".to_owned(),
            ));
        }
        Ok(())
    }

    /// Runs the walks for `targets` and assembles the shared result type.
    fn walk(
        &self,
        graph: &dyn GraphStore,
        cost: &CostModel,
        storage_bytes: u64,
        targets: &[VertexId],
        seed: u64,
    ) -> Prediction {
        let n = graph.num_vertices();
        let workers = self
            .config
            .threads
            .unwrap_or_else(|| thread::available_parallelism().map_or(2, |p| p.get()))
            .max(1);
        let chunk = targets.len().div_ceil(workers).max(1);
        let hops = self.config.depth.saturating_sub(1);

        let mut predictions: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); n];
        let mut total_hops = 0u64;
        // One shard's output: per-source prediction rows plus hops taken.
        type ShardResult = (Vec<(VertexId, Vec<(VertexId, f32)>)>, u64);
        let shard_results: Vec<ShardResult> = thread::scope(|scope| {
            let handles: Vec<_> = targets
                .chunks(chunk)
                .map(|shard| {
                    let config = &self.config;
                    scope.spawn(move || {
                        let mut out = Vec::with_capacity(shard.len());
                        let mut hop_count = 0u64;
                        let mut visits: std::collections::HashMap<VertexId, u32> =
                            std::collections::HashMap::new();
                        for &u in shard {
                            // Per-vertex RNG: results do not depend on
                            // how vertices are sharded across threads —
                            // or on which vertices are queried at all.
                            let mut rng =
                                StdRng::seed_from_u64(hash2(seed, u.as_u32() as u64, 0xca55));
                            visits.clear();
                            for _ in 0..config.walks {
                                let mut cur = u;
                                for _ in 0..hops {
                                    let nbrs = graph.out_neighbors(cur);
                                    cur = if nbrs.is_empty() {
                                        u // dead end: restart at the source
                                    } else {
                                        nbrs[rng.gen_range(0..nbrs.len())]
                                    };
                                    hop_count += 1;
                                    if cur != u {
                                        *visits.entry(cur).or_insert(0) += 1;
                                    }
                                }
                            }
                            let scored: Vec<(VertexId, f32)> = visits
                                .iter()
                                .filter(|(z, _)| !graph.has_edge(u, **z))
                                .map(|(&z, &c)| (z, c as f32))
                                .collect();
                            out.push((u, top_k_by_score(scored, config.k)));
                        }
                        (out, hop_count)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("walk worker panicked"))
                .collect()
        });
        let mut sources = 0u64;
        for (shard, hops_done) in shard_results {
            for (u, preds) in shard {
                predictions[u.index()] = preds;
                sources += 1;
            }
            total_hops += hops_done;
        }

        let step = StepStats {
            name: "cassovary-random-walk-ppr".to_owned(),
            gather_calls: 0,
            sum_calls: 0,
            apply_calls: sources,
            work_ops: total_hops,
            broadcast_bytes: 0,
            partial_bytes: 0,
            per_node: vec![NodeStats {
                compute_ops: total_hops,
                net_bytes: 0,
                memory_peak: storage_bytes,
            }],
            simulated_seconds: cost.step_seconds(total_hops, 0),
        };
        let stats = RunStats {
            steps: vec![step],
            replication_factor: 1.0,
            ..RunStats::default()
        };
        Prediction::from_parts(predictions, stats)
    }
}

/// The graph a [`PreparedWalk`] runs over: any [`GraphStore`] backend
/// while it is still the caller's borrow, an owned in-memory CSR once a
/// delta has been folded in.
enum WalkGraph<'a> {
    Borrowed(&'a dyn GraphStore),
    Owned(CsrGraph),
}

impl WalkGraph<'_> {
    fn store(&self) -> &dyn GraphStore {
        match self {
            WalkGraph::Borrowed(g) => *g,
            WalkGraph::Owned(g) => g,
        }
    }
}

/// A random-walk predictor with its per-graph state precomputed: the
/// hop-calibrated cost model, the graph's storage footprint, and the
/// all-vertices target table.
///
/// Random walks need no partition, so `prepare` is cheap here — but going
/// through the same lifecycle lets the serving layer treat every backend
/// uniformly. The graph starts as a borrow and becomes owned once a
/// delta is applied (see [`PreparedPredictor::apply_delta`]), so a served
/// stream can keep mutating it in place.
pub struct PreparedWalk<'a> {
    ppr: RandomWalkPpr,
    graph: WalkGraph<'a>,
    cost: CostModel,
    storage_bytes: u64,
    all_vertices: Vec<VertexId>,
    delta_apply_seconds: f64,
    setup: SetupStats,
}

impl PreparedPredictor for PreparedWalk<'_> {
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError> {
        req.validate_for(self.graph.store())?;
        if req.attributes().is_some() {
            return Err(SnapleError::InvalidConfig(
                "random-walk PPR scores structure only and accepts no content attributes"
                    .to_owned(),
            ));
        }
        let targets: &[VertexId] = match req.queries() {
            Some(q) => q.as_slice(),
            None => &self.all_vertices,
        };
        let mut prediction = self.ppr.walk(
            self.graph.store(),
            &self.cost,
            self.storage_bytes,
            targets,
            req.seed().unwrap_or(self.ppr.config.seed),
        );
        prediction.stats.delta_apply_seconds = self.delta_apply_seconds;
        Ok(prediction)
    }

    /// Folds the delta into the owned graph and refreshes the per-graph
    /// tables (storage footprint, target list). Partition-free: the
    /// touched-partition count is always zero.
    fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        let started = Instant::now();
        let overlay = delta.resolve(self.graph.store());
        let grown_vertices = overlay.num_vertices() - self.graph.store().num_vertices();
        let stats = snaple_gas::DeltaStats {
            inserted_edges: overlay.num_inserted(),
            removed_edges: overlay.num_removed(),
            grown_vertices,
            touched_partitions: 0,
            apply_wall_seconds: 0.0,
        };
        if !overlay.is_noop() {
            // Consume an owned graph in place; materialize any other
            // backend once, then fold the overlay in.
            let placeholder = WalkGraph::Owned(CsrGraph::from_edges(0, &[]));
            let mutated = match std::mem::replace(&mut self.graph, placeholder) {
                WalkGraph::Owned(g) => g.compact_overlay_owned(&overlay),
                WalkGraph::Borrowed(g) => match g.as_csr() {
                    Some(csr) => csr.compact_overlay(&overlay),
                    None => g.to_csr().compact_overlay_owned(&overlay),
                },
            };
            self.storage_bytes = mutated.storage_bytes();
            self.all_vertices = mutated.vertices().collect();
            self.graph = WalkGraph::Owned(mutated);
        }
        let apply_wall_seconds = started.elapsed().as_secs_f64();
        self.delta_apply_seconds += apply_wall_seconds;
        Ok(snaple_gas::DeltaStats {
            apply_wall_seconds,
            ..stats
        })
    }

    /// Detaches a fully owned copy of the walk state and folds the delta
    /// into it, leaving `self` untouched — the epoch-snapshot path of
    /// concurrent serving.
    fn fork_with_delta(
        &self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, snaple_gas::DeltaStats), SnapleError> {
        let mut fork = PreparedWalk {
            ppr: self.ppr.clone(),
            graph: WalkGraph::Owned(self.graph.store().to_csr()),
            cost: self.cost.clone(),
            storage_bytes: self.storage_bytes,
            all_vertices: self.all_vertices.clone(),
            delta_apply_seconds: self.delta_apply_seconds,
            setup: self.setup.clone(),
        };
        let applied = fork.apply_delta(delta)?;
        Ok((Box::new(fork), applied))
    }

    fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl Predictor for RandomWalkPpr {
    /// Precomputes the walk state (cost model, degree/storage tables,
    /// target list); the returned [`PreparedWalk`] runs `w` random walks
    /// of depth `d` from every requested source and predicts the `k`
    /// most-visited non-neighbors per source.
    ///
    /// With [`ExecuteRequest::queries`], only the queried vertices walk —
    /// the hop budget (and therefore the simulated time) shrinks linearly
    /// with the query count, and per-source seeding keeps each queried row
    /// bit-identical to an all-vertices run.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] if `k`, `walks` or `depth` is zero
    /// (matching the GAS backends' validation).
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        self.validate_config()?;
        let started = Instant::now();
        let graph = req.graph();
        let cost = CostModel::for_cluster(req.cluster()).with_op_cost(WALK_HOP_COST);
        let storage_bytes = graph.storage_bytes();
        let all_vertices: Vec<VertexId> = snaple_graph::store::vertices(graph).collect();
        let setup = SetupStats {
            prepare_wall_seconds: started.elapsed().as_secs_f64(),
            partition_build_seconds: 0.0,
            replication_factor: 1.0,
        };
        Ok(Box::new(PreparedWalk {
            ppr: self.clone(),
            graph: WalkGraph::Borrowed(graph),
            cost,
            storage_bytes,
            all_vertices,
            delta_apply_seconds: 0.0,
            setup,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_core::{PredictRequest, QuerySet};
    use snaple_gas::ClusterSpec;
    use snaple_graph::gen::datasets;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn machine() -> ClusterSpec {
        ClusterSpec::single_machine(20, 128 << 30)
    }

    fn run(config: RandomWalkConfig, graph: &CsrGraph) -> Prediction {
        let machine = machine();
        Predictor::predict(
            &RandomWalkPpr::new(config),
            &PredictRequest::new(graph, &machine),
        )
        .unwrap()
    }

    #[test]
    fn walks_find_the_obvious_two_hop_candidate() {
        // 0 → 1 → 2, plus return edges so walks keep moving.
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 1), (1, 0)]);
        let p = run(RandomWalkConfig::new().walks(200).depth(3), &g);
        let preds = p.for_vertex(v(0));
        assert_eq!(preds.first().map(|p| p.0), Some(v(2)));
    }

    #[test]
    fn never_predicts_self_or_existing_neighbors() {
        let g = datasets::GOWALLA.emulate(0.004, 21);
        let p = run(RandomWalkConfig::new().walks(20).depth(4), &g);
        for (u, preds) in p.iter() {
            for &(z, score) in preds {
                assert_ne!(z, u);
                assert!(!g.has_edge(u, z));
                assert!(score >= 1.0, "visit counts are positive integers");
            }
        }
    }

    #[test]
    fn deeper_and_wider_walks_cost_more_simulated_time() {
        let g = datasets::GOWALLA.emulate(0.002, 5);
        let cheap = run(RandomWalkConfig::new().walks(10).depth(3), &g);
        let deep = run(RandomWalkConfig::new().walks(10).depth(10), &g);
        let wide = run(RandomWalkConfig::new().walks(100).depth(3), &g);
        assert!(deep.simulated_seconds() > cheap.simulated_seconds());
        assert!(wide.simulated_seconds() > cheap.simulated_seconds());
        // Work scales linearly in w and in (d-1).
        let ratio = wide.stats.total_work_ops() as f64 / cheap.stats.total_work_ops() as f64;
        assert!((ratio - 10.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn depth_two_reaches_only_direct_neighbors() {
        // Paper convention: d = 2 visits Γ(u) only, so no predictions
        // outside existing neighbors are possible in a tree.
        let g = CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3)]);
        let p = run(RandomWalkConfig::new().walks(50).depth(2), &g);
        assert!(p.for_vertex(v(0)).is_empty());
    }

    #[test]
    fn deterministic_under_seed_regardless_of_thread_count() {
        let g = datasets::GOWALLA.emulate(0.002, 5);
        let a = run(RandomWalkConfig::new().seed(7).threads(Some(1)), &g);
        let b = run(RandomWalkConfig::new().seed(7).threads(Some(4)), &g);
        for (u, preds) in a.iter() {
            assert_eq!(preds, b.for_vertex(u), "vertex {u}");
        }
        let c = run(RandomWalkConfig::new().seed(8).threads(Some(1)), &g);
        let differing = a.iter().zip(c.iter()).filter(|(x, y)| x.1 != y.1).count();
        assert!(differing > 0, "different seeds should walk differently");
    }

    #[test]
    fn isolated_vertices_get_no_predictions() {
        let g = CsrGraph::from_edges(3, &[(1, 2)]);
        let p = run(RandomWalkConfig::new(), &g);
        assert!(p.for_vertex(v(0)).is_empty());
    }

    #[test]
    fn targeted_walks_match_the_full_run_and_hop_less() {
        let g = datasets::GOWALLA.emulate(0.004, 21);
        let machine = machine();
        let ppr = RandomWalkPpr::new(RandomWalkConfig::new().walks(20).depth(4).seed(3));
        let full = Predictor::predict(&ppr, &PredictRequest::new(&g, &machine)).unwrap();
        let queries = QuerySet::sample(g.num_vertices(), g.num_vertices() / 25, 13);
        let targeted = Predictor::predict(
            &ppr,
            &PredictRequest::new(&g, &machine).with_queries(&queries),
        )
        .unwrap();
        for (u, preds) in targeted.iter() {
            if queries.contains(u) {
                assert_eq!(preds, full.for_vertex(u), "queried row {u}");
            } else {
                assert!(preds.is_empty(), "non-queried row {u}");
            }
        }
        // Hop budget (and simulated time) scales with the query count.
        let expect = full.stats.total_work_ops() * queries.len() as u64 / g.num_vertices() as u64;
        let got = targeted.stats.total_work_ops();
        assert_eq!(got, expect, "hops must scale exactly with the query count");
        assert!(targeted.simulated_seconds() < full.simulated_seconds());
    }

    #[test]
    fn zero_walks_depth_or_k_are_rejected() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let machine = machine();
        for config in [
            RandomWalkConfig::new().walks(0),
            RandomWalkConfig::new().depth(0),
            RandomWalkConfig::new().k(0),
        ] {
            let err = Predictor::predict(
                &RandomWalkPpr::new(config),
                &PredictRequest::new(&g, &machine),
            )
            .unwrap_err();
            assert!(matches!(err, SnapleError::InvalidConfig(_)));
        }
    }

    #[test]
    fn prepared_walks_match_one_shot_predicts_and_reject_bad_configs() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let machine = machine();
        let ppr = RandomWalkPpr::new(RandomWalkConfig::new().walks(30).depth(3));
        let prepared = ppr.prepare(&PrepareRequest::new(&g, &machine)).unwrap();
        let one_shot = Predictor::predict(&ppr, &PredictRequest::new(&g, &machine)).unwrap();
        for _ in 0..2 {
            let executed = prepared.execute(&ExecuteRequest::new()).unwrap();
            for (u, preds) in executed.iter() {
                assert_eq!(preds, one_shot.for_vertex(u));
            }
        }
        // Walks need no partition: setup costs are all-zero except the
        // wall clock spent precomputing.
        assert_eq!(prepared.setup().partition_build_seconds, 0.0);
        assert_eq!(prepared.setup().replication_factor, 1.0);
        // Invalid configurations are rejected at prepare time.
        let bad = RandomWalkPpr::new(RandomWalkConfig::new().walks(0));
        assert!(matches!(
            bad.prepare(&PrepareRequest::new(&g, &machine)),
            Err(SnapleError::InvalidConfig(_))
        ));
    }
}
