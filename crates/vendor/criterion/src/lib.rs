//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment is offline, so this crate provides a small but
//! functional benchmark harness with criterion's API shape: benchmark
//! groups, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each benchmark runs a short warm-up, then
//! `sample_size` samples; every sample times a batch of iterations sized so
//! a sample takes ≳1 ms. The harness prints `group/id/param: median (min …
//! max)` per-iteration times and, when the `BENCH_JSON` environment
//! variable names a file, appends one JSON line per benchmark so external
//! tooling can track results (e.g. `BENCH_micro.json`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        if self.parameter.is_empty() {
            self.function.clone()
        } else {
            format!("{}/{}", self.function, self.parameter)
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(function: &str) -> Self {
        BenchmarkId::new(function, "")
    }
}

impl From<String> for BenchmarkId {
    fn from(function: String) -> Self {
        BenchmarkId::new(function, "")
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: usize,
    measured: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Measures `routine`, storing per-iteration times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: grow the batch until one batch takes
        // at least ~1 ms (or a single iteration is already slower).
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        self.iters_per_sample = batch;
        self.measured.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.measured.push(start.elapsed() / batch as u32);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            measured: Vec::new(),
            iters_per_sample: 0,
        };
        f(&mut bencher, input);
        self.criterion.report(&self.name, &id.render(), &bencher);
        self
    }

    /// Runs one benchmark without a distinguished input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_with_input(id, &(), |b, ()| f(b))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name.to_owned());
        group.bench_with_input(BenchmarkId::new("", ""), &(), |b, ()| f(b));
        group.finish();
        self
    }

    fn report(&mut self, group: &str, id: &str, bencher: &Bencher) {
        let mut times: Vec<f64> = bencher
            .measured
            .iter()
            .map(|d| d.as_secs_f64() * 1e9)
            .collect();
        if times.is_empty() {
            println!("{group}/{id}: no samples");
            return;
        }
        times.sort_by(|a, b| a.total_cmp(b));
        let median = times[times.len() / 2];
        let min = times[0];
        let max = times[times.len() - 1];
        let name = if id.is_empty() {
            group.to_owned()
        } else {
            format!("{group}/{id}")
        };
        println!(
            "{name}: {} (min {}, max {}, {} samples x {} iters)",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(max),
            times.len(),
            bencher.iters_per_sample,
        );
        if let Ok(path) = std::env::var("BENCH_JSON") {
            use std::io::Write;
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{{\"name\":\"{name}\",\"median_ns\":{median:.1},\"min_ns\":{min:.1},\"max_ns\":{max:.1}}}"
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        quick(&mut c);
    }
}
