//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment is offline, so this crate implements the subset of
//! the proptest API the workspace's property tests use: the [`proptest!`]
//! macro over functions with `pattern in strategy` arguments, numeric range
//! and tuple strategies, [`collection::vec`], `prop_assert!`/
//! `prop_assert_eq!`, and [`test_runner::ProptestConfig::with_cases`].
//!
//! Inputs are generated from a deterministic per-test seed; there is no
//! shrinking — a failing case panics with the ordinary assertion message
//! (the generating case index is printed so the failure is reproducible).

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    /// Always produces a clone of the same value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Length specification for [`fn@vec`]: a fixed size or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange(std::ops::Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// Strategy for `Vec`s with lengths drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size` (a `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let range = &self.size.0;
            let len = if range.is_empty() {
                range.start
            } else {
                rng.gen_range(range.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Test execution configuration.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Number of cases run per property (a subset of the real crate's
    /// knobs).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// How many generated inputs each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Overrides the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-(test, case) generator: FNV-1a over the test path
    /// mixed with the case index.
    pub fn case_rng(test_path: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37))
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each contained `fn name(pat in strategy, ...) { body }` as a test
/// over many generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )*
                    let __run = || $body;
                    if let Err(e) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run)) {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property (no shrinking: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property (no shrinking: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn vecs_respect_size(v in crate::collection::vec((0u32..5, 0u32..5), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&(a, b)| a < 5 && b < 5));
        }
    }

    #[test]
    fn cases_are_deterministic_per_test() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..100, 1..20);
        let a: Vec<u32> = s.generate(&mut crate::test_runner::case_rng("t", 0));
        let b: Vec<u32> = s.generate(&mut crate::test_runner::case_rng("t", 0));
        let c: Vec<u32> = s.generate(&mut crate::test_runner::case_rng("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
