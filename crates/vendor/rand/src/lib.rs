//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment is offline, so this crate provides the (small)
//! subset of the `rand` 0.8 API the workspace actually uses, backed by a
//! seeded xoshiro256** generator. Everything is deterministic under
//! [`SeedableRng::seed_from_u64`]; no OS entropy source is exposed.
//!
//! Implemented surface:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen`] for `bool`, `f32`, `f64`, `u32`, `u64`, `usize`
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges and
//!   half-open float ranges
//! * [`Rng::gen_bool`]
//! * [`seq::SliceRandom::choose_multiple`]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling (Lemire): uniform in `[0, n)`.
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}

float_range_impls!(f32, f64);

/// High-level convenience methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;

    /// Builds a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**,
    /// seeded through SplitMix64 exactly as `rand_xoshiro` does.
    ///
    /// (The real `rand::rngs::StdRng` is ChaCha12; the stream differs but
    /// nothing in this workspace depends on specific stream values, only on
    /// seed-determinism and distribution quality.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, as recommended by the
            // xoshiro authors (avoids all-zero states).
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Chooses `amount` distinct elements uniformly at random (all of
        /// them when `amount >= len`), in random order.
        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: Rng + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher-Yates over an index table.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(amount);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_covers_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
            let inc = rng.gen_range(0..=4u32);
            assert!(inc <= 4);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn choose_multiple_is_distinct() {
        let mut rng = StdRng::seed_from_u64(11);
        let items: Vec<u32> = (0..50).collect();
        let mut picked: Vec<u32> = items.choose_multiple(&mut rng, 10).copied().collect();
        assert_eq!(picked.len(), 10);
        picked.sort_unstable();
        picked.dedup();
        assert_eq!(picked.len(), 10);
        let all: Vec<u32> = items.choose_multiple(&mut rng, 99).copied().collect();
        assert_eq!(all.len(), 50);
    }
}
