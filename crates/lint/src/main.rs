//! `snaple-lint` CLI: scans the workspace, prints `file:line:rule`
//! diagnostics, writes `LINT_REPORT.json`, and exits non-zero on any
//! unsuppressed violation. See the library docs for the rule
//! catalogue.

use snaple_lint::{analyze_workspace, report};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
snaple-lint — repo-specific static analysis for the SNAPLE workspace

USAGE:
    snaple-lint [--root <dir>] [--check] [--fix-report] [--report <path>]

OPTIONS:
    --root <dir>     Workspace root to scan (default: current directory)
    --check          CI mode: same diagnostics, exit 1 on violations
                     (the default behavior; the flag documents intent)
    --fix-report     Also print violations grouped by rule and crate
    --report <path>  Where to write LINT_REPORT.json
                     (default: <root>/LINT_REPORT.json)
    -h, --help       Show this help

EXIT CODES:
    0  clean (no unsuppressed violations)
    1  violations found (or malformed suppressions)
    2  usage or I/O error";

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut report_path: Option<PathBuf> = None;
    let mut fix_report = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage_error("--root requires a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage_error("--report requires a value"),
            },
            "--check" => {} // default behavior; accepted for CI clarity
            "--fix-report" => fix_report = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let analysis = match analyze_workspace(&root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("snaple-lint: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    print!("{}", report::human(&analysis));
    if fix_report {
        print!("{}", report::fix_report(&analysis));
    }

    let report_path = report_path.unwrap_or_else(|| root.join("LINT_REPORT.json"));
    if let Err(e) = std::fs::write(&report_path, report::json(&analysis)) {
        eprintln!(
            "snaple-lint: failed to write {}: {e}",
            report_path.display()
        );
        return ExitCode::from(2);
    }
    println!("snaple-lint: report written to {}", report_path.display());

    if analysis.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("snaple-lint: {msg}\n\n{USAGE}");
    ExitCode::from(2)
}
