//! # snaple-lint — repo-specific static analysis for the SNAPLE workspace
//!
//! A std-only, token-level linter (the vendor tree carries no
//! syn/dylint, so there is no parser) that enforces the invariants the
//! serving stack's tests can only check *after* a bug ships: panic-free
//! hot paths, allocation-bounded wire decoding, NaN-safe float
//! ordering, reproducible runs, and print-free libraries.
//!
//! ## Rules
//!
//! | id | zone | forbids |
//! |----|------|---------|
//! | `panic` | panic-free zone | `unwrap()`, `.expect(`, `panic!`, `unreachable!` |
//! | `index` | panic-free zone | postfix `[..]` slice/array indexing |
//! | `wire-length` | `wire.rs` decode fns | `as usize` widening feeding an alloc/index on the same line |
//! | `wire-alloc` | `wire.rs` decode fns | `with_capacity(arg)` unless `arg` is a literal or a `let arg = get_count(..)` binding |
//! | `float-order` | everywhere but `topk.rs` | `partial_cmp` (NaN-unsafe ordering; PR 3 regression guard) |
//! | `determinism` | everywhere | `SystemTime::now`, `thread_rng`, `from_entropy`, `OsRng`, `rand::random` |
//! | `print` | libraries (not bench, `src/bin/`, `main.rs`) | `println!`/`print!`/`eprintln!`/`eprint!`/`dbg!`/`todo!`/`unimplemented!` |
//! | `simd-cfg` | everywhere but `similarity.rs` + bench | `cfg(feature = "simd")` |
//! | `forbid-unsafe` | everywhere | the `unsafe` keyword |
//! | `suppression` | everywhere | malformed `snaple-lint: allow(..)` comments |
//!
//! The **panic-free zone** is [`rules::PANIC_FREE_ZONE`]: the shard
//! wire codec, shard runtime, scatter-gather router, the concurrent
//! server, and the GAS engine — the paths a panic turns into a hung
//! client or a dead shard instead of a typed `ShardFailed` error.
//!
//! Test regions (`#[cfg(test)]` items and `mod tests` blocks) are
//! exempt from every rule; `#![forbid(unsafe_code)]` covers them at the
//! compiler level.
//!
//! ## Suppressions
//!
//! ```text
//! // snaple-lint: allow(<rule>[, <rule>]) — <justification>
//! ```
//!
//! The justification is **required** (separators `—`, `--`, `-`, `:`).
//! A suppression on a code line covers that line; on a comment-only
//! line it covers the next line. A malformed suppression (unknown rule,
//! missing justification) is itself a `suppression` violation and
//! silences nothing.
//!
//! ## Adding a rule
//!
//! 1. Add a variant to [`rules::Rule`], its `id()`, and its zone logic
//!    in [`rules::checks_for`].
//! 2. Implement the per-line check in `rules::check_line` — it sees
//!    masked code ([`lexer`] blanks comments/strings), the raw line,
//!    and the enclosing fn name.
//! 3. Add one positive + one negative fixture under
//!    `tests/fixtures/<rule>/` and wire them into `tests/fixtures.rs`.
//! 4. Document the rule here and in `README.md`.
//!
//! ## Running
//!
//! ```text
//! cargo run -p snaple-lint -- --check            # exit 1 on violations
//! cargo run -p snaple-lint -- --fix-report       # rule-by-crate counts
//! cargo run -p snaple-lint -- --root /path/to/ws # lint another tree
//! ```
//!
//! `--check` also writes `LINT_REPORT.json` (override with
//! `--report <path>`), which CI uploads as an artifact.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod lexer;
pub mod report;
pub mod rules;

pub use rules::{analyze_source, Analysis, Rule, Violation};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Workspace-relative paths of every first-party `.rs` file under
/// `root`: `crates/<name>/src/**` for all non-vendor crates plus the
/// umbrella crate's `src/**`. Sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if name == "vendor" || !entry.path().is_dir() {
                continue;
            }
            collect_rs(&entry.path().join("src"), &mut files)?;
        }
    }
    collect_rs(&root.join("src"), &mut files)?;
    let mut rel: Vec<String> = files
        .iter()
        .filter_map(|p| p.strip_prefix(root).ok())
        .map(|p| {
            p.components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/")
        })
        .collect();
    rel.sort();
    Ok(rel)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Analyzes every first-party source file under `root` and merges the
/// per-file results.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut total = Analysis::default();
    for rel in workspace_files(root)? {
        let source = fs::read_to_string(root.join(&rel))?;
        let a = analyze_source(&rel, &source);
        total.violations.extend(a.violations);
        total.suppressed += a.suppressed;
        total.files_scanned += a.files_scanned;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_files_skips_vendor_and_sorts() {
        // The crate's own workspace root is two levels up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = workspace_files(&root).expect("workspace scan");
        assert!(files.iter().any(|f| f == "crates/lint/src/lib.rs"));
        assert!(files.iter().any(|f| f == "crates/core/src/shard/wire.rs"));
        assert!(!files.iter().any(|f| f.contains("vendor")));
        let mut sorted = files.clone();
        sorted.sort();
        assert_eq!(files, sorted);
    }
}
