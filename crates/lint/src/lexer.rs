//! A masking lexer for Rust sources.
//!
//! The rule engine works on **masked** text: a copy of the source in
//! which the *contents* of every comment, string literal (plain, raw,
//! byte, byte-raw), and character literal are replaced by spaces, while
//! newlines and all real code bytes stay in place. Token positions in
//! the masked text therefore equal positions in the original file, and a
//! forbidden pattern quoted inside a string or comment can never fire.
//!
//! On top of the mask, [`scan`] computes per line:
//!
//! * the comment text (for suppression parsing),
//! * whether the line sits inside a `#[cfg(test)]` item or a
//!   `mod tests { .. }` block (rules skip those regions),
//! * the innermost enclosing function name (wire-safety rules only apply
//!   inside decode-path functions).
//!
//! The lexer handles nested block comments (`/* /* */ */`), raw strings
//! with arbitrary hash counts (`r#"..."#`), byte and byte-raw strings,
//! escapes inside strings and char literals, and distinguishes lifetimes
//! (`'a`) from character literals (`'a'`).

/// One analyzed source line.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// The line with comment/string/char-literal contents blanked.
    pub code: String,
    /// The raw source line, untouched.
    pub raw: String,
    /// Concatenated text of the line's comments (without `//` markers).
    pub comment: String,
    /// True when the line is inside a `#[cfg(test)]` item or a
    /// `mod tests { .. }` block.
    pub is_test: bool,
    /// The innermost function whose body contains the start of the line.
    pub fn_name: Option<String>,
}

/// A whole file, masked and annotated; produced by [`scan`].
#[derive(Debug, Default)]
pub struct FileScan {
    /// Per-line annotations, in file order (line numbers are index + 1).
    pub lines: Vec<LineInfo>,
}

/// Masks `source` and annotates every line. Never fails: unterminated
/// literals or comments simply mask through the end of the file, which
/// is also how rustc treats them before reporting its own error.
pub fn scan(source: &str) -> FileScan {
    let masked = mask(source);
    let mut lines: Vec<LineInfo> = Vec::new();
    for (raw, m) in source.lines().zip(masked.code.lines()) {
        lines.push(LineInfo {
            code: m.to_string(),
            raw: raw.to_string(),
            comment: String::new(),
            is_test: false,
            fn_name: None,
        });
    }
    // `lines()` drops a trailing newline-less fragment consistently for
    // both strings, so the zip cannot misalign.
    for (line_idx, text) in masked.comments {
        if let Some(info) = lines.get_mut(line_idx) {
            if !info.comment.is_empty() {
                info.comment.push(' ');
            }
            info.comment.push_str(&text);
        }
    }
    mark_test_regions(&masked.code, &mut lines);
    mark_fn_names(&masked.code, &mut lines);
    FileScan { lines }
}

struct Masked {
    /// Same length as the input, with non-code bytes blanked.
    code: String,
    /// `(zero-based line, comment text)` for every comment encountered.
    comments: Vec<(usize, String)>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Blanks comments, strings, and char literals, preserving newlines and
/// byte positions (multi-byte chars are replaced by one space each, so
/// columns shift only on non-ASCII code, which the rules never match on).
fn mask(source: &str) -> Masked {
    let chars: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Pushes `c` to the masked output, tracking line numbers.
    macro_rules! emit {
        ($c:expr) => {{
            let c: char = $c;
            if c == '\n' {
                line += 1;
            }
            out.push(c);
        }};
    }
    // Blanks `c` in the masked output (newlines still pass through).
    macro_rules! blank {
        ($c:expr) => {{
            let c: char = $c;
            if c == '\n' {
                line += 1;
                out.push('\n');
            } else {
                out.push(' ');
            }
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();

        // Line comment.
        if c == '/' && next == Some('/') {
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                if i >= 2 || chars[i] != '/' {
                    // skip the leading "//" markers below instead
                }
                text.push(chars[i]);
                blank!(chars[i]);
                i += 1;
            }
            let trimmed = text.trim_start_matches('/').trim().to_string();
            comments.push((start_line, trimmed));
            continue;
        }
        // Block comment (nested).
        if c == '/' && next == Some('*') {
            let start_line = line;
            let mut depth = 0usize;
            let mut text = String::new();
            while i < chars.len() {
                let c = chars[i];
                let n = chars.get(i + 1).copied();
                if c == '/' && n == Some('*') {
                    depth += 1;
                    blank!(c);
                    blank!('*');
                    i += 2;
                    continue;
                }
                if c == '*' && n == Some('/') {
                    depth -= 1;
                    blank!(c);
                    blank!('/');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                    continue;
                }
                text.push(c);
                blank!(c);
                i += 1;
            }
            comments.push((start_line, text.trim().to_string()));
            continue;
        }
        // Raw / byte / byte-raw strings: r"..", r#".."#, b"..", br#".."#.
        let prev_is_ident = i > 0 && is_ident(chars[i - 1]);
        if !prev_is_ident && (c == 'r' || c == 'b') {
            let mut j = i;
            let mut saw_r = false;
            if chars.get(j) == Some(&'b') {
                j += 1;
            }
            if chars.get(j) == Some(&'r') {
                saw_r = true;
                j += 1;
            }
            let mut hashes = 0usize;
            while saw_r && chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if (saw_r || (c == 'b' && j == i + 1)) && chars.get(j) == Some(&'"') {
                // Blank the prefix and opening quote.
                while i <= j {
                    blank!(chars[i]);
                    i += 1;
                }
                if saw_r {
                    // Raw string: ends at `"` followed by `hashes` hashes.
                    while i < chars.len() {
                        if chars[i] == '"' {
                            let mut k = 0;
                            while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                                k += 1;
                            }
                            if k == hashes {
                                for _ in 0..=hashes {
                                    blank!(chars[i]);
                                    i += 1;
                                }
                                break;
                            }
                        }
                        blank!(chars[i]);
                        i += 1;
                    }
                } else {
                    // Plain byte string with escapes.
                    mask_quoted(&chars, &mut i, '"', |c| blank_char(c, &mut out, &mut line));
                }
                continue;
            }
        }
        // Plain string.
        if c == '"' {
            blank!(c);
            i += 1;
            mask_quoted(&chars, &mut i, '"', |c| blank_char(c, &mut out, &mut line));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let n1 = chars.get(i + 1).copied();
            let n2 = chars.get(i + 2).copied();
            let is_char_lit = match n1 {
                Some('\\') => true,
                Some(x) if x != '\'' => n2 == Some('\''),
                _ => false,
            };
            if is_char_lit {
                blank!(c);
                i += 1;
                mask_quoted(&chars, &mut i, '\'', |c| blank_char(c, &mut out, &mut line));
                continue;
            }
            // Lifetime: keep the tick, continue as code.
            emit!(c);
            i += 1;
            continue;
        }
        emit!(c);
        i += 1;
    }
    Masked {
        code: out,
        comments,
    }
}

fn blank_char(c: char, out: &mut String, line: &mut usize) {
    if c == '\n' {
        *line += 1;
        out.push('\n');
    } else {
        out.push(' ');
    }
}

/// Blanks a quoted literal's body (escapes honored) through its closing
/// quote; `i` starts just past the opening quote.
fn mask_quoted(chars: &[char], i: &mut usize, quote: char, mut blank: impl FnMut(char)) {
    while *i < chars.len() {
        let c = chars[*i];
        if c == '\\' {
            blank(c);
            *i += 1;
            if *i < chars.len() {
                blank(chars[*i]);
                *i += 1;
            }
            continue;
        }
        blank(c);
        *i += 1;
        if c == quote {
            return;
        }
    }
}

/// Byte offset of the start of each line in `masked`.
fn line_starts(masked: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in masked.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn line_of(starts: &[usize], offset: usize) -> usize {
    match starts.binary_search(&offset) {
        Ok(l) => l,
        Err(l) => l.saturating_sub(1),
    }
}

/// Marks every line inside a `#[cfg(test)]`-attributed item or a
/// `mod tests { .. }` block as test code.
fn mark_test_regions(masked: &str, lines: &mut [LineInfo]) {
    let bytes = masked.as_bytes();
    let starts = line_starts(masked);
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] == b'#' && matches!(bytes.get(i + 1), Some(b'[')) {
            let (attr, end) = read_attr(masked, i);
            let normalized: String = attr.chars().filter(|c| !c.is_whitespace()).collect();
            if normalized.contains("cfg(test)") || normalized.contains("cfg(test,") {
                let region_end = item_end(masked, end);
                let from = line_of(&starts, i);
                let to = line_of(&starts, region_end.saturating_sub(1));
                for l in lines.iter_mut().take(to + 1).skip(from) {
                    l.is_test = true;
                }
                i = region_end;
                continue;
            }
            i = end;
            continue;
        }
        // `mod tests {`, as a standalone safety net when unattributed.
        if masked[i..].starts_with("mod")
            && (i == 0 || !is_ident_byte(bytes[i.saturating_sub(1)]))
            && masked[i + 3..].trim_start().starts_with("tests")
        {
            let after_kw = skip_ws(masked, i + 3);
            let after_name = after_kw + "tests".len();
            if masked[after_kw..].starts_with("tests")
                && !is_ident_byte(*bytes.get(after_name).unwrap_or(&b' '))
                && masked[after_name..].trim_start().starts_with('{')
            {
                let region_end = item_end(masked, after_name);
                let from = line_of(&starts, i);
                let to = line_of(&starts, region_end.saturating_sub(1));
                for l in lines.iter_mut().take(to + 1).skip(from) {
                    l.is_test = true;
                }
                i = region_end;
                continue;
            }
        }
        i += 1;
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

fn skip_ws(s: &str, mut i: usize) -> usize {
    let b = s.as_bytes();
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    i
}

/// Reads an attribute starting at `#`, returning its text (between the
/// brackets) and the offset just past the closing `]`.
fn read_attr(masked: &str, start: usize) -> (String, usize) {
    let b = masked.as_bytes();
    let mut i = start + 2; // past "#["
    let mut depth = 1usize;
    let from = i;
    while i < b.len() && depth > 0 {
        match b[i] {
            b'[' => depth += 1,
            b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    (masked[from..i.saturating_sub(1)].to_string(), i)
}

/// Finds the end of the item starting after `from`: skips further
/// attributes, then runs to the matching `}` of the item's first brace
/// (or the first `;` if none opens before it).
fn item_end(masked: &str, from: usize) -> usize {
    let b = masked.as_bytes();
    let mut i = skip_ws(masked, from);
    // Skip stacked attributes.
    while i < b.len() && b[i] == b'#' && matches!(b.get(i + 1), Some(b'[')) {
        let (_, end) = read_attr(masked, i);
        i = skip_ws(masked, end);
    }
    while i < b.len() {
        match b[i] {
            b';' => return i + 1,
            b'{' => {
                let mut depth = 0usize;
                while i < b.len() {
                    match b[i] {
                        b'{' => depth += 1,
                        b'}' => {
                            depth -= 1;
                            if depth == 0 {
                                return i + 1;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
                return b.len();
            }
            _ => i += 1,
        }
    }
    b.len()
}

/// Annotates each line with the innermost enclosing function name.
fn mark_fn_names(masked: &str, lines: &mut [LineInfo]) {
    let starts = line_starts(masked);
    let bytes = masked.as_bytes();
    // Stack of scopes opened by `{`; Some(name) when the brace opened a
    // function body.
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut line = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        if i >= *starts.get(line + 1).unwrap_or(&usize::MAX) {
            line += 1;
            continue;
        }
        let c = bytes[i];
        if c == b'f'
            && masked[i..].starts_with("fn")
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && !is_ident_byte(*bytes.get(i + 2).unwrap_or(&b' '))
        {
            let name_start = skip_ws(masked, i + 2);
            let mut j = name_start;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j > name_start {
                pending_fn = Some(masked[name_start..j].to_string());
            }
            i = j;
            continue;
        }
        match c {
            b'{' => {
                stack.push(pending_fn.take());
            }
            b'}' => {
                stack.pop();
            }
            b';' => {
                // A `;` before any `{` ends a declaration: `fn f();`.
                pending_fn = None;
            }
            _ => {}
        }
        i += 1;
        // Record the innermost fn for the line each time we advance onto
        // a new line boundary is handled below by a final pass.
    }
    // Second, simpler pass: recompute per line by replaying the scan and
    // sampling the stack at each line start.
    let mut stack: Vec<Option<String>> = Vec::new();
    let mut pending_fn: Option<String> = None;
    let mut line = 0usize;
    let mut i = 0usize;
    let sample =
        |stack: &[Option<String>]| -> Option<String> { stack.iter().rev().find_map(|s| s.clone()) };
    if let Some(l) = lines.get_mut(0) {
        l.fn_name = None;
    }
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            line += 1;
            if let Some(l) = lines.get_mut(line) {
                l.fn_name = sample(&stack);
            }
            i += 1;
            continue;
        }
        let c = bytes[i];
        if c == b'f'
            && masked[i..].starts_with("fn")
            && (i == 0 || !is_ident_byte(bytes[i - 1]))
            && !is_ident_byte(*bytes.get(i + 2).unwrap_or(&b' '))
        {
            let name_start = skip_ws(masked, i + 2);
            let mut j = name_start;
            while j < bytes.len() && is_ident_byte(bytes[j]) {
                j += 1;
            }
            if j > name_start {
                pending_fn = Some(masked[name_start..j].to_string());
            }
            // Newlines inside the skipped span must still advance lines.
            for &b in bytes.iter().take(j).skip(i) {
                if b == b'\n' {
                    line += 1;
                    if let Some(l) = lines.get_mut(line) {
                        l.fn_name = sample(&stack);
                    }
                }
            }
            i = j;
            continue;
        }
        match c {
            b'{' => stack.push(pending_fn.take()),
            b'}' => {
                stack.pop();
            }
            b';' => pending_fn = None,
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_nested_block_comments() {
        let s = "let a = 1; // unwrap() here\n/* outer /* inner unwrap() */ done */ let b = 2;\n";
        let scan = scan(s);
        assert!(!scan.lines[0].code.contains("unwrap"));
        assert!(scan.lines[0].comment.contains("unwrap()"));
        assert!(!scan.lines[1].code.contains("unwrap"));
        assert!(scan.lines[1].code.contains("let b = 2;"));
    }

    #[test]
    fn masks_raw_and_byte_strings() {
        let s = "let a = r#\"unwrap() \"quoted\" \"#; let b = b\"panic!\"; let c = br##\"x\"##;\n";
        let scan = scan(s);
        assert!(!scan.lines[0].code.contains("unwrap"));
        assert!(!scan.lines[0].code.contains("panic"));
        assert!(scan.lines[0].code.contains("let a ="));
        assert!(scan.lines[0].code.contains("let b ="));
        assert!(scan.lines[0].code.contains("let c ="));
    }

    #[test]
    fn distinguishes_lifetimes_from_char_literals() {
        let s = "fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; let u = x; }\n";
        let scan = scan(s);
        // The double-quote char literal must not open a string.
        assert!(scan.lines[0].code.contains("let u = x;"));
        assert!(scan.lines[0].code.contains("&'a str"));
    }

    #[test]
    fn marks_cfg_test_regions() {
        let s = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let scan = scan(s);
        assert!(!scan.lines[0].is_test);
        assert!(scan.lines[1].is_test);
        assert!(scan.lines[2].is_test);
        assert!(scan.lines[3].is_test);
        assert!(scan.lines[4].is_test);
        assert!(!scan.lines[5].is_test);
    }

    #[test]
    fn marks_unattributed_mod_tests() {
        let s = "fn live() {}\nmod tests {\n    fn t() {}\n}\n";
        let scan = scan(s);
        assert!(!scan.lines[0].is_test);
        assert!(scan.lines[1].is_test);
        assert!(scan.lines[2].is_test);
    }

    #[test]
    fn tracks_enclosing_fn_names() {
        let s = "fn outer() {\n    let x = 1;\n}\nfn get_len() {\n    let y = 2;\n}\n";
        let scan = scan(s);
        assert_eq!(scan.lines[1].fn_name.as_deref(), Some("outer"));
        assert_eq!(scan.lines[4].fn_name.as_deref(), Some("get_len"));
    }
}
