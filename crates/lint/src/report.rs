//! Diagnostic rendering: human `file:line:rule` lines, the
//! machine-readable `LINT_REPORT.json`, and the `--fix-report`
//! rule-by-crate summary.

use crate::rules::{crate_of, Analysis};
use std::collections::BTreeMap;

/// Human diagnostics: one `file:line: [rule] message` block per
/// violation, followed by a one-line summary.
pub fn human(analysis: &Analysis) -> String {
    let mut out = String::new();
    for v in &analysis.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n    {}\n",
            v.file, v.line, v.rule, v.message, v.snippet
        ));
    }
    out.push_str(&format!(
        "snaple-lint: {} violation(s), {} suppressed, {} file(s) scanned\n",
        analysis.violations.len(),
        analysis.suppressed,
        analysis.files_scanned
    ));
    out
}

/// `LINT_REPORT.json`: `{"violations": [..], "suppressed": n,
/// "files_scanned": n, "clean": bool}`. Hand-rolled (std-only tree, no
/// serde) with full string escaping.
pub fn json(analysis: &Analysis) -> String {
    let mut out = String::from("{\n  \"violations\": [");
    for (i, v) in analysis.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"snippet\": {}}}",
            escape(&v.file),
            v.line,
            escape(v.rule.id()),
            escape(&v.message),
            escape(&v.snippet)
        ));
    }
    if !analysis.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"suppressed\": {},\n  \"files_scanned\": {},\n  \"clean\": {}\n}}\n",
        analysis.suppressed,
        analysis.files_scanned,
        analysis.violations.is_empty()
    ));
    out
}

/// `--fix-report`: violations grouped by rule, then by crate, with
/// counts — the lint-debt ledger future PRs can paste into CHANGES.md.
pub fn fix_report(analysis: &Analysis) -> String {
    let mut by_rule: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for v in &analysis.violations {
        *by_rule
            .entry(v.rule.id())
            .or_default()
            .entry(crate_of(&v.file))
            .or_default() += 1;
    }
    let mut out = String::from("snaple-lint fix report (violations by rule and crate)\n");
    if by_rule.is_empty() {
        out.push_str("  no violations — workspace is lint-clean\n");
    }
    for (rule, crates) in &by_rule {
        let total: usize = crates.values().sum();
        out.push_str(&format!("  {rule}: {total}\n"));
        for (krate, n) in crates {
            out.push_str(&format!("    {krate}: {n}\n"));
        }
    }
    out.push_str(&format!(
        "  total: {} violation(s), {} suppressed\n",
        analysis.violations.len(),
        analysis.suppressed
    ));
    out
}

/// JSON string escaping for the hand-rolled emitter.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{Rule, Violation};

    fn sample() -> Analysis {
        Analysis {
            violations: vec![Violation {
                file: "crates/core/src/concurrent.rs".to_string(),
                line: 7,
                rule: Rule::Panic,
                message: "say \"no\"".to_string(),
                snippet: "x.unwrap()".to_string(),
            }],
            suppressed: 2,
            files_scanned: 3,
        }
    }

    #[test]
    fn human_contains_location_and_summary() {
        let h = human(&sample());
        assert!(h.contains("crates/core/src/concurrent.rs:7: [panic]"));
        assert!(h.contains("1 violation(s), 2 suppressed, 3 file(s) scanned"));
    }

    #[test]
    fn json_escapes_and_reports_clean_flag() {
        let j = json(&sample());
        assert!(j.contains("\\\"no\\\""));
        assert!(j.contains("\"clean\": false"));
        let empty = Analysis {
            files_scanned: 1,
            ..Analysis::default()
        };
        assert!(json(&empty).contains("\"clean\": true"));
    }

    #[test]
    fn fix_report_groups_by_rule_and_crate() {
        let f = fix_report(&sample());
        assert!(f.contains("panic: 1"));
        assert!(f.contains("core: 1"));
    }
}
