//! The rule engine: rule definitions, the zone map, suppression
//! parsing, and the per-file analysis driver.
//!
//! See the crate-root docs and `crates/lint/README.md` for the rule
//! catalogue and the rationale behind each zone.

use crate::lexer::{scan, FileScan, LineInfo};
use std::fmt;

/// Every rule the linter knows. Rule ids (the strings used in
/// diagnostics and `allow(..)` suppressions) come from [`Rule::id`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `unwrap()` / `.expect(` / `panic!` / `unreachable!` in a
    /// panic-free zone.
    Panic,
    /// Postfix `[..]` slice/array indexing in a panic-free zone.
    Index,
    /// Unchecked `as usize` widening of a wire-controlled value that
    /// feeds an allocation or index on the same line (wire.rs decode
    /// paths only).
    WireLength,
    /// `Vec::with_capacity` fed by anything other than a literal or a
    /// `get_count`-validated binding (wire.rs decode paths only).
    WireAlloc,
    /// `partial_cmp` on float keys outside the NaN-ordering-aware
    /// `topk.rs` (regression guard for the PR 3 NaN fix).
    FloatOrder,
    /// Ambient entropy or wall-clock reads (`SystemTime::now`,
    /// `thread_rng`, ...) that break run reproducibility.
    Determinism,
    /// `println!`-family / `dbg!` / `todo!` / `unimplemented!` in
    /// library code.
    Print,
    /// `cfg(feature = "simd")` outside `similarity.rs` and bench code.
    SimdCfg,
    /// Any use of the `unsafe` keyword in first-party code.
    ForbidUnsafe,
    /// A malformed suppression comment (unknown rule id, missing
    /// justification, bad grammar). A bad suppression is itself a
    /// violation and suppresses nothing.
    Suppression,
}

impl Rule {
    /// All rules, in diagnostic-output order.
    pub const ALL: [Rule; 10] = [
        Rule::Panic,
        Rule::Index,
        Rule::WireLength,
        Rule::WireAlloc,
        Rule::FloatOrder,
        Rule::Determinism,
        Rule::Print,
        Rule::SimdCfg,
        Rule::ForbidUnsafe,
        Rule::Suppression,
    ];

    /// The stable string id used in diagnostics and `allow(..)`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::Panic => "panic",
            Rule::Index => "index",
            Rule::WireLength => "wire-length",
            Rule::WireAlloc => "wire-alloc",
            Rule::FloatOrder => "float-order",
            Rule::Determinism => "determinism",
            Rule::Print => "print",
            Rule::SimdCfg => "simd-cfg",
            Rule::ForbidUnsafe => "forbid-unsafe",
            Rule::Suppression => "suppression",
        }
    }

    /// Parses a rule id; `suppression` is not allowable (you cannot
    /// suppress the suppression-grammar check).
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .copied()
            .find(|r| r.id() == id && *r != Rule::Suppression)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One diagnostic: a forbidden pattern at `file:line`.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human explanation of why the pattern is forbidden here.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

/// Aggregate result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Analysis {
    /// Unsuppressed violations, in file/line order.
    pub violations: Vec<Violation>,
    /// Count of hits silenced by a justified suppression.
    pub suppressed: usize,
    /// Number of files scanned.
    pub files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Zone map
// ---------------------------------------------------------------------------

/// Files whose non-test code must be panic-free (rules `panic` +
/// `index`). Paths are workspace-relative with forward slashes.
pub const PANIC_FREE_ZONE: [&str; 11] = [
    "crates/core/src/shard/wire.rs",
    "crates/core/src/shard/runtime.rs",
    "crates/core/src/shard/router.rs",
    "crates/core/src/concurrent.rs",
    "crates/gas/src/engine.rs",
    "crates/graph/src/codec.rs",
    "crates/graph/src/v2.rs",
    "crates/graph/src/compress.rs",
    "crates/store/src/log.rs",
    "crates/store/src/snapshot.rs",
    "crates/store/src/recover.rs",
];

/// Files whose decode-path functions get the wire-safety rules: the
/// shard protocol plus everything that decodes bytes that may have been
/// corrupted at rest (the shared delta codec, the `SNPLG2` zero-parse
/// reader, the delta-varint block decoder, the commitlog scanner, the
/// snapshot loader).
pub const WIRE_ZONE: [&str; 6] = [
    "crates/core/src/shard/wire.rs",
    "crates/graph/src/codec.rs",
    "crates/graph/src/v2.rs",
    "crates/graph/src/compress.rs",
    "crates/store/src/log.rs",
    "crates/store/src/snapshot.rs",
];

/// The one file allowed to order floats with `partial_cmp` (it owns
/// the NaN-aware comparator).
pub const FLOAT_ORDER_EXEMPT: [&str; 1] = ["crates/core/src/topk.rs"];

/// Files/dirs where `cfg(feature = "simd")` may appear.
pub const SIMD_CFG_EXEMPT_FILE: &str = "crates/core/src/similarity.rs";

/// Returns the checks that apply to a workspace-relative path.
pub fn checks_for(path: &str) -> Vec<Rule> {
    let mut rules = vec![Rule::Determinism, Rule::ForbidUnsafe];
    if !FLOAT_ORDER_EXEMPT.contains(&path) {
        rules.push(Rule::FloatOrder);
    }
    if !print_exempt(path) {
        rules.push(Rule::Print);
    }
    if !simd_cfg_exempt(path) {
        rules.push(Rule::SimdCfg);
    }
    if PANIC_FREE_ZONE.contains(&path) {
        rules.push(Rule::Panic);
        rules.push(Rule::Index);
    }
    if WIRE_ZONE.contains(&path) {
        rules.push(Rule::WireLength);
        rules.push(Rule::WireAlloc);
    }
    rules
}

/// Binary entry points and the bench crate may print.
fn print_exempt(path: &str) -> bool {
    path.starts_with("crates/bench/") || path.contains("/bin/") || path.ends_with("main.rs")
}

fn simd_cfg_exempt(path: &str) -> bool {
    path == SIMD_CFG_EXEMPT_FILE || path.starts_with("crates/bench/")
}

/// Which crate a workspace-relative path belongs to, for `--fix-report`
/// grouping. The root `src/` tree is the umbrella `snaple` crate.
pub fn crate_of(path: &str) -> &str {
    if let Some(rest) = path.strip_prefix("crates/") {
        rest.split('/').next().unwrap_or("snaple")
    } else {
        "snaple"
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Result of parsing one comment for a suppression.
enum SuppressionParse {
    /// Comment has no `snaple-lint:` marker.
    NotASuppression,
    /// Well-formed: these rules are allowed (justification present).
    Allow(Vec<Rule>),
    /// Marker present but malformed; the string explains how.
    Malformed(String),
}

/// Grammar: `snaple-lint: allow(<rule>[, <rule>]*) <sep> <justification>`
/// where `<sep>` is `—`, `--`, `-`, or `:` and the justification is
/// non-empty. A suppression on a comment-only line covers the next
/// line; otherwise it covers its own line. The marker must *start* the
/// comment, so prose that merely mentions `snaple-lint:` (docs, this
/// file) is not parsed as a suppression.
fn parse_suppression(comment: &str) -> SuppressionParse {
    let Some(rest) = comment.trim_start().strip_prefix("snaple-lint:") else {
        return SuppressionParse::NotASuppression;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return SuppressionParse::Malformed(
            "expected `allow(<rule>, ..)` after `snaple-lint:`".to_string(),
        );
    };
    let Some(close) = rest.find(')') else {
        return SuppressionParse::Malformed("unclosed `allow(`".to_string());
    };
    let mut rules = Vec::new();
    for part in rest[..close].split(',') {
        let id = part.trim();
        match Rule::from_id(id) {
            Some(r) => rules.push(r),
            None => {
                return SuppressionParse::Malformed(format!("unknown rule `{id}` in allow(..)"))
            }
        }
    }
    if rules.is_empty() {
        return SuppressionParse::Malformed("empty allow(..)".to_string());
    }
    let after = rest[close + 1..].trim_start();
    let justification = ["—", "--", "-", ":"]
        .iter()
        .find_map(|sep| after.strip_prefix(sep))
        .map(str::trim);
    match justification {
        Some(j) if !j.is_empty() => SuppressionParse::Allow(rules),
        _ => SuppressionParse::Malformed(
            "suppression requires a justification: \
             `snaple-lint: allow(<rule>) — <why this cannot fail>`"
                .to_string(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Analysis driver
// ---------------------------------------------------------------------------

/// Analyzes one file's source as if it lived at `path` (workspace-
/// relative). Exposed so fixture self-tests can place a fixture in any
/// zone without touching the real tree.
pub fn analyze_source(path: &str, source: &str) -> Analysis {
    let file = scan(source);
    let checks = checks_for(path);
    let validated = validated_idents(&file);
    let mut analysis = Analysis {
        files_scanned: 1,
        ..Analysis::default()
    };

    // Pass 1: collect suppressions (and flag malformed ones).
    // allowed[i] = rules suppressed on line i (0-based).
    let mut allowed: Vec<Vec<Rule>> = vec![Vec::new(); file.lines.len()];
    for (idx, info) in file.lines.iter().enumerate() {
        if info.comment.is_empty() {
            continue;
        }
        match parse_suppression(&info.comment) {
            SuppressionParse::NotASuppression => {}
            SuppressionParse::Allow(rules) => {
                let target = if info.code.trim().is_empty() {
                    idx + 1
                } else {
                    idx
                };
                if let Some(slot) = allowed.get_mut(target) {
                    slot.extend(rules);
                }
            }
            SuppressionParse::Malformed(msg) => {
                analysis.violations.push(Violation {
                    file: path.to_string(),
                    line: idx + 1,
                    rule: Rule::Suppression,
                    message: msg,
                    snippet: info.raw.trim().to_string(),
                });
            }
        }
    }

    // Pass 2: run the zone's checks line by line. Test regions
    // (`#[cfg(test)]` / `mod tests`) are exempt from every rule: the
    // lint protects shipped code paths, and `#![forbid(unsafe_code)]`
    // already covers tests at the compiler level.
    for (idx, info) in file.lines.iter().enumerate() {
        if info.is_test {
            continue;
        }
        for &rule in &checks {
            if let Some(message) = check_line(rule, info, &validated) {
                if allowed[idx].contains(&rule) {
                    analysis.suppressed += 1;
                } else {
                    analysis.violations.push(Violation {
                        file: path.to_string(),
                        line: idx + 1,
                        rule,
                        message,
                        snippet: info.raw.trim().to_string(),
                    });
                }
            }
        }
    }
    analysis.violations.sort_by_key(|v| v.line);
    analysis
}

/// Identifiers bound by `let <ident> = get_count(..)` anywhere in the
/// file: the only non-literal values `wire-alloc` accepts as a
/// `with_capacity` argument.
fn validated_idents(file: &FileScan) -> Vec<String> {
    let mut out = Vec::new();
    for info in &file.lines {
        let t = info.code.trim_start();
        let Some(rest) = t.strip_prefix("let ") else {
            continue;
        };
        let rest = rest.trim_start().trim_start_matches("mut ").trim_start();
        let ident: String = rest.chars().take_while(|c| is_ident(*c)).collect();
        if ident.is_empty() {
            continue;
        }
        let after = rest[ident.len()..].trim_start();
        if let Some(rhs) = after.strip_prefix('=') {
            if rhs.trim_start().starts_with("get_count(") {
                out.push(ident);
            }
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Finds `needle` in `hay` at a non-identifier boundary (the char
/// before the match, if any, is not part of an identifier).
fn find_token(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let boundary = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident);
        if boundary {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Keywords that may legitimately precede `[` (slice patterns, array
/// types after `as`, `return [..]`, ...). `self` is deliberately *not*
/// here: `self[..]` is real `Index` sugar.
const KEYWORDS_BEFORE_BRACKET: [&str; 16] = [
    "let", "in", "if", "while", "match", "return", "mut", "ref", "else", "move", "as", "for",
    "where", "break", "continue", "const",
];

/// True when the masked line contains a postfix index expression:
/// `[` preceded by an identifier (non-keyword), `)`, `]`, or `?`.
fn has_postfix_index(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1] as char;
        if prev == '#' || prev == '!' {
            continue; // attribute or macro like `vec![`
        }
        if prev == ')' || prev == ']' || prev == '?' {
            return true;
        }
        if is_ident(prev) {
            // Walk back over the identifier and reject keywords.
            let mut s = i - 1;
            while s > 0 && is_ident(bytes[s - 1] as char) {
                s -= 1;
            }
            let ident = &code[s..i];
            if ident.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                continue; // `[u8; 4]`-style literal before `[`? digits — not an index base
            }
            if !KEYWORDS_BEFORE_BRACKET.contains(&ident) {
                return true;
            }
        }
    }
    false
}

/// Heuristic for wire.rs: decode-path functions, where every integer is
/// attacker-controlled until validated.
fn is_decode_path(fn_name: Option<&str>) -> bool {
    let Some(name) = fn_name else { return false };
    ["decode", "read", "get", "parse", "take"]
        .iter()
        .any(|p| name.starts_with(p))
}

/// Runs one rule against one line; returns the violation message on a
/// hit.
fn check_line(rule: Rule, info: &LineInfo, validated: &[String]) -> Option<String> {
    let code = info.code.as_str();
    match rule {
        Rule::Panic => {
            if find_token(code, "unwrap()")
                || code.contains(".expect(")
                || find_token(code, "panic!")
                || find_token(code, "unreachable!")
            {
                Some(
                    "panic path in a panic-free zone; return a typed \
                     SnapleError/WireError instead"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::Index => {
            if has_postfix_index(code) {
                Some(
                    "slice indexing can panic in a panic-free zone; use \
                     .get()/.get_mut() or prove bounds and suppress with a \
                     justification"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::WireLength => {
            if is_decode_path(info.fn_name.as_deref())
                && code.contains(" as usize")
                && (code.contains("with_capacity")
                    || code.contains("reserve")
                    || code.contains("resize")
                    || code.contains("read_exact")
                    || code.contains("set_len")
                    || code.contains("vec!")
                    || has_postfix_index(code))
            {
                Some(
                    "unchecked `as usize` widening of a wire-controlled \
                     value feeding an allocation or index; validate via \
                     get_count first"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::WireAlloc => {
            if !is_decode_path(info.fn_name.as_deref()) {
                return None;
            }
            let pos = code.find("with_capacity(")?;
            let arg_from = pos + "with_capacity(".len();
            let mut depth = 1usize;
            let mut end = arg_from;
            for (off, c) in code[arg_from..].char_indices() {
                match c {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = arg_from + off;
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let arg = code[arg_from..end].trim();
            let is_literal = !arg.is_empty() && arg.chars().all(|c| c.is_ascii_digit() || c == '_');
            let is_validated = validated.iter().any(|v| v == arg);
            if is_literal || is_validated {
                None
            } else {
                Some(format!(
                    "with_capacity({arg}) in a decode path: the argument \
                     must be an integer literal or a `let {arg} = \
                     get_count(..)` binding"
                ))
            }
        }
        Rule::FloatOrder => {
            if code.contains("partial_cmp") {
                Some(
                    "partial_cmp on float keys is NaN-unsafe (PR 3 \
                     regression guard); use total_cmp or the topk.rs \
                     comparator"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::Determinism => {
            for pat in [
                "SystemTime::now",
                "thread_rng",
                "from_entropy",
                "OsRng",
                "rand::random",
            ] {
                if code.contains(pat) {
                    return Some(format!(
                        "`{pat}` is ambient entropy/wall-clock; runs must \
                         be reproducible — use seeded RNGs (Instant-based \
                         RunStats timing is fine)"
                    ));
                }
            }
            None
        }
        Rule::Print => {
            for pat in [
                "println!",
                "print!",
                "eprintln!",
                "eprint!",
                "dbg!",
                "todo!",
                "unimplemented!",
            ] {
                if find_token(code, pat) {
                    return Some(format!(
                        "`{pat}` in library code; return data or use the \
                         stats surfaces instead"
                    ));
                }
            }
            None
        }
        Rule::SimdCfg => {
            if find_token(code, "cfg") && code.contains("feature") && info.raw.contains("\"simd\"")
            {
                Some(
                    "cfg(feature = \"simd\") is confined to similarity.rs \
                     and bench code so the scalar path stays the single \
                     source of truth"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::ForbidUnsafe => {
            if find_token_word(code, "unsafe") {
                Some(
                    "first-party crates are `#![forbid(unsafe_code)]`; \
                     keep unsafe out of the workspace"
                        .to_string(),
                )
            } else {
                None
            }
        }
        Rule::Suppression => None, // emitted during suppression parsing
    }
}

/// Like [`find_token`] but also requires a non-identifier boundary
/// *after* the match (`unsafe_code` must not match `unsafe`).
fn find_token_word(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !hay[..at].chars().next_back().is_some_and(is_ident);
        let after_ok = !hay[at + needle.len()..]
            .chars()
            .next()
            .is_some_and(is_ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const ZONE: &str = "crates/core/src/shard/runtime.rs";

    #[test]
    fn panic_rule_fires_in_zone_only() {
        let src = "fn f() { let x = y.unwrap(); }\n";
        assert_eq!(analyze_source(ZONE, src).violations.len(), 1);
        assert!(analyze_source("crates/eval/src/lib.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f() { let x = y.unwrap_or_else(|| 0); }\n";
        assert!(analyze_source(ZONE, src).violations.is_empty());
    }

    #[test]
    fn index_rule_skips_attributes_and_macros() {
        let src = "#[derive(Debug)]\nfn f() { let v = vec![1, 2]; let s: [u8; 4] = [0; 4]; }\n";
        assert!(analyze_source(ZONE, src).violations.is_empty());
    }

    #[test]
    fn index_rule_catches_postfix_indexing() {
        let src = "fn f() { let x = buf[i]; }\n";
        let a = analyze_source(ZONE, src);
        assert_eq!(a.violations.len(), 1);
        assert_eq!(a.violations[0].rule, Rule::Index);
    }

    #[test]
    fn suppression_with_justification_is_honored() {
        let src =
            "fn f() { let x = buf[i]; } // snaple-lint: allow(index) — i < len by construction\n";
        let a = analyze_source(ZONE, src);
        assert!(a.violations.is_empty());
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn suppression_without_justification_is_rejected() {
        let src = "fn f() { let x = buf[i]; } // snaple-lint: allow(index)\n";
        let a = analyze_source(ZONE, src);
        assert_eq!(a.violations.len(), 2); // the index hit AND the bad suppression
        assert!(a.violations.iter().any(|v| v.rule == Rule::Suppression));
        assert!(a.violations.iter().any(|v| v.rule == Rule::Index));
    }

    #[test]
    fn comment_only_suppression_covers_next_line() {
        let src = "fn f() {\n    // snaple-lint: allow(panic) — invariant: queue non-empty\n    let x = y.unwrap();\n}\n";
        let a = analyze_source(ZONE, src);
        assert!(a.violations.is_empty());
        assert_eq!(a.suppressed, 1);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); buf[0]; }\n}\n";
        assert!(analyze_source(ZONE, src).violations.is_empty());
    }

    #[test]
    fn wire_alloc_accepts_get_count_binding() {
        let src = "fn decode_rows(p: &[u8]) {\n    let n = get_count(p, 8)?;\n    let v = Vec::with_capacity(n);\n}\n";
        assert!(analyze_source("crates/core/src/shard/wire.rs", src)
            .violations
            .iter()
            .all(|v| v.rule != Rule::WireAlloc));
    }

    #[test]
    fn wire_alloc_rejects_raw_field() {
        let src = "fn decode_rows(p: &[u8]) {\n    let n = read_u32(p) as usize;\n    let v = Vec::with_capacity(n);\n}\n";
        let a = analyze_source("crates/core/src/shard/wire.rs", src);
        assert!(a.violations.iter().any(|v| v.rule == Rule::WireAlloc));
    }
}
