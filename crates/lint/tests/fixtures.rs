//! Fixture-based self-tests: one positive + one negative fixture per
//! rule, the suppression grammar, the tokenizer's masking behavior, and
//! the acceptance property that seeding any forbidden pattern into a
//! panic-free zone produces a violation.
//!
//! Fixtures live in `tests/fixtures/<rule>/`. Each is analyzed *as if*
//! it sat at a chosen workspace path, so one fixture file can be tested
//! inside and outside a zone without touching the real tree.

use snaple_lint::{analyze_source, Rule};

/// A panic-free-zone path (panic + index rules active).
const ZONE: &str = "crates/core/src/shard/runtime.rs";
/// The wire-safety zone (adds wire-length + wire-alloc).
const WIRE: &str = "crates/core/src/shard/wire.rs";
/// An ordinary library path (base rules only).
const LIB: &str = "crates/eval/src/lib.rs";

fn rules_hit(path: &str, source: &str) -> Vec<Rule> {
    analyze_source(path, source)
        .violations
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

#[test]
fn panic_fixtures() {
    let hits = rules_hit(ZONE, include_str!("fixtures/panic/pos.rs"));
    assert_eq!(hits.iter().filter(|r| **r == Rule::Panic).count(), 4);
    assert!(rules_hit(ZONE, include_str!("fixtures/panic/neg.rs")).is_empty());
    // The same panicking code is fine outside the zone.
    assert!(rules_hit(LIB, include_str!("fixtures/panic/pos.rs")).is_empty());
}

#[test]
fn index_fixtures() {
    let hits = rules_hit(ZONE, include_str!("fixtures/index/pos.rs"));
    assert!(hits.iter().all(|r| *r == Rule::Index));
    assert!(hits.len() >= 3, "ident, chained, and range forms: {hits:?}");
    assert!(rules_hit(ZONE, include_str!("fixtures/index/neg.rs")).is_empty());
}

#[test]
fn wire_length_fixtures() {
    let hits = rules_hit(WIRE, include_str!("fixtures/wire-length/pos.rs"));
    assert!(hits.contains(&Rule::WireLength), "{hits:?}");
    assert!(rules_hit(WIRE, include_str!("fixtures/wire-length/neg.rs")).is_empty());
}

#[test]
fn wire_alloc_fixtures() {
    let hits = rules_hit(WIRE, include_str!("fixtures/wire-alloc/pos.rs"));
    assert!(hits.contains(&Rule::WireAlloc), "{hits:?}");
    let neg = rules_hit(WIRE, include_str!("fixtures/wire-alloc/neg.rs"));
    assert!(!neg.contains(&Rule::WireAlloc), "{neg:?}");
}

#[test]
fn float_order_fixtures() {
    let pos = include_str!("fixtures/float-order/pos.rs");
    let hits = rules_hit(LIB, pos);
    assert!(hits.contains(&Rule::FloatOrder), "{hits:?}");
    assert!(rules_hit(LIB, include_str!("fixtures/float-order/neg.rs")).is_empty());
    // topk.rs owns the NaN-aware comparator and is exempt.
    assert!(rules_hit("crates/core/src/topk.rs", pos).is_empty());
}

#[test]
fn determinism_fixtures() {
    let hits = rules_hit(LIB, include_str!("fixtures/determinism/pos.rs"));
    assert_eq!(hits.iter().filter(|r| **r == Rule::Determinism).count(), 2);
    assert!(rules_hit(LIB, include_str!("fixtures/determinism/neg.rs")).is_empty());
}

#[test]
fn print_fixtures() {
    let pos = include_str!("fixtures/print/pos.rs");
    let hits = rules_hit(LIB, pos);
    assert_eq!(hits.iter().filter(|r| **r == Rule::Print).count(), 3);
    assert!(rules_hit(LIB, include_str!("fixtures/print/neg.rs")).is_empty());
    // Entry points and the bench crate may print.
    assert!(rules_hit("src/bin/snaple_cli.rs", pos).is_empty());
    assert!(rules_hit("crates/bench/src/exp_shard.rs", pos).is_empty());
}

#[test]
fn simd_cfg_fixtures() {
    let pos = include_str!("fixtures/simd-cfg/pos.rs");
    let hits = rules_hit(LIB, pos);
    assert!(hits.contains(&Rule::SimdCfg), "{hits:?}");
    assert!(rules_hit(LIB, include_str!("fixtures/simd-cfg/neg.rs")).is_empty());
    // The one sanctioned home of the simd gate.
    assert!(rules_hit("crates/core/src/similarity.rs", pos).is_empty());
}

#[test]
fn forbid_unsafe_fixtures() {
    let hits = rules_hit(LIB, include_str!("fixtures/forbid-unsafe/pos.rs"));
    assert!(hits.contains(&Rule::ForbidUnsafe), "{hits:?}");
    assert!(rules_hit(LIB, include_str!("fixtures/forbid-unsafe/neg.rs")).is_empty());
}

#[test]
fn suppression_honored_silences_and_counts() {
    let a = analyze_source(ZONE, include_str!("fixtures/suppression/honored.rs"));
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert_eq!(a.suppressed, 2, "same-line and next-line forms");
}

#[test]
fn suppression_without_justification_rejected() {
    let a = analyze_source(
        ZONE,
        include_str!("fixtures/suppression/missing_justification.rs"),
    );
    let rules: Vec<Rule> = a.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&Rule::Suppression), "{rules:?}");
    assert!(
        rules.contains(&Rule::Index),
        "the bad suppression must not silence the hit: {rules:?}"
    );
}

#[test]
fn suppression_unknown_rule_rejected() {
    let a = analyze_source(ZONE, include_str!("fixtures/suppression/unknown_rule.rs"));
    let rules: Vec<Rule> = a.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&Rule::Suppression), "{rules:?}");
    assert!(rules.contains(&Rule::Panic), "{rules:?}");
}

#[test]
fn tokenizer_masks_strings_and_comments() {
    // Raw strings, byte-raw strings, nested block comments, and plain
    // strings all carry forbidden patterns — none may fire.
    let a = analyze_source(ZONE, include_str!("fixtures/tokenizer/masked.rs"));
    assert!(a.violations.is_empty(), "{:?}", a.violations);
}

#[test]
fn tokenizer_skips_cfg_test_regions() {
    let a = analyze_source(ZONE, include_str!("fixtures/tokenizer/cfg_test.rs"));
    assert!(a.violations.is_empty(), "{:?}", a.violations);
}

/// Acceptance criterion: seeding any single forbidden pattern into a
/// panic-free zone file produces at least one violation (which makes
/// `snaple-lint --check` exit non-zero).
#[test]
fn seeding_any_forbidden_pattern_fails_the_zone() {
    let seeds: &[(&str, Rule)] = &[
        ("let x = maybe.unwrap();", Rule::Panic),
        ("let x = maybe.expect(\"present\");", Rule::Panic),
        ("panic!(\"boom\");", Rule::Panic),
        ("unreachable!();", Rule::Panic),
        ("let x = buf[i];", Rule::Index),
        ("let t = &rows[1..];", Rule::Index),
        ("let o = s.partial_cmp(&t);", Rule::FloatOrder),
        ("let t = std::time::SystemTime::now();", Rule::Determinism),
        ("let r = thread_rng();", Rule::Determinism),
        ("println!(\"dbg\");", Rule::Print),
        ("dbg!(x);", Rule::Print),
        ("let v = unsafe { *p };", Rule::ForbidUnsafe),
    ];
    for (line, rule) in seeds {
        let source = format!("fn seeded() {{\n    {line}\n}}\n");
        let hits = rules_hit(ZONE, &source);
        assert!(
            hits.contains(rule),
            "seeding `{line}` should trip {rule:?}, got {hits:?}"
        );
    }
}

/// The workspace itself must be lint-clean: zero unsuppressed
/// violations, every suppression justified. This is the same scan CI
/// enforces via `cargo run -p snaple-lint -- --check`.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let analysis = snaple_lint::analyze_workspace(&root).expect("workspace scan");
    assert!(analysis.files_scanned > 50, "scan looks truncated");
    let rendered: Vec<String> = analysis
        .violations
        .iter()
        .map(|v| format!("{}:{}: [{}] {}", v.file, v.line, v.rule, v.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "workspace has violations:\n{rendered:#?}"
    );
}
