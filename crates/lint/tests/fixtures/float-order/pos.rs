//! Positive: NaN-unsafe float ordering outside topk.rs.
fn rank(scores: &mut Vec<(u32, f32)>) {
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
}
