//! Negative: total_cmp is the NaN-safe ordering.
fn rank(scores: &mut Vec<(u32, f32)>) {
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));
}
