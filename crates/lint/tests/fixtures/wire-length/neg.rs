//! Negative: the widening and the allocation are decoupled through the
//! validating helper, and encode paths are out of scope.
fn decode_rows(payload: &[u8]) -> Result<Vec<u8>, String> {
    let n = get_count(payload, 1)?;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(payload);
    Ok(out)
}
fn encode_rows(len: u32) -> usize {
    len as usize
}
fn get_count(_p: &[u8], _w: usize) -> Result<usize, String> {
    Ok(0)
}
