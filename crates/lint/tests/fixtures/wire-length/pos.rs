//! Positive: wire-controlled u32 widened straight into an allocation.
fn decode_rows(payload: &[u8], raw: u32) -> Vec<u8> {
    let mut out = Vec::new();
    out.reserve(raw as usize);
    let _ = payload;
    out
}
