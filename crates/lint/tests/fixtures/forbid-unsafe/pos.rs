//! Positive: an unsafe block in first-party code.
fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
