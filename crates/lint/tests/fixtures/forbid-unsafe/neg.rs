//! Negative: `unsafe_code` as an identifier fragment and quoted text.
#![forbid(unsafe_code)]
fn describe() -> &'static str {
    "this string mentions unsafe but is masked"
}
