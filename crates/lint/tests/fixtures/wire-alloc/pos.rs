//! Positive: with_capacity fed by an unvalidated decoded field.
fn decode_rows(payload: &[u8]) -> Vec<u8> {
    let n = u32::from_le_bytes([payload[0], payload[1], payload[2], payload[3]]) as usize;
    Vec::with_capacity(n)
}
