//! Negative: literal capacity and a get_count-validated binding.
fn decode_rows(payload: &[u8]) -> Result<Vec<u8>, String> {
    let mut head = Vec::with_capacity(16);
    let n = get_count(payload, 8)?;
    let body: Vec<u8> = Vec::with_capacity(n);
    head.extend(body);
    Ok(head)
}
fn get_count(_p: &[u8], _w: usize) -> Result<usize, String> {
    Ok(0)
}
