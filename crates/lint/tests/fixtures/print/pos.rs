//! Positive: console output and stub macros in library code.
fn debug_dump(x: u32) {
    println!("x = {x}");
    dbg!(x);
    if x == 0 {
        todo!()
    }
}
