//! Negative: data-returning library code; formatted strings are fine.
fn describe(x: u32) -> String {
    format!("x = {x}")
}
