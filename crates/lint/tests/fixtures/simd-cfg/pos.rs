//! Positive: a simd feature gate outside similarity.rs/bench.
#[cfg(feature = "simd")]
fn fast_path() {}
