//! Negative: other feature gates are unrestricted.
#[cfg(feature = "mmap")]
fn mapped_path() {}
#[cfg(test)]
fn test_helper() {}
