//! Negative: seeded RNG construction and monotonic timing.
fn seeded(seed: u64) -> u64 {
    let started = std::time::Instant::now();
    let rng = SmallRng::seed_from_u64(seed);
    let _ = (started.elapsed(), rng);
    seed
}
