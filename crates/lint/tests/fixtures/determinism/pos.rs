//! Positive: ambient entropy and wall-clock reads.
fn now_seed() -> u64 {
    let t = std::time::SystemTime::now();
    let r = thread_rng().next_u64();
    let _ = t;
    r
}
