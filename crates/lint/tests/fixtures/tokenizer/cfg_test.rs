//! Tokenizer case: cfg(test) items and mod tests blocks are exempt.
fn live(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    fn t(buf: &[u8]) -> u8 {
        let v: Option<u8> = buf.first().copied();
        v.unwrap() + buf[0]
    }
}
