//! Tokenizer cases: forbidden patterns inside raw strings, nested block
//! comments, and plain strings must NOT fire.
fn masked() -> (&'static str, &'static str, &'static str) {
    let raw = r#"x.unwrap() inside a raw "quoted" string"#;
    /* outer comment
       /* nested: buf[i].expect("boom") panic!() */
       still outer: thread_rng()
    */
    let plain = "println!(\"not real\") and partial_cmp";
    let byte = br##"SystemTime::now() in a byte-raw string"##;
    (raw, plain, core::str::from_utf8(byte).unwrap_or(""))
}
