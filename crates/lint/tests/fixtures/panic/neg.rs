//! Negative: typed-error propagation and non-panicking combinators.
fn reply(x: Option<u32>) -> Result<u32, String> {
    let a = x.ok_or_else(|| "missing".to_string())?;
    let b = x.unwrap_or_default();
    let c = x.unwrap_or_else(|| 7);
    Ok(a + b + c)
}
