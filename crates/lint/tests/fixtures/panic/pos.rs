//! Positive: every panic-family pattern, live code in a panic-free zone.
fn reply(x: Option<u32>) -> u32 {
    let a = x.unwrap();
    let b = x.expect("present");
    if a + b == 0 {
        panic!("zero");
    }
    unreachable!("never")
}
