//! A suppression without a justification is rejected AND the hit stands.
fn reply(buf: &[u8], i: usize) -> u8 {
    buf[i] // snaple-lint: allow(index)
}
