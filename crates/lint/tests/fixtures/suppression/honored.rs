//! A justified suppression silences the hit (same-line and next-line).
fn reply(buf: &[u8], i: usize) -> u8 {
    let a = buf[i]; // snaple-lint: allow(index) — caller clamps i to buf.len() - 1
    // snaple-lint: allow(index, panic) — fixture: demonstrates multi-rule next-line form
    let b = buf[i];
    a + b
}
