//! A suppression naming an unknown rule is rejected.
fn reply(x: Option<u32>) -> u32 {
    x.unwrap() // snaple-lint: allow(no-such-rule) — tries to silence with a typo
}
