//! Positive: postfix indexing shapes — ident, call result, range slice.
fn pick(buf: &[u8], rows: &[Vec<u8>], i: usize) -> u8 {
    let a = buf[i];
    let b = rows[i][0];
    let tail = &buf[1..];
    a + b + tail[0]
}
