//! Negative: attributes, macros, array types, slice patterns, .get().
#[derive(Clone)]
struct W([u8; 4]);
fn pick(buf: &[u8]) -> Option<u8> {
    let v = vec![1u8, 2];
    let arr: [u8; 2] = [3, 4];
    if let [first, ..] = buf {
        return Some(*first);
    }
    buf.get(0).copied().or_else(|| v.first().copied()).or(Some(arr.len() as u8))
}
