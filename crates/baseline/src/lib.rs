#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! **BASELINE** — the paper's direct GAS implementation of 2-hop
//! link prediction (§5.3).
//!
//! BASELINE scores every candidate `z ∈ Γ²(u) \ Γ(u)` with a plain Jaccard
//! similarity `sim(Γ(u), Γ(z))`, exactly as Algorithm 1 with the K = 2
//! neighborhood optimization. Because the GAS model only exposes direct
//! neighbors, reaching `Γ(z)` for vertices two hops away forces BASELINE to
//! *propagate and store neighborhoods along every 2-hop path*:
//!
//! 1. step 1 collects `Γ(u)` at every vertex;
//! 2. step 2 replicates each neighbor's neighborhood, giving
//!    `Du.nbr2 = {(v, Γ(v)) | v ∈ Γ(u)}` (paper eq. 7);
//! 3. step 3 pulls those tables across a second hop so `u` finally holds
//!    `Γ(z)` for every `z ∈ Γ²(u)`, then scores and keeps the top-`k`.
//!
//! The nested tables make both state size and gather traffic explode
//! combinatorially — which is precisely the pathology the paper reports:
//! BASELINE is 1.6–4.6× slower than SNAPLE on the small datasets and dies
//! of memory exhaustion on *orkut* and *twitter-rv*. The engine's
//! byte-accurate accounting reproduces both effects
//! ([`snaple_gas::EngineError::ResourceExhausted`]).
//!
//! # Example
//!
//! ```
//! use snaple_baseline::{Baseline, BaselineConfig};
//! use snaple_core::{PredictRequest, Predictor};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 4)]);
//! let cluster = ClusterSpec::type_ii(2);
//! let baseline = Baseline::new(BaselineConfig::new().k(2));
//! let p = Predictor::predict(&baseline, &PredictRequest::new(&g, &cluster))?;
//! assert!(!p.for_vertex(snaple_graph::VertexId::new(0)).is_empty());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

use std::time::Instant;

use snaple_core::similarity::{Jaccard, Similarity};
use snaple_core::topk::top_k_by_score;
use snaple_core::{
    ExecuteRequest, NeighborhoodView, Prediction, Predictor, PrepareRequest, PreparedPredictor,
    SetupStats, SnapleError,
};
use snaple_gas::size::COLLECTION_OVERHEAD;
use snaple_gas::{
    Deployment, Engine, GasStep, GatherCtx, PartitionStrategy, SizeEstimate, WorkTally,
};
use snaple_graph::VertexId;

/// Configuration of a BASELINE run.
#[derive(Clone, Debug)]
pub struct BaselineConfig {
    /// Predictions returned per vertex.
    pub k: usize,
    /// Random seed (drives partitioning).
    pub seed: u64,
    /// Edge placement strategy.
    pub partition: PartitionStrategy,
}

impl BaselineConfig {
    /// Creates a configuration with the paper's defaults (`k = 5`).
    pub fn new() -> Self {
        BaselineConfig {
            k: 5,
            seed: 0xba5e,
            partition: PartitionStrategy::RandomVertexCut,
        }
    }

    /// Sets the number of predictions per vertex.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the partition strategy.
    pub fn partition(mut self, strategy: PartitionStrategy) -> Self {
        self.partition = strategy;
        self
    }
}

impl Default for BaselineConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-vertex state of the BASELINE program.
#[derive(Clone, Debug, Default)]
pub struct BaselineVertex {
    /// Full neighborhood `Γ(u)`, sorted.
    pub gamma: Vec<VertexId>,
    /// Neighbor-of-neighbor tables `{(v, Γ(v))}` — the memory hog.
    pub nbr2: Vec<(VertexId, Vec<VertexId>)>,
    /// Final top-`k` predictions.
    pub predictions: Vec<(VertexId, f32)>,
}

impl SizeEstimate for BaselineVertex {
    fn estimated_bytes(&self) -> u64 {
        let nested: u64 = self
            .nbr2
            .iter()
            .map(|(_, g)| 4 + COLLECTION_OVERHEAD + g.len() as u64 * 4)
            .sum();
        3 * COLLECTION_OVERHEAD
            + self.gamma.len() as u64 * 4
            + nested
            + self.predictions.len() as u64 * 8
    }
}

/// Step 1: collect the full neighborhood `Γ(u)`.
#[derive(Clone, Debug)]
struct CollectStep;

impl GasStep for CollectStep {
    type Vertex = BaselineVertex;
    type Gather = Vec<VertexId>;

    fn name(&self) -> &str {
        "baseline-1-collect"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _ud: &BaselineVertex,
        v: VertexId,
        _vd: &BaselineVertex,
        _work: &mut WorkTally,
    ) -> Option<Vec<VertexId>> {
        Some(vec![v])
    }

    fn sum(&self, mut a: Vec<VertexId>, b: Vec<VertexId>, work: &mut WorkTally) -> Vec<VertexId> {
        work.add(b.len() as u64);
        a.extend(b);
        a
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut BaselineVertex,
        acc: Option<Vec<VertexId>>,
        work: &mut WorkTally,
    ) {
        let mut gamma = acc.unwrap_or_default();
        gamma.sort_unstable();
        gamma.dedup();
        work.add(gamma.len() as u64);
        data.gamma = gamma;
    }
}

/// Step 2: replicate each neighbor's neighborhood (paper eq. 7).
#[derive(Clone, Debug)]
struct PropagateStep;

impl GasStep for PropagateStep {
    type Vertex = BaselineVertex;
    type Gather = Vec<(VertexId, Vec<VertexId>)>;

    fn name(&self) -> &str {
        "baseline-2-propagate"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _ud: &BaselineVertex,
        v: VertexId,
        vd: &BaselineVertex,
        work: &mut WorkTally,
    ) -> Option<Vec<(VertexId, Vec<VertexId>)>> {
        work.add(vd.gamma.len() as u64);
        Some(vec![(v, vd.gamma.clone())])
    }

    fn sum(
        &self,
        mut a: Vec<(VertexId, Vec<VertexId>)>,
        b: Vec<(VertexId, Vec<VertexId>)>,
        work: &mut WorkTally,
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        work.add(b.len() as u64);
        a.extend(b);
        a
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut BaselineVertex,
        acc: Option<Vec<(VertexId, Vec<VertexId>)>>,
        work: &mut WorkTally,
    ) {
        let mut tables = acc.unwrap_or_default();
        tables.sort_unstable_by_key(|&(v, _)| v);
        tables.dedup_by_key(|t| t.0);
        work.add(tables.len() as u64);
        data.nbr2 = tables;
    }
}

/// Step 3: pull neighbor tables across the second hop and score candidates
/// with Jaccard over full neighborhoods.
#[derive(Clone, Debug)]
struct ScoreStep {
    k: usize,
}

impl GasStep for ScoreStep {
    type Vertex = BaselineVertex;
    type Gather = Vec<(VertexId, Vec<VertexId>)>;

    fn name(&self) -> &str {
        "baseline-3-score"
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _ud: &BaselineVertex,
        _v: VertexId,
        vd: &BaselineVertex,
        work: &mut WorkTally,
    ) -> Option<Vec<(VertexId, Vec<VertexId>)>> {
        // Forward v's entire neighbor-of-neighbor table: Γ(z) for z ∈ Γ(v).
        let total: usize = vd.nbr2.iter().map(|(_, g)| g.len() + 1).sum();
        work.add(total as u64);
        if vd.nbr2.is_empty() {
            None
        } else {
            Some(vd.nbr2.clone())
        }
    }

    fn sum(
        &self,
        a: Vec<(VertexId, Vec<VertexId>)>,
        b: Vec<(VertexId, Vec<VertexId>)>,
        work: &mut WorkTally,
    ) -> Vec<(VertexId, Vec<VertexId>)> {
        work.add((a.len() + b.len()) as u64);
        // Sorted merge keyed by candidate id; duplicate candidates carry
        // identical neighbor lists, keep the first.
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].0.cmp(&b[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(a[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j].clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut BaselineVertex,
        acc: Option<Vec<(VertexId, Vec<VertexId>)>>,
        work: &mut WorkTally,
    ) {
        let candidates = acc.unwrap_or_default();
        let u_view = NeighborhoodView::new(&data.gamma, data.gamma.len());
        let mut scored: Vec<(VertexId, f32)> = Vec::with_capacity(candidates.len());
        for (z, gamma_z) in &candidates {
            if *z == u || data.gamma.binary_search(z).is_ok() {
                continue;
            }
            work.add((data.gamma.len() + gamma_z.len()) as u64);
            let z_view = NeighborhoodView::new(gamma_z, gamma_z.len());
            scored.push((*z, Jaccard.score(u_view, z_view)));
        }
        data.predictions = top_k_by_score(scored, self.k);
        // Free the tables: a real implementation would too, after scoring.
        data.nbr2 = Vec::new();
    }
}

/// The BASELINE link predictor.
#[derive(Clone, Debug)]
pub struct Baseline {
    config: BaselineConfig,
}

impl Baseline {
    /// Creates a predictor.
    pub fn new(config: BaselineConfig) -> Self {
        Baseline { config }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> &BaselineConfig {
        &self.config
    }

    fn validate_config(&self) -> Result<(), SnapleError> {
        if self.config.k == 0 {
            return Err(SnapleError::InvalidConfig(
                "k must be at least 1".to_owned(),
            ));
        }
        Ok(())
    }

    /// Runs the three BASELINE steps on a prepared [`Deployment`],
    /// answering one [`ExecuteRequest`] — the *execute* half of the
    /// serving lifecycle, reusing the deployment's partition.
    ///
    /// With [`ExecuteRequest::queries`], the steps execute under
    /// shrinking active-vertex masks (neighborhoods two hops out,
    /// neighbor tables one hop out, scores for the queries alone), which
    /// also shrinks the replicated neighbor-of-neighbor tables — the
    /// memory hog that makes all-vertices BASELINE die on large graphs.
    /// Queried rows are bit-identical to an all-vertices run; all other
    /// rows are empty.
    ///
    /// # Errors
    ///
    /// [`SnapleError::Engine`] on resource exhaustion — expected on large
    /// graphs, which is the paper's headline observation about this
    /// approach; [`SnapleError::InvalidConfig`] if `k` is zero, a query
    /// id is out of range, or attributes are attached (BASELINE is
    /// structural only).
    pub fn execute_on(
        &self,
        deployment: &Deployment<'_>,
        req: &ExecuteRequest<'_>,
    ) -> Result<Prediction, SnapleError> {
        self.validate_config()?;
        let graph = deployment.graph();
        req.validate_for(graph)?;
        if req.attributes().is_some() {
            return Err(SnapleError::InvalidConfig(
                "BASELINE scores structure only and accepts no content attributes".to_owned(),
            ));
        }
        let mut engine = Engine::on(deployment).with_seed(req.seed().unwrap_or(self.config.seed));
        // Shrinking lookahead masks for targeted runs: scores need the
        // queries, neighbor tables their direct neighbors, neighborhoods
        // everything two hops out.
        let score_mask = req.query_mask(graph);
        let propagate_mask = score_mask.as_ref().map(|m| m.expand_out(graph));
        let collect_mask = propagate_mask.as_ref().map(|m| m.expand_out(graph));
        let mut state = vec![BaselineVertex::default(); graph.num_vertices()];
        engine.run_step_masked(&CollectStep, &mut state, collect_mask.as_ref())?;
        engine.run_step_masked(&PropagateStep, &mut state, propagate_mask.as_ref())?;
        engine.run_step_masked(
            &ScoreStep { k: self.config.k },
            &mut state,
            score_mask.as_ref(),
        )?;
        let predictions: Vec<Vec<(VertexId, f32)>> =
            state.into_iter().map(|s| s.predictions).collect();
        Ok(Prediction::from_parts(predictions, engine.into_stats()))
    }
}

/// A BASELINE predictor with its deployment already built.
///
/// Owns its configuration, so epoch forks
/// ([`PreparedPredictor::fork_with_delta`]) detach into fully owned
/// snapshots.
pub struct PreparedBaseline<'a> {
    baseline: Baseline,
    deployment: Deployment<'a>,
    setup: SetupStats,
}

impl PreparedPredictor for PreparedBaseline<'_> {
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError> {
        self.baseline.execute_on(&self.deployment, req)
    }

    fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        Ok(self.deployment.apply_delta(delta)?)
    }

    fn fork_with_delta(
        &self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, snaple_gas::DeltaStats), SnapleError> {
        let mut deployment = self.deployment.detach();
        let applied = deployment.apply_delta(delta)?;
        let fork = PreparedBaseline {
            baseline: self.baseline.clone(),
            deployment,
            setup: self.setup.clone(),
        };
        Ok((Box::new(fork), applied))
    }

    fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl Predictor for Baseline {
    /// Builds the vertex-cut partition once; the returned
    /// [`PreparedBaseline`] answers any number of [`ExecuteRequest`]s
    /// against it.
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] if `k` is zero or the cluster shape
    /// is unusable.
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        self.validate_config()?;
        let started = Instant::now();
        let deployment = Deployment::new(
            req.graph(),
            req.cluster().clone(),
            self.config.partition,
            self.config.seed,
        )?;
        let setup = SetupStats {
            prepare_wall_seconds: started.elapsed().as_secs_f64(),
            partition_build_seconds: deployment.partition_build_seconds(),
            replication_factor: deployment.replication_factor(),
        };
        Ok(Box::new(PreparedBaseline {
            baseline: self.clone(),
            deployment,
            setup,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_core::{PredictRequest, QuerySet};
    use snaple_gas::{ClusterSpec, EngineError};
    use snaple_graph::gen::datasets;
    use snaple_graph::CsrGraph;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn run(config: BaselineConfig, graph: &CsrGraph, cluster: &ClusterSpec) -> Prediction {
        Predictor::predict(&Baseline::new(config), &PredictRequest::new(graph, cluster)).unwrap()
    }

    #[test]
    fn scores_two_hop_candidates_with_jaccard() {
        // 0 → {1, 2}; 1 → {3}; 2 → {3, 4}; 3 → {1}; 4 → {1, 2}
        let g = CsrGraph::from_edges(
            5,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 1),
                (4, 1),
                (4, 2),
            ],
        );
        let p = run(BaselineConfig::new().k(3), &g, &ClusterSpec::type_ii(2));
        let preds = p.for_vertex(v(0));
        // Candidates of 0: 3 (Γ = {1}) and 4 (Γ = {1, 2}).
        // Jaccard(Γ0, Γ3) = |{1}| / |{1,2}| = 0.5
        // Jaccard(Γ0, Γ4) = |{1,2}| / |{1,2}| = 1.0
        assert_eq!(preds[0].0, v(4));
        assert!((preds[0].1 - 1.0).abs() < 1e-6);
        assert_eq!(preds[1].0, v(3));
        assert!((preds[1].1 - 0.5).abs() < 1e-6);
    }

    #[test]
    fn never_predicts_existing_neighbors_or_self() {
        let g = datasets::GOWALLA.emulate(0.004, 17);
        let p = run(BaselineConfig::new(), &g, &ClusterSpec::type_ii(4));
        for (u, preds) in p.iter() {
            for &(z, _) in preds {
                assert_ne!(z, u);
                assert!(!g.has_edge(u, z));
            }
        }
    }

    #[test]
    fn exhausts_memory_on_starved_clusters() {
        let g = datasets::GOWALLA.emulate(0.01, 3);
        let starved = ClusterSpec {
            memory_per_node: 200_000, // 200 kB: state fits, tables do not
            ..ClusterSpec::type_i(4)
        };
        let err = Predictor::predict(
            &Baseline::new(BaselineConfig::new()),
            &PredictRequest::new(&g, &starved),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SnapleError::Engine(EngineError::ResourceExhausted { .. })
        ));
    }

    #[test]
    fn targeted_rows_match_the_full_run_and_cost_less() {
        let g = datasets::GOWALLA.emulate(0.004, 17);
        let cluster = ClusterSpec::type_ii(4);
        let full = run(BaselineConfig::new(), &g, &cluster);
        let queries = QuerySet::sample(g.num_vertices(), g.num_vertices() / 50, 5);
        let baseline = Baseline::new(BaselineConfig::new());
        let targeted = Predictor::predict(
            &baseline,
            &PredictRequest::new(&g, &cluster).with_queries(&queries),
        )
        .unwrap();
        for (u, preds) in targeted.iter() {
            if queries.contains(u) {
                assert_eq!(preds, full.for_vertex(u), "queried row {u}");
            } else {
                assert!(preds.is_empty(), "non-queried row {u}");
            }
        }
        assert!(targeted.stats.total_work_ops() < full.stats.total_work_ops());
        assert!(targeted.stats.peak_memory() < full.stats.peak_memory());
    }

    #[test]
    fn targeted_runs_survive_clusters_that_oom_in_batch_mode() {
        // The serving payoff: a memory budget too small for the full
        // neighbor-table replication still answers small query sets.
        let g = datasets::GOWALLA.emulate(0.01, 3);
        let starved = ClusterSpec {
            memory_per_node: 200_000,
            ..ClusterSpec::type_i(4)
        };
        let baseline = Baseline::new(BaselineConfig::new());
        assert!(matches!(
            Predictor::predict(&baseline, &PredictRequest::new(&g, &starved)),
            Err(SnapleError::Engine(EngineError::ResourceExhausted { .. }))
        ));
        let queries = QuerySet::sample(g.num_vertices(), 5, 1);
        let p = Predictor::predict(
            &baseline,
            &PredictRequest::new(&g, &starved).with_queries(&queries),
        )
        .unwrap();
        assert!(p.total_predictions() > 0);
    }

    #[test]
    fn rejects_content_attributes() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let cluster = ClusterSpec::type_i(1);
        let attrs = vec![vec![1u32]; 2];
        let err = Predictor::predict(
            &Baseline::new(BaselineConfig::new()),
            &PredictRequest::new(&g, &cluster).with_attributes(&attrs),
        )
        .unwrap_err();
        assert!(matches!(err, SnapleError::InvalidConfig(_)));
    }

    #[test]
    fn uses_far_more_memory_and_traffic_than_snaple() {
        use snaple_core::{NamedScore, Snaple, SnapleConfig};
        let g = datasets::GOWALLA.emulate(0.004, 3);
        let cluster = ClusterSpec::type_ii(4);
        let base = run(BaselineConfig::new(), &g, &cluster);
        let snaple = Predictor::predict(
            &Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20))),
            &PredictRequest::new(&g, &cluster),
        )
        .unwrap();
        assert!(
            base.stats.peak_memory() > 3 * snaple.stats.peak_memory(),
            "baseline {} vs snaple {}",
            base.stats.peak_memory(),
            snaple.stats.peak_memory()
        );
        assert!(
            base.stats.total_network_bytes() > 3 * snaple.stats.total_network_bytes(),
            "baseline {} vs snaple {}",
            base.stats.total_network_bytes(),
            snaple.stats.total_network_bytes()
        );
    }

    #[test]
    fn zero_k_is_rejected() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        let cluster = ClusterSpec::type_i(1);
        assert!(matches!(
            Predictor::predict(
                &Baseline::new(BaselineConfig::new().k(0)),
                &PredictRequest::new(&g, &cluster),
            ),
            Err(SnapleError::InvalidConfig(_))
        ));
    }

    #[test]
    fn prepared_execution_matches_one_shot_predicts() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (1, 3), (2, 0)]);
        let cluster = ClusterSpec::type_ii(2);
        let baseline = Baseline::new(BaselineConfig::new().k(2));
        let prepared = baseline
            .prepare(&PrepareRequest::new(&g, &cluster))
            .unwrap();
        let one_shot = Predictor::predict(&baseline, &PredictRequest::new(&g, &cluster)).unwrap();
        for _ in 0..2 {
            let executed = prepared.execute(&ExecuteRequest::new()).unwrap();
            for (u, preds) in executed.iter() {
                assert_eq!(preds, one_shot.for_vertex(u));
            }
            assert_eq!(executed.stats.partition_build_seconds, 0.0);
        }
        assert!(one_shot.stats.partition_build_seconds > 0.0);
        // Structural-only: attributes are rejected at execute time too.
        let attrs = vec![vec![1u32]; 4];
        assert!(matches!(
            prepared.execute(&ExecuteRequest::new().with_attributes(&attrs)),
            Err(SnapleError::InvalidConfig(_))
        ));
    }
}
