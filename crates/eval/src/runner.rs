//! One-call experiment execution.

use std::time::Instant;

use snaple_baseline::{Baseline, BaselineConfig};
use snaple_cassovary::{RandomWalkConfig, RandomWalkPpr};
use snaple_core::{Prediction, Snaple, SnapleConfig, SnapleError};
use snaple_gas::{ClusterSpec, EngineError};
use snaple_graph::CsrGraph;

use crate::metrics::recall;
use crate::protocol::HoldOut;

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The run completed and produced predictions.
    Completed,
    /// A simulated node ran out of memory (the paper's "fails due to
    /// resource exhaustion").
    OutOfMemory {
        /// Human-readable detail from the engine.
        detail: String,
    },
    /// Any other failure.
    Failed {
        /// Error description.
        detail: String,
    },
}

impl Outcome {
    /// Whether the run completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }
}

/// The result of one experimental run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label of the predictor/configuration ("linearSum", "BASELINE", ...).
    pub label: String,
    /// Recall against the hold-out (0 when the run failed).
    pub recall: f64,
    /// Simulated cluster seconds (cost-model output; 0 when failed).
    pub simulated_seconds: f64,
    /// Real wall-clock seconds spent executing on the host (diagnostic).
    pub wall_seconds: f64,
    /// Total simulated network traffic in bytes.
    pub network_bytes: u64,
    /// Peak simulated per-node memory in bytes.
    pub peak_memory: u64,
    /// How the run ended.
    pub outcome: Outcome,
}

impl Measurement {
    fn from_result(
        label: String,
        started: Instant,
        result: Result<Prediction, SnapleError>,
        holdout: &HoldOut,
    ) -> Measurement {
        let wall = started.elapsed().as_secs_f64();
        match result {
            Ok(prediction) => Measurement {
                label,
                recall: recall(&prediction, holdout),
                simulated_seconds: prediction.simulated_seconds(),
                wall_seconds: wall,
                network_bytes: prediction.stats.total_network_bytes(),
                peak_memory: prediction.stats.peak_memory(),
                outcome: Outcome::Completed,
            },
            Err(SnapleError::Engine(e @ EngineError::ResourceExhausted { .. })) => Measurement {
                label,
                recall: 0.0,
                simulated_seconds: 0.0,
                wall_seconds: wall,
                network_bytes: 0,
                peak_memory: 0,
                outcome: Outcome::OutOfMemory {
                    detail: e.to_string(),
                },
            },
            Err(e) => Measurement {
                label,
                recall: 0.0,
                simulated_seconds: 0.0,
                wall_seconds: wall,
                network_bytes: 0,
                peak_memory: 0,
                outcome: Outcome::Failed {
                    detail: e.to_string(),
                },
            },
        }
    }
}

/// Executes predictors against a fixed train/test split.
///
/// The runner borrows the hold-out so that expensive dataset generation
/// happens once per experiment, as in the paper's setup where graph
/// loading time is excluded from measurements (§5.2). All predictors run
/// on the *training* graph.
#[derive(Debug)]
pub struct Runner<'a> {
    holdout: &'a HoldOut,
}

impl<'a> Runner<'a> {
    /// Creates a runner over a prepared split.
    pub fn new(holdout: &'a HoldOut) -> Self {
        Runner { holdout }
    }

    /// The training graph predictors run on.
    pub fn train_graph(&self) -> &CsrGraph {
        &self.holdout.train
    }

    /// Runs SNAPLE with `config` on `cluster`.
    pub fn run_snaple(
        &self,
        label: &str,
        config: SnapleConfig,
        cluster: &ClusterSpec,
    ) -> Measurement {
        let started = Instant::now();
        let result = Snaple::new(config).predict(&self.holdout.train, cluster);
        Measurement::from_result(label.to_owned(), started, result, self.holdout)
    }

    /// Runs the BASELINE predictor on `cluster`.
    pub fn run_baseline(&self, config: BaselineConfig, cluster: &ClusterSpec) -> Measurement {
        let started = Instant::now();
        let result = Baseline::new(config).predict(&self.holdout.train, cluster);
        Measurement::from_result("BASELINE".to_owned(), started, result, self.holdout)
    }

    /// Runs the Cassovary-style random-walk predictor on `machine`.
    pub fn run_cassovary(
        &self,
        label: &str,
        config: RandomWalkConfig,
        machine: &ClusterSpec,
    ) -> Measurement {
        let started = Instant::now();
        let prediction = RandomWalkPpr::new(config).predict(&self.holdout.train, machine);
        Measurement::from_result(label.to_owned(), started, Ok(prediction), self.holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::EvalDataset;
    use snaple_core::ScoreSpec;

    fn split() -> (CsrGraph, HoldOut) {
        EvalDataset::by_name("gowalla")
            .unwrap()
            .scaled_by(0.02)
            .load_with_holdout(7, 1)
    }

    #[test]
    fn snaple_run_produces_positive_recall_on_clustered_graphs() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let m = runner.run_snaple(
            "linearSum",
            SnapleConfig::new(ScoreSpec::LinearSum).klocal(Some(20)),
            &ClusterSpec::type_ii(4),
        );
        assert!(m.outcome.is_completed());
        assert!(m.recall > 0.05, "recall {}", m.recall);
        assert!(m.simulated_seconds > 0.0);
        assert!(m.wall_seconds > 0.0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let starved = ClusterSpec {
            memory_per_node: 100_000,
            ..ClusterSpec::type_ii(4)
        };
        let m = runner.run_baseline(BaselineConfig::new(), &starved);
        assert!(matches!(m.outcome, Outcome::OutOfMemory { .. }), "{:?}", m.outcome);
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn cassovary_runs_and_scores() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let m = runner.run_cassovary(
            "PPR w=50 d=3",
            RandomWalkConfig::new().walks(50).depth(3),
            &ClusterSpec::single_machine(20, 128 << 30),
        );
        assert!(m.outcome.is_completed());
        assert!(m.recall > 0.0, "recall {}", m.recall);
    }

    #[test]
    fn predictors_run_on_train_not_full_graph() {
        let (graph, holdout) = split();
        let runner = Runner::new(&holdout);
        assert_eq!(runner.train_graph().num_edges(), holdout.train.num_edges());
        assert!(runner.train_graph().num_edges() < graph.num_edges());
    }
}
