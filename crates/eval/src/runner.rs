//! One-call experiment execution.

use std::time::Instant;

use snaple_core::{PredictRequest, Prediction, Predictor, SnapleError};
use snaple_gas::{ClusterSpec, EngineError};
use snaple_graph::CsrGraph;

use crate::metrics::recall;
use crate::protocol::HoldOut;

/// How a run ended.
#[derive(Clone, Debug, PartialEq)]
pub enum Outcome {
    /// The run completed and produced predictions.
    Completed,
    /// A simulated node ran out of memory (the paper's "fails due to
    /// resource exhaustion").
    OutOfMemory {
        /// Human-readable detail from the engine.
        detail: String,
    },
    /// Any other failure.
    Failed {
        /// Error description.
        detail: String,
    },
}

impl Outcome {
    /// Whether the run completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed)
    }
}

/// The result of one experimental run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label of the predictor/configuration ("linearSum", "BASELINE", ...).
    pub label: String,
    /// Recall against the hold-out (0 when the run failed).
    pub recall: f64,
    /// Simulated cluster seconds (cost-model output; 0 when failed).
    pub simulated_seconds: f64,
    /// Real wall-clock seconds spent executing on the host (diagnostic).
    pub wall_seconds: f64,
    /// Total simulated network traffic in bytes.
    pub network_bytes: u64,
    /// Peak simulated per-node memory in bytes.
    pub peak_memory: u64,
    /// Replication factor of the partition the run executed on (0 when
    /// failed).
    pub replication_factor: f64,
    /// Host wall-clock seconds this run spent building its vertex-cut
    /// partition — zero for runs executing on a prepared deployment,
    /// which is how experiment tables surface the prepare-once
    /// amortization win.
    pub partition_seconds: f64,
    /// How the run ended.
    pub outcome: Outcome,
}

impl Measurement {
    fn from_result(
        label: String,
        started: Instant,
        result: Result<Prediction, SnapleError>,
        holdout: &HoldOut,
    ) -> Measurement {
        let wall = started.elapsed().as_secs_f64();
        match result {
            Ok(prediction) => Measurement {
                label,
                recall: recall(&prediction, holdout),
                simulated_seconds: prediction.simulated_seconds(),
                wall_seconds: wall,
                network_bytes: prediction.stats.total_network_bytes(),
                peak_memory: prediction.stats.peak_memory(),
                replication_factor: prediction.stats.replication_factor,
                partition_seconds: prediction.stats.partition_build_seconds,
                outcome: Outcome::Completed,
            },
            Err(SnapleError::Engine(e @ EngineError::ResourceExhausted { .. })) => Measurement {
                label,
                recall: 0.0,
                simulated_seconds: 0.0,
                wall_seconds: wall,
                network_bytes: 0,
                peak_memory: 0,
                replication_factor: 0.0,
                partition_seconds: 0.0,
                outcome: Outcome::OutOfMemory {
                    detail: e.to_string(),
                },
            },
            Err(e) => Measurement {
                label,
                recall: 0.0,
                simulated_seconds: 0.0,
                wall_seconds: wall,
                network_bytes: 0,
                peak_memory: 0,
                replication_factor: 0.0,
                partition_seconds: 0.0,
                outcome: Outcome::Failed {
                    detail: e.to_string(),
                },
            },
        }
    }
}

/// Executes predictors against a fixed train/test split.
///
/// The runner borrows the hold-out so that expensive dataset generation
/// happens once per experiment, as in the paper's setup where graph
/// loading time is excluded from measurements (§5.2). All predictors run
/// on the *training* graph.
///
/// Every backend goes through the same generic [`Runner::run`]; build the
/// request over the training graph with [`Runner::request`]:
///
/// ```
/// use snaple_core::{NamedScore, Snaple, SnapleConfig};
/// use snaple_eval::{EvalDataset, Runner};
/// use snaple_gas::ClusterSpec;
///
/// let (_graph, holdout) = EvalDataset::by_name("gowalla")
///     .unwrap()
///     .scaled_by(0.01)
///     .load_with_holdout(7, 1);
/// let runner = Runner::new(&holdout);
/// let cluster = ClusterSpec::type_ii(4);
/// let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
/// let m = runner.run("linearSum", &snaple, &runner.request(&cluster));
/// assert!(m.outcome.is_completed());
/// ```
#[derive(Debug)]
pub struct Runner<'a> {
    holdout: &'a HoldOut,
}

impl<'a> Runner<'a> {
    /// Creates a runner over a prepared split.
    pub fn new(holdout: &'a HoldOut) -> Self {
        Runner { holdout }
    }

    /// The training graph predictors run on.
    pub fn train_graph(&self) -> &'a CsrGraph {
        &self.holdout.train
    }

    /// Builds a request over the training graph for `cluster`; attach
    /// queries or attributes with the request's `with_*` builders.
    pub fn request<'r>(&self, cluster: &'r ClusterSpec) -> PredictRequest<'r>
    where
        'a: 'r,
    {
        PredictRequest::new(&self.holdout.train, cluster)
    }

    /// Runs any [`Predictor`] on `req` and measures it against the
    /// hold-out.
    ///
    /// Failures become [`Outcome`]s rather than errors, mirroring how the
    /// paper reports OOM crashes as missing data points.
    pub fn run(
        &self,
        label: &str,
        predictor: &dyn Predictor,
        req: &PredictRequest<'_>,
    ) -> Measurement {
        let started = Instant::now();
        let result = predictor.predict(req);
        Measurement::from_result(label.to_owned(), started, result, self.holdout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::EvalDataset;
    use snaple_baseline::{Baseline, BaselineConfig};
    use snaple_cassovary::{RandomWalkConfig, RandomWalkPpr};
    use snaple_core::{NamedScore, QuerySet, Snaple, SnapleConfig};

    fn split() -> (CsrGraph, HoldOut) {
        EvalDataset::by_name("gowalla")
            .unwrap()
            .scaled_by(0.02)
            .load_with_holdout(7, 1)
    }

    #[test]
    fn snaple_run_produces_positive_recall_on_clustered_graphs() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let cluster = ClusterSpec::type_ii(4);
        let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
        let m = runner.run("linearSum", &snaple, &runner.request(&cluster));
        assert!(m.outcome.is_completed());
        assert!(m.recall > 0.05, "recall {}", m.recall);
        assert!(m.simulated_seconds > 0.0);
        assert!(m.wall_seconds > 0.0);
        assert!(m.replication_factor >= 1.0);
        assert!(
            m.partition_seconds > 0.0,
            "one-shot runs pay the partition build"
        );
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let starved = ClusterSpec {
            memory_per_node: 100_000,
            ..ClusterSpec::type_ii(4)
        };
        let m = runner.run(
            "BASELINE",
            &Baseline::new(BaselineConfig::new()),
            &runner.request(&starved),
        );
        assert!(
            matches!(m.outcome, Outcome::OutOfMemory { .. }),
            "{:?}",
            m.outcome
        );
        assert_eq!(m.recall, 0.0);
    }

    #[test]
    fn invalid_configs_fail_without_panicking() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let machine = ClusterSpec::single_machine(20, 128 << 30);
        let m = runner.run(
            "PPR w=0",
            &RandomWalkPpr::new(RandomWalkConfig::new().walks(0)),
            &runner.request(&machine),
        );
        assert!(
            matches!(m.outcome, Outcome::Failed { .. }),
            "{:?}",
            m.outcome
        );
    }

    #[test]
    fn cassovary_runs_and_scores() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let machine = ClusterSpec::single_machine(20, 128 << 30);
        let m = runner.run(
            "PPR w=50 d=3",
            &RandomWalkPpr::new(RandomWalkConfig::new().walks(50).depth(3)),
            &runner.request(&machine),
        );
        assert!(m.outcome.is_completed());
        assert!(m.recall > 0.0, "recall {}", m.recall);
    }

    #[test]
    fn one_runner_serves_all_backends_including_targeted_requests() {
        let (_graph, holdout) = split();
        let runner = Runner::new(&holdout);
        let cluster = ClusterSpec::type_ii(4);
        let queries = QuerySet::sample(runner.train_graph().num_vertices(), 100, 3);
        let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
        let baseline = Baseline::new(BaselineConfig::new());
        let ppr = RandomWalkPpr::new(RandomWalkConfig::new().walks(20).depth(3));
        let backends: [(&str, &dyn Predictor); 3] =
            [("snaple", &snaple), ("baseline", &baseline), ("ppr", &ppr)];
        for (label, predictor) in backends {
            let full = runner.run(label, predictor, &runner.request(&cluster));
            let targeted = runner.run(
                label,
                predictor,
                &runner.request(&cluster).with_queries(&queries),
            );
            assert!(full.outcome.is_completed(), "{label}");
            assert!(targeted.outcome.is_completed(), "{label}");
            assert!(
                targeted.simulated_seconds < full.simulated_seconds,
                "{label}: targeted {} !< full {}",
                targeted.simulated_seconds,
                full.simulated_seconds
            );
        }
    }

    #[test]
    fn predictors_run_on_train_not_full_graph() {
        let (graph, holdout) = split();
        let runner = Runner::new(&holdout);
        assert_eq!(runner.train_graph().num_edges(), holdout.train.num_edges());
        assert!(runner.train_graph().num_edges() < graph.num_edges());
    }
}
