//! The evaluation dataset registry.
//!
//! Wraps the emulators of [`snaple_graph::gen::datasets`] with the scales
//! the reproduction's experiments run at by default. Every experiment
//! binary accepts `--scale <f>` to multiply these defaults, so the same
//! harness can run anywhere from smoke-test size to (hardware permitting)
//! the paper's full size at `--scale` large enough.

use snaple_graph::gen::datasets::{self, DatasetSpec};
use snaple_graph::CsrGraph;

use crate::protocol::HoldOut;

/// A dataset selected for evaluation at a concrete scale.
#[derive(Clone, Debug)]
pub struct EvalDataset {
    /// The underlying paper dataset.
    pub spec: &'static DatasetSpec,
    /// Scale relative to the paper's dataset size.
    pub scale: f64,
}

impl EvalDataset {
    /// Creates a dataset reference at the spec's suggested scale.
    pub fn suggested(spec: &'static DatasetSpec) -> Self {
        EvalDataset {
            spec,
            scale: spec.suggested_scale,
        }
    }

    /// Looks up a dataset by paper name at its suggested scale.
    pub fn by_name(name: &str) -> Option<Self> {
        datasets::by_name(name).map(Self::suggested)
    }

    /// All five datasets at their suggested scales (Table 4 order).
    pub fn all() -> Vec<Self> {
        datasets::all().into_iter().map(Self::suggested).collect()
    }

    /// The three datasets the paper runs BASELINE on (Table 5).
    pub fn table5() -> Vec<Self> {
        ["gowalla", "pokec", "livejournal"]
            .into_iter()
            .filter_map(Self::by_name)
            .collect()
    }

    /// The three large datasets of the scalability study (Figure 5).
    pub fn scalability() -> Vec<Self> {
        ["livejournal", "orkut", "twitter-rv"]
            .into_iter()
            .filter_map(Self::by_name)
            .collect()
    }

    /// Multiplies the scale (from `--scale` flags).
    pub fn scaled_by(mut self, factor: f64) -> Self {
        self.scale *= factor;
        self
    }

    /// Short name for tables.
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// Generates the graph.
    pub fn load(&self, seed: u64) -> CsrGraph {
        self.spec.emulate(self.scale, seed)
    }

    /// Generates the graph and the hold-out split in one call.
    pub fn load_with_holdout(&self, seed: u64, removals_per_vertex: usize) -> (CsrGraph, HoldOut) {
        let graph = self.load(seed);
        let holdout = HoldOut::remove_edges(&graph, removals_per_vertex, seed ^ 0x0ed6e);
        (graph, holdout)
    }

    /// Memory-capacity scale for clusters processing this dataset: per-node
    /// memory is multiplied by the dataset scale so that out-of-memory
    /// crossovers land on the same datasets as in the paper (DESIGN.md §2).
    pub fn memory_scale(&self) -> f64 {
        self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_paper_tables() {
        assert_eq!(EvalDataset::all().len(), 5);
        assert_eq!(
            EvalDataset::table5()
                .iter()
                .map(EvalDataset::name)
                .collect::<Vec<_>>(),
            vec!["gowalla", "pokec", "livejournal"]
        );
        assert_eq!(
            EvalDataset::scalability()
                .iter()
                .map(EvalDataset::name)
                .collect::<Vec<_>>(),
            vec!["livejournal", "orkut", "twitter-rv"]
        );
    }

    #[test]
    fn by_name_and_scaling() {
        let d = EvalDataset::by_name("gowalla").unwrap();
        assert_eq!(d.scale, d.spec.suggested_scale);
        let half = d.clone().scaled_by(0.5);
        assert!((half.scale - d.scale * 0.5).abs() < 1e-12);
        assert!(EvalDataset::by_name("unknown").is_none());
    }

    #[test]
    fn load_with_holdout_is_consistent() {
        let d = EvalDataset::by_name("gowalla").unwrap().scaled_by(0.02);
        let (graph, holdout) = d.load_with_holdout(3, 1);
        assert_eq!(graph.num_vertices(), holdout.train.num_vertices());
        assert!(holdout.num_removed() > 0);
        assert_eq!(
            graph.num_edges(),
            holdout.train.num_edges() + holdout.num_removed()
        );
    }
}
