//! Plain-text result tables.
//!
//! Every experiment binary renders its results through [`TextTable`] so
//! that the console output mirrors the corresponding table or figure series
//! of the paper, and `--out` directories receive the same data as TSV for
//! plotting.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// ```
/// use snaple_eval::TextTable;
/// let mut t = TextTable::new(vec!["dataset", "recall"]);
/// t.row(vec!["gowalla".into(), "0.28".into()]);
/// let s = t.render();
/// assert!(s.contains("gowalla"));
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders an aligned plain-text table.
    pub fn render(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}", w = *w);
            }
            // Avoid trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders tab-separated values (header row included).
    pub fn to_tsv(&self) -> String {
        let mut out = self.headers.join("\t");
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join("\t"));
            out.push('\n');
        }
        out
    }

    /// Renders a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("| {} |\n", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with three significant decimals ("0.283").
pub fn fmt_recall(r: f64) -> String {
    format!("{r:.3}")
}

/// Formats seconds adaptively ("1.1", "12.8", "585").
pub fn fmt_seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else {
        format!("{s:.1}")
    }
}

/// Formats a ratio as the paper does in Table 5 brackets ("(2.3)").
pub fn fmt_gain(g: f64) -> String {
    if g >= 100.0 {
        format!("({g:.0})")
    } else {
        format!("({g:.1})")
    }
}

/// Formats seconds as milliseconds ("4.2"), for setup-cost columns where
/// whole seconds would round everything to zero.
pub fn fmt_millis(s: f64) -> String {
    format!("{:.1}", s * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Both value columns start at the same offset.
        let off_a = lines[2].find('1').unwrap();
        let off_b = lines[3].find('2').unwrap();
        assert_eq!(off_a, off_b);
    }

    #[test]
    fn tsv_and_markdown_have_all_rows() {
        let mut t = TextTable::new(vec!["x"]);
        t.row(vec!["1".into()]).row(vec!["2".into()]);
        assert_eq!(t.to_tsv().lines().count(), 3);
        assert_eq!(t.to_markdown().lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_recall(0.2834), "0.283");
        assert_eq!(fmt_seconds(585.2), "585");
        assert_eq!(fmt_seconds(1.06), "1.1");
        assert_eq!(fmt_gain(2.31), "(2.3)");
        assert_eq!(fmt_gain(109.0), "(109)");
        assert_eq!(fmt_millis(0.0042), "4.2");
    }
}
