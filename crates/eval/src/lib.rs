#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Evaluation harness for the SNAPLE reproduction.
//!
//! Implements the paper's evaluation protocol (§5.2) end to end:
//!
//! * [`protocol`] — the hold-out construction: remove `r` random outgoing
//!   edges from every vertex with `|Γ(u)| > 3`, keeping at least one edge,
//!   and rebuild the training graph;
//! * [`metrics`] — recall (the paper's primary metric; precision is
//!   proportional under the fixed-`k` protocol and provided for
//!   completeness) plus mean reciprocal rank as an extra diagnostic;
//! * [`datasets`] — the five emulated datasets with their default
//!   reproduction scales;
//! * [`runner`] — one-call execution of a predictor on a dataset returning
//!   a [`runner::Measurement`] (recall, simulated time, traffic, memory,
//!   or the OOM outcome);
//! * [`table`] — plain-text/markdown/TSV tables used by every experiment
//!   binary to print the same rows the paper reports.

pub mod datasets;
pub mod metrics;
pub mod protocol;
pub mod runner;
pub mod table;

pub use datasets::EvalDataset;
pub use metrics::{
    mean_reciprocal_rank, mean_reciprocal_rank_for, precision, precision_for, recall, recall_at_k,
    recall_for,
};
pub use protocol::HoldOut;
pub use runner::{Measurement, Outcome, Runner};
pub use table::TextTable;
