//! The paper's hold-out protocol (§5.2).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::SeedableRng;

use snaple_graph::sample::sample_indices;
use snaple_graph::{CsrGraph, GraphBuilder, VertexId};

/// Minimum out-degree for a vertex to participate in edge removal: the
/// paper removes edges from "each vertex with `|Γ(u)| > 3`".
pub const MIN_DEGREE_FOR_REMOVAL: usize = 4;

/// A train/test split produced by [`HoldOut::remove_edges`].
#[derive(Clone, Debug)]
pub struct HoldOut {
    /// The graph with test edges removed.
    pub train: CsrGraph,
    /// Removed (held-out) out-edges per source vertex, each list sorted.
    pub removed: HashMap<VertexId, Vec<VertexId>>,
}

impl HoldOut {
    /// Removes `per_vertex` random outgoing edges from every vertex with
    /// out-degree `> 3` (paper §5.2/§5.8). Vertices with fewer than
    /// `per_vertex + 1` edges keep one edge and lose the rest, mirroring
    /// the paper: "if a vertex has less edges than the number to be
    /// removed, we removed all the edges except one".
    ///
    /// Deterministic for a given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `per_vertex` is zero.
    pub fn remove_edges(graph: &CsrGraph, per_vertex: usize, seed: u64) -> HoldOut {
        assert!(per_vertex >= 1, "must remove at least one edge per vertex");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut removed: HashMap<VertexId, Vec<VertexId>> = HashMap::new();
        let mut builder = GraphBuilder::with_capacity(graph.num_edges());
        builder.reserve_vertices(graph.num_vertices());
        for u in graph.vertices() {
            let nbrs = graph.out_neighbors(u);
            if nbrs.len() < MIN_DEGREE_FOR_REMOVAL {
                for v in nbrs {
                    builder.add_edge(u.as_u32(), v.as_u32());
                }
                continue;
            }
            let to_remove = per_vertex.min(nbrs.len() - 1);
            let picked = sample_indices(nbrs.len(), to_remove, &mut rng);
            let mut held: Vec<VertexId> = picked.iter().map(|&i| nbrs[i]).collect();
            held.sort_unstable();
            let mut pick_iter = picked.iter().peekable();
            for (i, v) in nbrs.iter().enumerate() {
                if pick_iter.peek() == Some(&&i) {
                    pick_iter.next();
                    continue;
                }
                builder.add_edge(u.as_u32(), v.as_u32());
            }
            removed.insert(u, held);
        }
        HoldOut {
            train: builder.build(),
            removed,
        }
    }

    /// Total number of held-out edges.
    pub fn num_removed(&self) -> usize {
        self.removed.values().map(Vec::len).sum()
    }

    /// Whether `(u, v)` was held out.
    pub fn is_removed(&self, u: VertexId, v: VertexId) -> bool {
        self.removed
            .get(&u)
            .is_some_and(|vs| vs.binary_search(&v).is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::gen::datasets;

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    #[test]
    fn removes_one_edge_from_high_degree_vertices_only() {
        // Vertex 0 has degree 4 (eligible), vertex 1 degree 2 (not).
        let g = CsrGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (1, 3)]);
        let h = HoldOut::remove_edges(&g, 1, 7);
        assert_eq!(h.num_removed(), 1);
        assert_eq!(h.train.out_degree(v(0)), 3);
        assert_eq!(h.train.out_degree(v(1)), 2);
        let held = &h.removed[&v(0)][0];
        assert!(!h.train.has_edge(v(0), *held));
        assert!(h.is_removed(v(0), *held));
        assert!(!h.is_removed(v(1), v(2)));
    }

    #[test]
    fn vertex_count_is_preserved() {
        let g = datasets::GOWALLA.emulate(0.003, 1);
        let h = HoldOut::remove_edges(&g, 1, 3);
        assert_eq!(h.train.num_vertices(), g.num_vertices());
        assert_eq!(h.train.num_edges() + h.num_removed(), g.num_edges());
    }

    #[test]
    fn multiple_removals_keep_at_least_one_edge() {
        // Degree-4 vertex, ask to remove 10: must keep exactly one.
        let g = CsrGraph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let h = HoldOut::remove_edges(&g, 10, 1);
        assert_eq!(h.train.out_degree(v(0)), 1);
        assert_eq!(h.removed[&v(0)].len(), 3);
    }

    #[test]
    fn removal_counts_scale_with_per_vertex() {
        let g = datasets::POKEC.emulate(0.002, 2);
        let h1 = HoldOut::remove_edges(&g, 1, 5);
        let h3 = HoldOut::remove_edges(&g, 3, 5);
        assert!(h3.num_removed() > 2 * h1.num_removed());
    }

    #[test]
    fn deterministic_for_a_seed() {
        let g = datasets::GOWALLA.emulate(0.002, 2);
        let a = HoldOut::remove_edges(&g, 1, 9);
        let b = HoldOut::remove_edges(&g, 1, 9);
        assert_eq!(a.removed, b.removed);
        let c = HoldOut::remove_edges(&g, 1, 10);
        assert_ne!(a.removed, c.removed);
    }

    #[test]
    fn removed_edges_really_existed() {
        let g = datasets::GOWALLA.emulate(0.002, 2);
        let h = HoldOut::remove_edges(&g, 2, 9);
        for (&u, held) in &h.removed {
            for &z in held {
                assert!(g.has_edge(u, z), "({u}, {z}) not in the original graph");
                assert!(!h.train.has_edge(u, z), "({u}, {z}) still in train");
            }
        }
    }
}
