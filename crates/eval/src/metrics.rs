//! Prediction quality metrics.

use snaple_core::{Prediction, QuerySet};
use snaple_graph::VertexId;

use crate::protocol::HoldOut;

/// The hold-out rows a metric ranges over: all sources, or only the
/// queried ones for targeted (query-subset) runs.
fn selected<'a>(
    holdout: &'a HoldOut,
    queries: Option<&'a QuerySet>,
) -> impl Iterator<Item = (VertexId, &'a [VertexId])> {
    holdout
        .removed
        .iter()
        .filter(move |(u, _)| queries.is_none_or(|q| q.contains(**u)))
        .map(|(&u, held)| (u, held.as_slice()))
}

/// Recall: the proportion of held-out edges that appear among the returned
/// predictions — the paper's primary quality metric (§5.2).
///
/// Returns `0.0` when nothing was held out.
pub fn recall(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    recall_for(prediction, holdout, None)
}

/// [`recall`] restricted to the sources in `queries` (all sources when
/// `None`): hits at queried vertices over held-out edges at queried
/// vertices — the right denominator for judging a targeted run.
pub fn recall_for(prediction: &Prediction, holdout: &HoldOut, queries: Option<&QuerySet>) -> f64 {
    let mut hits = 0usize;
    let mut total = 0usize;
    for (u, held) in selected(holdout, queries) {
        total += held.len();
        let preds = prediction.for_vertex(u);
        hits += preds
            .iter()
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    if total == 0 {
        return 0.0;
    }
    hits as f64 / total as f64
}

/// Recall considering only each vertex's first `k` predictions.
///
/// Because top-`k` lists nest (`top-5 ⊂ top-10 ⊂ …`), a single run with a
/// large `k` can regenerate the paper's Figure 9 sweep by truncation
/// instead of re-running the predictor once per `k`.
pub fn recall_at_k(prediction: &Prediction, holdout: &HoldOut, k: usize) -> f64 {
    let total = holdout.num_removed();
    if total == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (&u, held) in &holdout.removed {
        let preds = prediction.for_vertex(u);
        hits += preds
            .iter()
            .take(k)
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    hits as f64 / total as f64
}

/// Precision: the proportion of returned predictions that are held-out
/// edges. Under the paper's protocol (fixed removals, fixed `k`) precision
/// is proportional to recall and therefore "not relevant in our set-up"
/// (§5.2); it is provided for completeness.
pub fn precision(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    precision_for(prediction, holdout, None)
}

/// [`precision`] restricted to the sources in `queries` (all sources when
/// `None`).
pub fn precision_for(
    prediction: &Prediction,
    holdout: &HoldOut,
    queries: Option<&QuerySet>,
) -> f64 {
    let mut hits = 0usize;
    let mut returned = 0usize;
    for (u, held) in selected(holdout, queries) {
        let preds = prediction.for_vertex(u);
        returned += preds.len();
        hits += preds
            .iter()
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    if returned == 0 {
        0.0
    } else {
        hits as f64 / returned as f64
    }
}

/// Mean reciprocal rank of the first held-out edge in each vertex's
/// prediction list (an extra diagnostic beyond the paper).
pub fn mean_reciprocal_rank(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    mean_reciprocal_rank_for(prediction, holdout, None)
}

/// [`mean_reciprocal_rank`] restricted to the sources in `queries` (all
/// sources when `None`).
pub fn mean_reciprocal_rank_for(
    prediction: &Prediction,
    holdout: &HoldOut,
    queries: Option<&QuerySet>,
) -> f64 {
    let mut total = 0.0;
    let mut sources = 0usize;
    for (u, held) in selected(holdout, queries) {
        sources += 1;
        let preds = prediction.for_vertex(u);
        if let Some(rank) = preds
            .iter()
            .position(|(z, _)| held.binary_search(z).is_ok())
        {
            total += 1.0 / (rank + 1) as f64;
        }
    }
    if sources == 0 {
        return 0.0;
    }
    total / sources as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_core::Prediction;
    use snaple_gas::RunStats;
    use snaple_graph::{CsrGraph, VertexId};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn holdout_with(removed: &[(u32, &[u32])]) -> HoldOut {
        let train = CsrGraph::from_edges(10, &[]);
        let mut map = std::collections::HashMap::new();
        for &(u, vs) in removed {
            map.insert(v(u), vs.iter().copied().map(v).collect());
        }
        HoldOut {
            train,
            removed: map,
        }
    }

    fn prediction_with(per_vertex: &[(u32, &[u32])]) -> Prediction {
        let mut preds: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); 10];
        for &(u, vs) in per_vertex {
            preds[u as usize] = vs
                .iter()
                .enumerate()
                .map(|(i, &z)| (v(z), 1.0 - i as f32 * 0.1))
                .collect();
        }
        Prediction::from_parts(preds, RunStats::default())
    }

    #[test]
    fn recall_counts_hits_over_removed() {
        let h = holdout_with(&[(0, &[5, 6]), (1, &[7])]);
        let p = prediction_with(&[(0, &[5, 9]), (1, &[8])]);
        // 1 hit of 3 removed.
        assert!((recall(&p, &h) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_zero_recall() {
        let h = holdout_with(&[(0, &[5])]);
        assert_eq!(recall(&prediction_with(&[(0, &[5])]), &h), 1.0);
        assert_eq!(recall(&prediction_with(&[(0, &[6])]), &h), 0.0);
        let empty = holdout_with(&[]);
        assert_eq!(recall(&prediction_with(&[]), &empty), 0.0);
    }

    #[test]
    fn precision_normalizes_by_returned() {
        let h = holdout_with(&[(0, &[5, 6])]);
        let p = prediction_with(&[(0, &[5, 9, 8, 7])]);
        assert!((precision(&p, &h) - 0.25).abs() < 1e-12);
        assert_eq!(precision(&prediction_with(&[]), &h), 0.0);
    }

    #[test]
    fn mrr_rewards_early_hits() {
        let h = holdout_with(&[(0, &[9])]);
        let first = prediction_with(&[(0, &[9, 8])]);
        let second = prediction_with(&[(0, &[8, 9])]);
        assert!((mean_reciprocal_rank(&first, &h) - 1.0).abs() < 1e-12);
        assert!((mean_reciprocal_rank(&second, &h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_at_k_truncates() {
        let h = holdout_with(&[(0, &[9])]);
        let p = prediction_with(&[(0, &[8, 9])]);
        assert_eq!(recall_at_k(&p, &h, 1), 0.0);
        assert_eq!(recall_at_k(&p, &h, 2), 1.0);
        // Full-list recall agrees with a k covering everything.
        assert_eq!(recall(&p, &h), recall_at_k(&p, &h, 10));
    }

    #[test]
    fn query_restricted_metrics_use_the_subset_denominator() {
        use snaple_core::QuerySet;
        // Sources 0 and 3 have removals; a targeted run answered only 0.
        let h = holdout_with(&[(0, &[5, 6]), (3, &[4])]);
        let p = prediction_with(&[(0, &[5, 9])]);
        // All-vertices recall counts 3's miss: 1 hit of 3 removed.
        assert!((recall(&p, &h) - 1.0 / 3.0).abs() < 1e-12);
        // Restricted to the queried source, the denominator is its own
        // removals only: 1 hit of 2.
        let q = QuerySet::from_indices([0]);
        assert!((recall_for(&p, &h, Some(&q)) - 0.5).abs() < 1e-12);
        assert!((precision_for(&p, &h, Some(&q)) - 0.5).abs() < 1e-12);
        assert!((mean_reciprocal_rank_for(&p, &h, Some(&q)) - 1.0).abs() < 1e-12);
        // A query set with no held-out edges yields zero, not NaN.
        let empty_q = QuerySet::from_indices([7]);
        assert_eq!(recall_for(&p, &h, Some(&empty_q)), 0.0);
        assert_eq!(mean_reciprocal_rank_for(&p, &h, Some(&empty_q)), 0.0);
    }

    #[test]
    fn metrics_stay_in_unit_interval() {
        let h = holdout_with(&[(0, &[1, 2]), (3, &[4])]);
        let p = prediction_with(&[(0, &[1, 2, 5]), (3, &[4])]);
        for m in [
            recall(&p, &h),
            precision(&p, &h),
            mean_reciprocal_rank(&p, &h),
        ] {
            assert!((0.0..=1.0).contains(&m), "{m}");
        }
    }
}
