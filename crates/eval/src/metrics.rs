//! Prediction quality metrics.

use snaple_core::Prediction;

use crate::protocol::HoldOut;

/// Recall: the proportion of held-out edges that appear among the returned
/// predictions — the paper's primary quality metric (§5.2).
///
/// Returns `0.0` when nothing was held out.
pub fn recall(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    let total = holdout.num_removed();
    if total == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (&u, held) in &holdout.removed {
        let preds = prediction.for_vertex(u);
        hits += preds
            .iter()
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    hits as f64 / total as f64
}

/// Recall considering only each vertex's first `k` predictions.
///
/// Because top-`k` lists nest (`top-5 ⊂ top-10 ⊂ …`), a single run with a
/// large `k` can regenerate the paper's Figure 9 sweep by truncation
/// instead of re-running the predictor once per `k`.
pub fn recall_at_k(prediction: &Prediction, holdout: &HoldOut, k: usize) -> f64 {
    let total = holdout.num_removed();
    if total == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    for (&u, held) in &holdout.removed {
        let preds = prediction.for_vertex(u);
        hits += preds
            .iter()
            .take(k)
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    hits as f64 / total as f64
}

/// Precision: the proportion of returned predictions that are held-out
/// edges. Under the paper's protocol (fixed removals, fixed `k`) precision
/// is proportional to recall and therefore "not relevant in our set-up"
/// (§5.2); it is provided for completeness.
pub fn precision(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    let mut hits = 0usize;
    let mut returned = 0usize;
    for (&u, held) in &holdout.removed {
        let preds = prediction.for_vertex(u);
        returned += preds.len();
        hits += preds
            .iter()
            .filter(|(z, _)| held.binary_search(z).is_ok())
            .count();
    }
    if returned == 0 {
        0.0
    } else {
        hits as f64 / returned as f64
    }
}

/// Mean reciprocal rank of the first held-out edge in each vertex's
/// prediction list (an extra diagnostic beyond the paper).
pub fn mean_reciprocal_rank(prediction: &Prediction, holdout: &HoldOut) -> f64 {
    if holdout.removed.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (&u, held) in &holdout.removed {
        let preds = prediction.for_vertex(u);
        if let Some(rank) = preds
            .iter()
            .position(|(z, _)| held.binary_search(z).is_ok())
        {
            total += 1.0 / (rank + 1) as f64;
        }
    }
    total / holdout.removed.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_core::Prediction;
    use snaple_gas::RunStats;
    use snaple_graph::{CsrGraph, VertexId};

    fn v(i: u32) -> VertexId {
        VertexId::new(i)
    }

    fn holdout_with(removed: &[(u32, &[u32])]) -> HoldOut {
        let train = CsrGraph::from_edges(10, &[]);
        let mut map = std::collections::HashMap::new();
        for &(u, vs) in removed {
            map.insert(v(u), vs.iter().copied().map(v).collect());
        }
        HoldOut {
            train,
            removed: map,
        }
    }

    fn prediction_with(per_vertex: &[(u32, &[u32])]) -> Prediction {
        let mut preds: Vec<Vec<(VertexId, f32)>> = vec![Vec::new(); 10];
        for &(u, vs) in per_vertex {
            preds[u as usize] = vs
                .iter()
                .enumerate()
                .map(|(i, &z)| (v(z), 1.0 - i as f32 * 0.1))
                .collect();
        }
        Prediction::from_parts(preds, RunStats::default())
    }

    #[test]
    fn recall_counts_hits_over_removed() {
        let h = holdout_with(&[(0, &[5, 6]), (1, &[7])]);
        let p = prediction_with(&[(0, &[5, 9]), (1, &[8])]);
        // 1 hit of 3 removed.
        assert!((recall(&p, &h) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_and_zero_recall() {
        let h = holdout_with(&[(0, &[5])]);
        assert_eq!(recall(&prediction_with(&[(0, &[5])]), &h), 1.0);
        assert_eq!(recall(&prediction_with(&[(0, &[6])]), &h), 0.0);
        let empty = holdout_with(&[]);
        assert_eq!(recall(&prediction_with(&[]), &empty), 0.0);
    }

    #[test]
    fn precision_normalizes_by_returned() {
        let h = holdout_with(&[(0, &[5, 6])]);
        let p = prediction_with(&[(0, &[5, 9, 8, 7])]);
        assert!((precision(&p, &h) - 0.25).abs() < 1e-12);
        assert_eq!(precision(&prediction_with(&[]), &h), 0.0);
    }

    #[test]
    fn mrr_rewards_early_hits() {
        let h = holdout_with(&[(0, &[9])]);
        let first = prediction_with(&[(0, &[9, 8])]);
        let second = prediction_with(&[(0, &[8, 9])]);
        assert!((mean_reciprocal_rank(&first, &h) - 1.0).abs() < 1e-12);
        assert!((mean_reciprocal_rank(&second, &h) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recall_at_k_truncates() {
        let h = holdout_with(&[(0, &[9])]);
        let p = prediction_with(&[(0, &[8, 9])]);
        assert_eq!(recall_at_k(&p, &h, 1), 0.0);
        assert_eq!(recall_at_k(&p, &h, 2), 1.0);
        // Full-list recall agrees with a k covering everything.
        assert_eq!(recall(&p, &h), recall_at_k(&p, &h, 10));
    }

    #[test]
    fn metrics_stay_in_unit_interval() {
        let h = holdout_with(&[(0, &[1, 2]), (3, &[4])]);
        let p = prediction_with(&[(0, &[1, 2, 5]), (3, &[4])]);
        for m in [recall(&p, &h), precision(&p, &h), mean_reciprocal_rank(&p, &h)] {
            assert!((0.0..=1.0).contains(&m), "{m}");
        }
    }
}
