//! Property tests for the GAS engine: partition coverage, execution
//! correctness against a sequential oracle, and accounting sanity.

use proptest::prelude::*;

use snaple_gas::{
    ClusterSpec, Engine, EngineError, GasStep, GatherCtx, NodeId, PartitionStrategy,
    PartitionedGraph, WorkTally,
};
use snaple_graph::{CsrGraph, GraphBuilder, VertexId};

fn graph_from(edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    b.reserve_vertices(1);
    for (u, v) in edges {
        b.add_edge(*u, *v);
    }
    b.build()
}

fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..40, 0u32..40), 1..250)
}

/// `new = Σ_{v ∈ Γ(u)} old(v) + 1` — order-insensitive integer program.
struct SumPlusOne;
impl GasStep for SumPlusOne {
    type Vertex = u64;
    type Gather = u64;
    fn name(&self) -> &str {
        "sum-plus-one"
    }
    fn gather(
        &self,
        _: &GatherCtx<'_>,
        _u: VertexId,
        _ud: &u64,
        _v: VertexId,
        vd: &u64,
        _w: &mut WorkTally,
    ) -> Option<u64> {
        Some(*vd)
    }
    fn sum(&self, a: u64, b: u64, _w: &mut WorkTally) -> u64 {
        a + b
    }
    fn apply(
        &self,
        _: &GatherCtx<'_>,
        _u: VertexId,
        d: &mut u64,
        acc: Option<u64>,
        _w: &mut WorkTally,
    ) {
        *d = acc.unwrap_or(0) + 1;
    }
}

fn oracle(graph: &CsrGraph, state: &[u64]) -> Vec<u64> {
    graph
        .vertices()
        .map(|u| {
            graph
                .out_neighbors(u)
                .iter()
                .map(|v| state[v.index()])
                .sum::<u64>()
                + 1
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn partitions_cover_every_edge_once(
        edges in edges_strategy(),
        nodes in 1usize..33,
        seed in 0u64..1_000,
    ) {
        let g = graph_from(&edges);
        for strategy in PartitionStrategy::all() {
            let p = PartitionedGraph::build(&g, nodes, strategy, seed).unwrap();
            prop_assert_eq!(p.total_edges(), g.num_edges());
            let mut seen: Vec<(u32, u32)> = (0..nodes)
                .flat_map(|n| {
                    p.node_edges(NodeId::new(n as u16))
                        .iter()
                        .map(|&(a, b)| (a.as_u32(), b.as_u32()))
                })
                .collect();
            seen.sort_unstable();
            let mut expected: Vec<(u32, u32)> =
                g.edges().map(|(a, b)| (a.as_u32(), b.as_u32())).collect();
            expected.sort_unstable();
            prop_assert_eq!(seen, expected, "{:?}", strategy);
            // Replication factor bounded by min(nodes, ...) per vertex.
            for v in g.vertices() {
                prop_assert!((1..=nodes as u32).contains(&p.replica_count(v)));
                prop_assert!(p.is_present(v, p.master(v)));
            }
        }
    }

    #[test]
    fn engine_matches_sequential_oracle(
        edges in edges_strategy(),
        nodes in 1usize..17,
        seed in 0u64..1_000,
        strategy_idx in 0usize..3,
    ) {
        let g = graph_from(&edges);
        let strategy = PartitionStrategy::all()[strategy_idx];
        let init: Vec<u64> = (0..g.num_vertices() as u64).map(|i| i % 13 + 1).collect();
        let expect = oracle(&g, &init);
        let mut state = init;
        let mut engine = Engine::new(&g, ClusterSpec::type_i(nodes), strategy, seed).unwrap();
        engine.run_step(&SumPlusOne, &mut state).unwrap();
        prop_assert_eq!(state, expect, "{:?} on {} nodes", strategy, nodes);
    }

    #[test]
    fn accounting_is_internally_consistent(
        edges in edges_strategy(),
        nodes in 2usize..17,
        seed in 0u64..1_000,
    ) {
        let g = graph_from(&edges);
        let mut state: Vec<u64> = vec![1; g.num_vertices()];
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(nodes),
            PartitionStrategy::RandomVertexCut,
            seed,
        )
        .unwrap();
        let stats = engine.run_step(&SumPlusOne, &mut state).unwrap();
        // Engine-level invariants:
        prop_assert_eq!(stats.gather_calls, g.num_edges() as u64);
        prop_assert_eq!(stats.apply_calls, g.num_vertices() as u64);
        // Per-node net bytes sum to exactly twice the logical traffic
        // (each byte leaves one node and enters another).
        let node_net: u64 = stats.per_node.iter().map(|n| n.net_bytes).sum();
        prop_assert_eq!(node_net, 2 * stats.network_bytes());
        // Work includes at least one op per call.
        prop_assert!(stats.work_ops >= stats.gather_calls + stats.apply_calls);
        // Time is positive and includes the barrier latency.
        prop_assert!(stats.simulated_seconds >= 0.05);
    }

    #[test]
    fn single_node_runs_produce_no_traffic(edges in edges_strategy(), seed in 0u64..100) {
        let g = graph_from(&edges);
        let mut state: Vec<u64> = vec![1; g.num_vertices()];
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(1),
            PartitionStrategy::RandomVertexCut,
            seed,
        )
        .unwrap();
        let stats = engine.run_step(&SumPlusOne, &mut state).unwrap();
        prop_assert_eq!(stats.network_bytes(), 0);
        prop_assert!((engine.stats().replication_factor - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_caps_bisect_cleanly(edges in edges_strategy(), seed in 0u64..100) {
        // With a generous cap the step succeeds; with a 1-byte cap it must
        // fail with ResourceExhausted (never panic or mis-report).
        let g = graph_from(&edges);
        let mut ok_state: Vec<u64> = vec![1; g.num_vertices()];
        let generous = ClusterSpec::type_i(4);
        Engine::new(&g, generous, PartitionStrategy::RandomVertexCut, seed)
            .unwrap()
            .run_step(&SumPlusOne, &mut ok_state)
            .unwrap();

        let starved = ClusterSpec {
            memory_per_node: 1,
            ..ClusterSpec::type_i(4)
        };
        let mut state: Vec<u64> = vec![1; g.num_vertices()];
        let err = Engine::new(&g, starved, PartitionStrategy::RandomVertexCut, seed)
            .unwrap()
            .run_step(&SumPlusOne, &mut state)
            .unwrap_err();
        let is_oom = matches!(err, EngineError::ResourceExhausted { .. });
        prop_assert!(is_oom);
    }
}
