//! Simulated cluster descriptions.

use std::fmt;

/// Identifier of a simulated compute node (machine) in a cluster.
///
/// Distinct from [`snaple_graph::VertexId`]: a `NodeId` names a machine of
/// the simulated deployment, not a vertex of the graph.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id.
    #[inline]
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// Dense index of the node, for indexing per-node arrays.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for NodeId {
    fn from(raw: u16) -> Self {
        NodeId(raw)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Description of a simulated cluster deployment.
///
/// The two presets mirror the paper's testbed (§5.1): *type-I* nodes have
/// 8 cores, 32 GB of memory and gigabit Ethernet; *type-II* nodes have
/// 20 cores, 128 GB and 10-gigabit Ethernet.
///
/// ```
/// use snaple_gas::ClusterSpec;
/// let c = ClusterSpec::type_i(32);
/// assert_eq!(c.total_cores(), 256);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Label used in reports ("type-I", "type-II", ...).
    pub name: String,
    /// Number of machines.
    pub nodes: usize,
    /// Cores per machine.
    pub cores_per_node: usize,
    /// Memory capacity per machine, in bytes.
    pub memory_per_node: u64,
    /// Point-to-point network bandwidth, in bytes per second.
    pub bandwidth: f64,
    /// Fixed synchronization cost per GAS superstep, in seconds.
    pub step_latency: f64,
}

const GIB: u64 = 1 << 30;

impl ClusterSpec {
    /// The paper's type-I machines: 2× Intel Xeon L5420 (8 cores), 32 GB,
    /// gigabit Ethernet.
    pub fn type_i(nodes: usize) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        ClusterSpec {
            name: "type-I".to_owned(),
            nodes,
            cores_per_node: 8,
            memory_per_node: 32 * GIB,
            bandwidth: 125.0e6, // 1 GbE
            step_latency: 0.05,
        }
    }

    /// The paper's type-II machines: 2× Intel Xeon E5-2660v2 (20 cores),
    /// 128 GB, 10-gigabit Ethernet.
    pub fn type_ii(nodes: usize) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        ClusterSpec {
            name: "type-II".to_owned(),
            nodes,
            cores_per_node: 20,
            memory_per_node: 128 * GIB,
            bandwidth: 1.25e9, // 10 GbE
            step_latency: 0.05,
        }
    }

    /// A single standalone machine (no network costs), used for the paper's
    /// Cassovary comparison (§5.9).
    pub fn single_machine(cores: usize, memory: u64) -> Self {
        assert!(cores >= 1, "a machine needs at least one core");
        ClusterSpec {
            name: "single".to_owned(),
            nodes: 1,
            cores_per_node: cores,
            memory_per_node: memory,
            bandwidth: f64::INFINITY,
            step_latency: 0.0,
        }
    }

    /// Total core count across the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// Returns a copy with per-node memory multiplied by `factor`.
    ///
    /// The evaluation harness scales memory capacity together with dataset
    /// scale so that out-of-memory crossovers land on the same datasets as
    /// in the paper despite the scaled-down inputs.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn with_memory_scale(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0,
            "memory scale must be positive, got {factor}"
        );
        self.memory_per_node = (self.memory_per_node as f64 * factor).round() as u64;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        let t1 = ClusterSpec::type_i(32);
        assert_eq!(t1.total_cores(), 256);
        assert_eq!(t1.memory_per_node, 32 * GIB);
        let t2 = ClusterSpec::type_ii(8);
        assert_eq!(t2.total_cores(), 160);
        assert!(t2.bandwidth > t1.bandwidth);
    }

    #[test]
    fn single_machine_has_no_network() {
        let m = ClusterSpec::single_machine(20, 128 * GIB);
        assert_eq!(m.nodes, 1);
        assert!(m.bandwidth.is_infinite());
        assert_eq!(m.step_latency, 0.0);
    }

    #[test]
    fn memory_scaling() {
        let c = ClusterSpec::type_i(1).with_memory_scale(0.5);
        assert_eq!(c.memory_per_node, 16 * GIB);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn rejects_empty_cluster() {
        let _ = ClusterSpec::type_i(0);
    }

    #[test]
    fn node_id_formats() {
        assert_eq!(NodeId::new(3).to_string(), "n3");
        assert_eq!(format!("{:?}", NodeId::from(4u16)), "n4");
        assert_eq!(NodeId::new(7).index(), 7);
    }
}
