//! Partition→shard assignment for sharded deployments.
//!
//! A *shard* is an isolated runtime (a thread group or an OS process)
//! owning a contiguous block of the deployment's vertex-cut partitions.
//! Vertex ownership follows master placement: a vertex belongs to the
//! shard that owns the partition holding its master replica, so the
//! assignment composes with [`master_node`]
//! into a pure `vertex → shard` routing function — computable without a
//! partition in hand, stable under delta-driven vertex growth (grown
//! vertices are master-placed by the same salted hash), and therefore
//! usable by a router process that never builds the graph itself.

use crate::error::EngineError;
use crate::partition::master_node;
use crate::NodeId;

/// Maps a deployment's vertex-cut partitions onto `num_shards` shards as
/// contiguous, near-equal blocks (sizes differ by at most one).
///
/// ```
/// use snaple_gas::ShardAssignment;
/// let a = ShardAssignment::new(10, 4).unwrap();
/// assert_eq!(a.partitions_of(0), 0..3); // first blocks take the remainder
/// assert_eq!(a.partitions_of(3), 8..10);
/// assert_eq!(a.shard_of_partition(7), 2);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShardAssignment {
    num_partitions: usize,
    num_shards: usize,
}

impl ShardAssignment {
    /// Creates an assignment of `num_partitions` partitions to
    /// `num_shards` shards.
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidConfig`] when either count is zero or there
    /// are more shards than partitions (a shard owning no partitions
    /// would own no vertices and serve nothing).
    pub fn new(num_partitions: usize, num_shards: usize) -> Result<Self, EngineError> {
        if num_partitions == 0 {
            return Err(EngineError::InvalidConfig(
                "shard assignment needs at least one partition".to_owned(),
            ));
        }
        if num_shards == 0 {
            return Err(EngineError::InvalidConfig(
                "shard count must be at least 1".to_owned(),
            ));
        }
        if num_shards > num_partitions {
            return Err(EngineError::InvalidConfig(format!(
                "shard count {num_shards} exceeds the partition count {num_partitions}; \
                 every shard must own at least one partition"
            )));
        }
        Ok(ShardAssignment {
            num_partitions,
            num_shards,
        })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of partitions distributed across the shards.
    pub fn num_partitions(&self) -> usize {
        self.num_partitions
    }

    /// The contiguous partition block owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn partitions_of(&self, shard: usize) -> std::ops::Range<usize> {
        assert!(shard < self.num_shards, "shard {shard} out of range");
        let base = self.num_partitions / self.num_shards;
        let rem = self.num_partitions % self.num_shards;
        let start = shard * base + shard.min(rem);
        let len = base + usize::from(shard < rem);
        start..start + len
    }

    /// The shard owning partition `partition`.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn shard_of_partition(&self, partition: usize) -> usize {
        assert!(
            partition < self.num_partitions,
            "partition {partition} out of range"
        );
        let base = self.num_partitions / self.num_shards;
        let rem = self.num_partitions % self.num_shards;
        let big = rem * (base + 1); // partitions covered by the larger blocks
        if partition < big {
            partition / (base + 1)
        } else {
            rem + (partition - big) / base
        }
    }

    /// The shard owning `vertex`: the shard of the partition holding the
    /// vertex's master replica under a partition built with `seed` over
    /// this assignment's partition count.
    pub fn shard_of_vertex(&self, seed: u64, vertex: u32) -> usize {
        self.shard_of_partition(master_node(seed, self.num_partitions, vertex).index())
    }

    /// The shard owning `node`'s partition (convenience over
    /// [`ShardAssignment::shard_of_partition`]).
    pub fn shard_of_node(&self, node: NodeId) -> usize {
        self.shard_of_partition(node.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_contiguous_and_cover_every_partition() {
        for parts in 1..=20usize {
            for shards in 1..=parts {
                let a = ShardAssignment::new(parts, shards).unwrap();
                let mut covered = Vec::new();
                for s in 0..shards {
                    let r = a.partitions_of(s);
                    assert!(!r.is_empty(), "{parts}p/{shards}s shard {s} empty");
                    for p in r {
                        assert_eq!(a.shard_of_partition(p), s, "{parts}p/{shards}s");
                        covered.push(p);
                    }
                }
                assert_eq!(covered, (0..parts).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn block_sizes_differ_by_at_most_one() {
        let a = ShardAssignment::new(13, 5).unwrap();
        let sizes: Vec<usize> = (0..5).map(|s| a.partitions_of(s).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 13);
        assert!(sizes.iter().all(|&s| s == 2 || s == 3), "{sizes:?}");
    }

    #[test]
    fn vertex_ownership_follows_master_placement() {
        let a = ShardAssignment::new(8, 3).unwrap();
        for v in 0..500u32 {
            let owner = a.shard_of_vertex(42, v);
            let master = master_node(42, 8, v);
            assert_eq!(owner, a.shard_of_node(master), "vertex {v}");
        }
    }

    #[test]
    fn one_shard_owns_everything() {
        let a = ShardAssignment::new(6, 1).unwrap();
        assert_eq!(a.partitions_of(0), 0..6);
        for v in 0..100 {
            assert_eq!(a.shard_of_vertex(7, v), 0);
        }
    }

    #[test]
    fn invalid_shapes_are_rejected() {
        assert!(matches!(
            ShardAssignment::new(0, 1),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            ShardAssignment::new(4, 0),
            Err(EngineError::InvalidConfig(_))
        ));
        let err = ShardAssignment::new(4, 5).unwrap_err();
        assert!(err.to_string().contains("exceeds the partition count"));
    }
}
