//! Vertex-cut graph partitioning.
//!
//! GAS engines in the PowerGraph tradition split the *edges* of a graph
//! across machines and replicate vertices wherever their edges land; one
//! replica per vertex is designated the **master**. The number of replicas
//! per vertex (the *replication factor*) determines the communication cost
//! of a GAS step, which is why the choice of partitioner matters.
//!
//! Three strategies are provided:
//!
//! * [`PartitionStrategy::RandomVertexCut`] — each edge is hashed to a node
//!   (PowerGraph's default; predictable balance, higher replication).
//! * [`PartitionStrategy::SourceHash1D`] — all out-edges of a vertex land on
//!   one node (low replication for sources, but hubs skew load).
//! * [`PartitionStrategy::GreedyVertexCut`] — PowerGraph's greedy heuristic:
//!   place each edge on a node that already hosts its endpoints, breaking
//!   ties by load.

use snaple_graph::hash::{hash1, hash2};
use snaple_graph::{CsrGraph, VertexId};

use crate::error::EngineError;
use crate::NodeId;

/// Maximum number of simulated nodes (presence sets are 64-bit masks).
pub const MAX_NODES: usize = 64;

/// Edge-placement strategy; see the [module docs](self).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PartitionStrategy {
    /// Hash each edge `(u, v)` to a node.
    #[default]
    RandomVertexCut,
    /// Hash the source vertex: all of `Γ(u)` is stored on one node.
    SourceHash1D,
    /// PowerGraph's greedy placement heuristic.
    GreedyVertexCut,
}

impl PartitionStrategy {
    /// All strategies, for sweeps and ablation benches.
    pub fn all() -> [PartitionStrategy; 3] {
        [
            PartitionStrategy::RandomVertexCut,
            PartitionStrategy::SourceHash1D,
            PartitionStrategy::GreedyVertexCut,
        ]
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::RandomVertexCut => "random",
            PartitionStrategy::SourceHash1D => "source-1d",
            PartitionStrategy::GreedyVertexCut => "greedy",
        }
    }
}

/// A graph split across simulated nodes by a vertex-cut.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    num_nodes: usize,
    /// Per node: its edges, in global `(src, dst)` sorted order.
    node_edges: Vec<Vec<(VertexId, VertexId)>>,
    /// Per vertex: the node holding the master replica.
    master: Vec<NodeId>,
    /// Per vertex: bitmask of nodes where a replica exists (master included).
    presence: Vec<u64>,
}

impl PartitionedGraph {
    /// Partitions `graph` across `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if `num_nodes` is zero or
    /// exceeds [`MAX_NODES`].
    pub fn build(
        graph: &CsrGraph,
        num_nodes: usize,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Self, EngineError> {
        if num_nodes == 0 || num_nodes > MAX_NODES {
            return Err(EngineError::InvalidConfig(format!(
                "num_nodes must be in 1..={MAX_NODES}, got {num_nodes}"
            )));
        }
        let n = graph.num_vertices();
        let master: Vec<NodeId> = (0..n as u32)
            .map(|u| NodeId::new((hash1(seed ^ MASTER_SALT, u as u64) % num_nodes as u64) as u16))
            .collect();
        let mut presence: Vec<u64> = (0..n).map(|u| 1u64 << master[u].index()).collect();
        let mut node_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); num_nodes];
        let mut loads = vec![0u64; num_nodes];

        for (u, v) in graph.edges() {
            let node = match strategy {
                PartitionStrategy::RandomVertexCut => {
                    (hash2(seed, u.as_u32() as u64, v.as_u32() as u64) % num_nodes as u64) as usize
                }
                PartitionStrategy::SourceHash1D => {
                    (hash1(seed, u.as_u32() as u64) % num_nodes as u64) as usize
                }
                PartitionStrategy::GreedyVertexCut => greedy_pick(
                    presence[u.index()],
                    presence[v.index()],
                    &loads,
                    hash2(seed, u.as_u32() as u64, v.as_u32() as u64),
                ),
            };
            node_edges[node].push((u, v));
            loads[node] += 1;
            presence[u.index()] |= 1 << node;
            presence[v.index()] |= 1 << node;
        }
        Ok(PartitionedGraph {
            num_nodes,
            node_edges,
            master,
            presence,
        })
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Node holding the master replica of `v`.
    pub fn master(&self, v: VertexId) -> NodeId {
        self.master[v.index()]
    }

    /// Number of replicas of `v` (at least 1: the master).
    pub fn replica_count(&self, v: VertexId) -> u32 {
        self.presence[v.index()].count_ones()
    }

    /// Whether a replica of `v` lives on `node`.
    pub fn is_present(&self, v: VertexId, node: NodeId) -> bool {
        self.presence[v.index()] & (1 << node.index()) != 0
    }

    /// Bitmask of nodes hosting `v`.
    pub fn presence_mask(&self, v: VertexId) -> u64 {
        self.presence[v.index()]
    }

    /// Edges assigned to `node`, in `(src, dst)` sorted order.
    pub fn node_edges(&self, node: NodeId) -> &[(VertexId, VertexId)] {
        &self.node_edges[node.index()]
    }

    /// Average number of replicas per vertex — PowerGraph's replication
    /// factor, the key metric a vertex-cut partitioner minimizes.
    pub fn replication_factor(&self) -> f64 {
        if self.presence.is_empty() {
            return 1.0;
        }
        let total: u64 = self.presence.iter().map(|m| m.count_ones() as u64).sum();
        total as f64 / self.presence.len() as f64
    }

    /// `(min, max)` edges per node, a load-balance indicator.
    pub fn edge_balance(&self) -> (usize, usize) {
        let mut min = usize::MAX;
        let mut max = 0;
        for e in &self.node_edges {
            min = min.min(e.len());
            max = max.max(e.len());
        }
        if min == usize::MAX {
            (0, 0)
        } else {
            (min, max)
        }
    }

    /// Total number of edges across all nodes.
    pub fn total_edges(&self) -> usize {
        self.node_edges.iter().map(Vec::len).sum()
    }
}

/// PowerGraph greedy heuristic: prefer nodes already hosting both endpoints,
/// then either endpoint, then the least-loaded node; ties break by load and
/// then by hash.
fn greedy_pick(mask_u: u64, mask_v: u64, loads: &[u64], tiebreak: u64) -> usize {
    let both = mask_u & mask_v;
    let either = mask_u | mask_v;
    let candidates = if both != 0 {
        both
    } else if either != 0 {
        either
    } else {
        u64::MAX
    };
    let mut best = usize::MAX;
    let mut best_load = u64::MAX;
    for (node, &load) in loads.iter().enumerate() {
        if candidates & (1u64 << node) == 0 {
            continue;
        }
        // Deterministic tie-break: rotate preference by the edge hash.
        let better = load < best_load
            || (load == best_load
                && (tiebreak as usize % loads.len()).abs_diff(node)
                    < (tiebreak as usize % loads.len()).abs_diff(best));
        if better {
            best = node;
            best_load = load;
        }
    }
    best
}

/// Salt separating master assignment from edge placement hashing.
const MASTER_SALT: u64 = 0xAB5E;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snaple_graph::gen;

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(5);
        gen::erdos_renyi(200, 800, &mut rng).into_symmetric_graph()
    }

    #[test]
    fn every_strategy_covers_all_edges_exactly_once() {
        let g = test_graph();
        for strategy in PartitionStrategy::all() {
            let p = PartitionedGraph::build(&g, 8, strategy, 42).unwrap();
            assert_eq!(p.total_edges(), g.num_edges(), "{strategy:?}");
            let mut collected: Vec<(u32, u32)> = (0..8)
                .flat_map(|n| {
                    p.node_edges(NodeId::new(n))
                        .iter()
                        .map(|&(u, v)| (u.as_u32(), v.as_u32()))
                })
                .collect();
            collected.sort_unstable();
            let expected: Vec<(u32, u32)> =
                g.edges().map(|(u, v)| (u.as_u32(), v.as_u32())).collect();
            assert_eq!(collected, expected, "{strategy:?}");
        }
    }

    #[test]
    fn node_edge_lists_stay_sorted() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 4, PartitionStrategy::RandomVertexCut, 1).unwrap();
        for n in 0..4 {
            let edges = p.node_edges(NodeId::new(n));
            assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn masters_are_present_and_replication_at_least_one() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 9).unwrap();
        for v in g.vertices() {
            assert!(p.is_present(v, p.master(v)), "{v}");
            assert!(p.replica_count(v) >= 1);
        }
        assert!(p.replication_factor() >= 1.0);
    }

    #[test]
    fn endpoints_are_present_where_their_edges_live() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::RandomVertexCut, 3).unwrap();
        for n in 0..8 {
            let node = NodeId::new(n);
            for &(u, v) in p.node_edges(node) {
                assert!(p.is_present(u, node));
                assert!(p.is_present(v, node));
            }
        }
    }

    #[test]
    fn source_hash_keeps_out_edges_together() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::SourceHash1D, 3).unwrap();
        // Each vertex's out-edges must all live on a single node.
        for u in g.vertices() {
            let mut nodes: Vec<u16> = (0..8u16)
                .filter(|&n| p.node_edges(NodeId::new(n)).iter().any(|&(s, _)| s == u))
                .collect();
            nodes.dedup();
            assert!(nodes.len() <= 1, "vertex {u} spread over {nodes:?}");
        }
    }

    #[test]
    fn greedy_beats_random_on_replication() {
        let g = test_graph();
        let random =
            PartitionedGraph::build(&g, 16, PartitionStrategy::RandomVertexCut, 11).unwrap();
        let greedy =
            PartitionedGraph::build(&g, 16, PartitionStrategy::GreedyVertexCut, 11).unwrap();
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} vs random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn single_node_partition_has_replication_one() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 1, PartitionStrategy::RandomVertexCut, 0).unwrap();
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(p.total_edges(), g.num_edges());
    }

    #[test]
    fn rejects_invalid_node_counts() {
        let g = test_graph();
        assert!(matches!(
            PartitionedGraph::build(&g, 0, PartitionStrategy::RandomVertexCut, 0),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            PartitionedGraph::build(&g, 65, PartitionStrategy::RandomVertexCut, 0),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn partitioning_is_deterministic() {
        let g = test_graph();
        let a = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 7).unwrap();
        let b = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 7).unwrap();
        for n in 0..8 {
            assert_eq!(a.node_edges(NodeId::new(n)), b.node_edges(NodeId::new(n)));
        }
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = PartitionedGraph::build(&g, 4, PartitionStrategy::RandomVertexCut, 0).unwrap();
        assert_eq!(p.total_edges(), 0);
        assert_eq!(p.edge_balance(), (0, 0));
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }
}
