//! Vertex-cut graph partitioning.
//!
//! GAS engines in the PowerGraph tradition split the *edges* of a graph
//! across machines and replicate vertices wherever their edges land; one
//! replica per vertex is designated the **master**. The number of replicas
//! per vertex (the *replication factor*) determines the communication cost
//! of a GAS step, which is why the choice of partitioner matters.
//!
//! Three strategies are provided:
//!
//! * [`PartitionStrategy::RandomVertexCut`] — each edge is hashed to a node
//!   (PowerGraph's default; predictable balance, higher replication).
//! * [`PartitionStrategy::SourceHash1D`] — all out-edges of a vertex land on
//!   one node (low replication for sources, but hubs skew load).
//! * [`PartitionStrategy::GreedyVertexCut`] — PowerGraph's greedy heuristic:
//!   place each edge on a node that already hosts its endpoints, breaking
//!   ties by load.

use snaple_graph::hash::{hash1, hash2};
use snaple_graph::{store, GraphStore, VertexId};

use crate::error::EngineError;
use crate::NodeId;

/// Maximum number of simulated nodes (presence sets are 64-bit masks).
pub const MAX_NODES: usize = 64;

/// Edge-placement strategy; see the [module docs](self).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
pub enum PartitionStrategy {
    /// Hash each edge `(u, v)` to a node.
    #[default]
    RandomVertexCut,
    /// Hash the source vertex: all of `Γ(u)` is stored on one node.
    SourceHash1D,
    /// PowerGraph's greedy placement heuristic.
    GreedyVertexCut,
}

impl PartitionStrategy {
    /// All strategies, for sweeps and ablation benches.
    pub fn all() -> [PartitionStrategy; 3] {
        [
            PartitionStrategy::RandomVertexCut,
            PartitionStrategy::SourceHash1D,
            PartitionStrategy::GreedyVertexCut,
        ]
    }

    /// Short stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            PartitionStrategy::RandomVertexCut => "random",
            PartitionStrategy::SourceHash1D => "source-1d",
            PartitionStrategy::GreedyVertexCut => "greedy",
        }
    }
}

/// A graph split across simulated nodes by a vertex-cut.
#[derive(Clone, Debug)]
pub struct PartitionedGraph {
    num_nodes: usize,
    /// Per node: its edges, in global `(src, dst)` sorted order.
    node_edges: Vec<Vec<(VertexId, VertexId)>>,
    /// Per vertex: the node holding the master replica.
    master: Vec<NodeId>,
    /// Per vertex: bitmask of nodes where a replica exists (master included).
    presence: Vec<u64>,
}

impl PartitionedGraph {
    /// Partitions `graph` across `num_nodes` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] if `num_nodes` is zero or
    /// exceeds [`MAX_NODES`].
    pub fn build(
        graph: &dyn GraphStore,
        num_nodes: usize,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Self, EngineError> {
        if num_nodes == 0 || num_nodes > MAX_NODES {
            return Err(EngineError::InvalidConfig(format!(
                "num_nodes must be in 1..={MAX_NODES}, got {num_nodes}"
            )));
        }
        let n = graph.num_vertices();
        let master: Vec<NodeId> = (0..n as u32)
            .map(|u| master_node(seed, num_nodes, u))
            .collect();
        let mut presence: Vec<u64> = (0..n).map(|u| 1u64 << master[u].index()).collect();
        let mut node_edges: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); num_nodes];
        let mut loads = vec![0u64; num_nodes];

        for (u, v) in store::edges(graph) {
            let node = match strategy {
                PartitionStrategy::RandomVertexCut => {
                    (hash2(seed, u.as_u32() as u64, v.as_u32() as u64) % num_nodes as u64) as usize
                }
                PartitionStrategy::SourceHash1D => {
                    (hash1(seed, u.as_u32() as u64) % num_nodes as u64) as usize
                }
                PartitionStrategy::GreedyVertexCut => greedy_pick(
                    presence[u.index()],
                    presence[v.index()],
                    &loads,
                    hash2(seed, u.as_u32() as u64, v.as_u32() as u64),
                ),
            };
            node_edges[node].push((u, v));
            loads[node] += 1;
            presence[u.index()] |= 1 << node;
            presence[v.index()] |= 1 << node;
        }
        Ok(PartitionedGraph {
            num_nodes,
            node_edges,
            master,
            presence,
        })
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Node holding the master replica of `v`.
    pub fn master(&self, v: VertexId) -> NodeId {
        self.master[v.index()]
    }

    /// Number of replicas of `v` (at least 1: the master).
    pub fn replica_count(&self, v: VertexId) -> u32 {
        self.presence[v.index()].count_ones()
    }

    /// Whether a replica of `v` lives on `node`.
    pub fn is_present(&self, v: VertexId, node: NodeId) -> bool {
        self.presence[v.index()] & (1 << node.index()) != 0
    }

    /// Bitmask of nodes hosting `v`.
    pub fn presence_mask(&self, v: VertexId) -> u64 {
        self.presence[v.index()]
    }

    /// Edges assigned to `node`, in `(src, dst)` sorted order.
    pub fn node_edges(&self, node: NodeId) -> &[(VertexId, VertexId)] {
        &self.node_edges[node.index()]
    }

    /// Average number of replicas per vertex — PowerGraph's replication
    /// factor, the key metric a vertex-cut partitioner minimizes.
    pub fn replication_factor(&self) -> f64 {
        if self.presence.is_empty() {
            return 1.0;
        }
        let total: u64 = self.presence.iter().map(|m| m.count_ones() as u64).sum();
        total as f64 / self.presence.len() as f64
    }

    /// `(min, max)` edges per node, a load-balance indicator.
    pub fn edge_balance(&self) -> (usize, usize) {
        let mut min = usize::MAX;
        let mut max = 0;
        for e in &self.node_edges {
            min = min.min(e.len());
            max = max.max(e.len());
        }
        if min == usize::MAX {
            (0, 0)
        } else {
            (min, max)
        }
    }

    /// Total number of edges across all nodes.
    pub fn total_edges(&self) -> usize {
        self.node_edges.iter().map(Vec::len).sum()
    }

    /// Grows the partition's vertex range to `n`, assigning masters to the
    /// new vertices with the same salted hash a cold build uses (so a
    /// grown partition and a cold build on the grown graph agree on
    /// master placement).
    ///
    /// `seed` must be the seed the partition was built with.
    pub fn ensure_vertices(&mut self, n: usize, seed: u64) {
        for u in self.master.len() as u32..n as u32 {
            let node = master_node(seed, self.num_nodes, u);
            self.master.push(node);
            self.presence.push(1u64 << node.index());
        }
    }

    /// Routes a new edge onto a node with the partition's placement
    /// `strategy` (the same formula a cold build applies, so hash-based
    /// strategies place incrementally-added edges exactly where a rebuild
    /// would) and inserts it into that node's sorted edge list. Returns
    /// the chosen node.
    ///
    /// `seed` must be the seed the partition was built with. The edge's
    /// endpoints must already be covered by the vertex range (see
    /// [`PartitionedGraph::ensure_vertices`]); inserting a duplicate edge
    /// is the caller's bug and leaves the list with two copies.
    pub fn insert_edge(
        &mut self,
        u: VertexId,
        v: VertexId,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> NodeId {
        let loads: Vec<u64> = self.node_edges.iter().map(|e| e.len() as u64).collect();
        let node = self.placement(u, v, strategy, seed, &loads);
        let list = &mut self.node_edges[node];
        let pos = list.partition_point(|&e| e < (u, v));
        list.insert(pos, (u, v));
        self.presence[u.index()] |= 1 << node;
        self.presence[v.index()] |= 1 << node;
        NodeId::new(node as u16)
    }

    /// The node `strategy` routes edge `(u, v)` onto, given the current
    /// per-node `loads` (only consulted by the greedy heuristic). Pure:
    /// nothing is inserted.
    pub(crate) fn placement(
        &self,
        u: VertexId,
        v: VertexId,
        strategy: PartitionStrategy,
        seed: u64,
        loads: &[u64],
    ) -> usize {
        match strategy {
            PartitionStrategy::RandomVertexCut => {
                (hash2(seed, u.as_u32() as u64, v.as_u32() as u64) % self.num_nodes as u64) as usize
            }
            PartitionStrategy::SourceHash1D => {
                (hash1(seed, u.as_u32() as u64) % self.num_nodes as u64) as usize
            }
            PartitionStrategy::GreedyVertexCut => greedy_pick(
                self.presence[u.index()],
                self.presence[v.index()],
                loads,
                hash2(seed, u.as_u32() as u64, v.as_u32() as u64),
            ),
        }
    }

    /// Finds the node holding edge `(u, v)` without removing it.
    ///
    /// Hash-placed strategies compute the node directly (their placement
    /// is a pure function of the edge); the greedy strategy — whose
    /// placement depends on build history — falls back to scanning the
    /// per-node sorted lists.
    pub fn locate_edge(
        &self,
        u: VertexId,
        v: VertexId,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Option<NodeId> {
        if !matches!(strategy, PartitionStrategy::GreedyVertexCut) {
            let node = self.placement(u, v, strategy, seed, &[]);
            return self.node_edges[node]
                .binary_search(&(u, v))
                .ok()
                .map(|_| NodeId::new(node as u16));
        }
        for (n, list) in self.node_edges.iter().enumerate() {
            if list.binary_search(&(u, v)).is_ok() {
                return Some(NodeId::new(n as u16));
            }
        }
        None
    }

    /// Records that a replica of `v` lives on `node` (used when batching
    /// edge insertions outside [`PartitionedGraph::insert_edge`]).
    pub(crate) fn mark_present(&mut self, v: VertexId, node: NodeId) {
        self.presence[v.index()] |= 1 << node.index();
    }

    /// Splices every touched node's edge list — each list is rebuilt by
    /// copying the unchanged runs between its (sorted) `removed` and
    /// `added` entries, so the cost is O(list bytes) memcpy plus
    /// O(delta log list) search work; untouched nodes are skipped
    /// entirely.
    pub(crate) fn splice_nodes(
        &mut self,
        removed_by_node: &[Vec<(VertexId, VertexId)>],
        added_by_node: &[Vec<(VertexId, VertexId)>],
    ) {
        for ((list, removed), added) in self
            .node_edges
            .iter_mut()
            .zip(removed_by_node)
            .zip(added_by_node)
        {
            if removed.is_empty() && added.is_empty() {
                continue;
            }
            splice_list(list, removed, added);
        }
    }

    /// Removes edge `(u, v)` from whichever node holds it, returning that
    /// node, or `None` when no node does.
    ///
    /// Replica presence is left untouched: a vertex may keep a (now
    /// edge-less) replica on the node, so the replication factor becomes
    /// an upper bound until the next full rebuild. Program results are
    /// unaffected — gathers iterate edge lists, not presence — only the
    /// simulated memory/broadcast accounting is slightly pessimistic.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> Option<NodeId> {
        for (n, list) in self.node_edges.iter_mut().enumerate() {
            if let Ok(pos) = list.binary_search(&(u, v)) {
                list.remove(pos);
                return Some(NodeId::new(n as u16));
            }
        }
        None
    }
}

/// PowerGraph greedy heuristic: prefer nodes already hosting both endpoints,
/// then either endpoint, then the least-loaded node; ties break by load and
/// then by hash.
fn greedy_pick(mask_u: u64, mask_v: u64, loads: &[u64], tiebreak: u64) -> usize {
    let both = mask_u & mask_v;
    let either = mask_u | mask_v;
    let candidates = if both != 0 {
        both
    } else if either != 0 {
        either
    } else {
        u64::MAX
    };
    let mut best = usize::MAX;
    let mut best_load = u64::MAX;
    for (node, &load) in loads.iter().enumerate() {
        if candidates & (1u64 << node) == 0 {
            continue;
        }
        // Deterministic tie-break: rotate preference by the edge hash.
        let better = load < best_load
            || (load == best_load
                && (tiebreak as usize % loads.len()).abs_diff(node)
                    < (tiebreak as usize % loads.len()).abs_diff(best));
        if better {
            best = node;
            best_load = load;
        }
    }
    best
}

/// One sorted splice: `removed` dropped from and `added` woven into the
/// sorted `list`.
///
/// Instead of a per-element merge, the (few) change points are located
/// with binary searches and the unchanged runs between them are copied
/// as whole slices — the splice is memcpy-bound, O(list) bytes moved
/// with O(delta log list) search work.
fn splice_list(
    list: &mut Vec<(VertexId, VertexId)>,
    removed: &[(VertexId, VertexId)],
    added: &[(VertexId, VertexId)],
) {
    let old = std::mem::take(list);
    // Change events in `old`-index order: a removal skips the element at
    // its index, an insertion emits before it. Same-index events stay in
    // value order because `removed`/`added` are sorted and the sort is
    // stable on the index.
    enum Change {
        Skip,
        Emit((VertexId, VertexId)),
    }
    let mut events: Vec<(usize, Change)> = Vec::with_capacity(removed.len() + added.len());
    // Emits are pushed before skips so that at equal indices the stable
    // sort keeps the insertion (whose value is smaller than the removed
    // element at that index) ahead of the skip.
    for &a in added {
        events.push((old.partition_point(|&e| e < a), Change::Emit(a)));
    }
    for &r in removed {
        if let Ok(i) = old.binary_search(&r) {
            events.push((i, Change::Skip));
        }
    }
    events.sort_by_key(|&(i, _)| i);

    let mut merged = Vec::with_capacity(old.len() + added.len() - removed.len().min(old.len()));
    let mut pos = 0usize;
    for (idx, change) in events {
        merged.extend_from_slice(&old[pos..idx]);
        pos = idx;
        match change {
            Change::Skip => pos += 1,
            Change::Emit(a) => merged.push(a),
        }
    }
    merged.extend_from_slice(&old[pos..]);
    *list = merged;
}

/// Salt separating master assignment from edge placement hashing.
const MASTER_SALT: u64 = 0xAB5E;

/// The node holding the master replica of `vertex` in any partition built
/// over `num_nodes` nodes with `seed` — the pure placement function both
/// [`PartitionedGraph::build`] and [`PartitionedGraph::ensure_vertices`]
/// apply.
///
/// Exposed so layers that route work by master ownership (the shard
/// router) can compute placement without holding a partition — including
/// for vertices a future delta will introduce.
pub fn master_node(seed: u64, num_nodes: usize, vertex: u32) -> NodeId {
    NodeId::new((hash1(seed ^ MASTER_SALT, vertex as u64) % num_nodes as u64) as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snaple_graph::{gen, CsrGraph};

    fn test_graph() -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(5);
        gen::erdos_renyi(200, 800, &mut rng).into_symmetric_graph()
    }

    #[test]
    fn every_strategy_covers_all_edges_exactly_once() {
        let g = test_graph();
        for strategy in PartitionStrategy::all() {
            let p = PartitionedGraph::build(&g, 8, strategy, 42).unwrap();
            assert_eq!(p.total_edges(), g.num_edges(), "{strategy:?}");
            let mut collected: Vec<(u32, u32)> = (0..8)
                .flat_map(|n| {
                    p.node_edges(NodeId::new(n))
                        .iter()
                        .map(|&(u, v)| (u.as_u32(), v.as_u32()))
                })
                .collect();
            collected.sort_unstable();
            let expected: Vec<(u32, u32)> =
                g.edges().map(|(u, v)| (u.as_u32(), v.as_u32())).collect();
            assert_eq!(collected, expected, "{strategy:?}");
        }
    }

    #[test]
    fn node_edge_lists_stay_sorted() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 4, PartitionStrategy::RandomVertexCut, 1).unwrap();
        for n in 0..4 {
            let edges = p.node_edges(NodeId::new(n));
            assert!(edges.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn masters_are_present_and_replication_at_least_one() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 9).unwrap();
        for v in g.vertices() {
            assert!(p.is_present(v, p.master(v)), "{v}");
            assert!(p.replica_count(v) >= 1);
        }
        assert!(p.replication_factor() >= 1.0);
    }

    #[test]
    fn endpoints_are_present_where_their_edges_live() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::RandomVertexCut, 3).unwrap();
        for n in 0..8 {
            let node = NodeId::new(n);
            for &(u, v) in p.node_edges(node) {
                assert!(p.is_present(u, node));
                assert!(p.is_present(v, node));
            }
        }
    }

    #[test]
    fn source_hash_keeps_out_edges_together() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 8, PartitionStrategy::SourceHash1D, 3).unwrap();
        // Each vertex's out-edges must all live on a single node.
        for u in g.vertices() {
            let mut nodes: Vec<u16> = (0..8u16)
                .filter(|&n| p.node_edges(NodeId::new(n)).iter().any(|&(s, _)| s == u))
                .collect();
            nodes.dedup();
            assert!(nodes.len() <= 1, "vertex {u} spread over {nodes:?}");
        }
    }

    #[test]
    fn greedy_beats_random_on_replication() {
        let g = test_graph();
        let random =
            PartitionedGraph::build(&g, 16, PartitionStrategy::RandomVertexCut, 11).unwrap();
        let greedy =
            PartitionedGraph::build(&g, 16, PartitionStrategy::GreedyVertexCut, 11).unwrap();
        assert!(
            greedy.replication_factor() < random.replication_factor(),
            "greedy {} vs random {}",
            greedy.replication_factor(),
            random.replication_factor()
        );
    }

    #[test]
    fn single_node_partition_has_replication_one() {
        let g = test_graph();
        let p = PartitionedGraph::build(&g, 1, PartitionStrategy::RandomVertexCut, 0).unwrap();
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
        assert_eq!(p.total_edges(), g.num_edges());
    }

    #[test]
    fn rejects_invalid_node_counts() {
        let g = test_graph();
        assert!(matches!(
            PartitionedGraph::build(&g, 0, PartitionStrategy::RandomVertexCut, 0),
            Err(EngineError::InvalidConfig(_))
        ));
        assert!(matches!(
            PartitionedGraph::build(&g, 65, PartitionStrategy::RandomVertexCut, 0),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn partitioning_is_deterministic() {
        let g = test_graph();
        let a = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 7).unwrap();
        let b = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 7).unwrap();
        for n in 0..8 {
            assert_eq!(a.node_edges(NodeId::new(n)), b.node_edges(NodeId::new(n)));
        }
    }

    #[test]
    fn hash_strategies_place_incremental_edges_like_a_cold_build() {
        // Build a graph missing a few edges, insert them incrementally,
        // and compare against a cold partition of the complete graph:
        // hash-placed strategies must land every edge on the same node.
        let complete = test_graph();
        let all: Vec<(u32, u32)> = complete
            .edges()
            .map(|(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        let (held_out, kept) = all.split_at(10);
        let base = CsrGraph::from_edges(complete.num_vertices(), kept);
        for strategy in [
            PartitionStrategy::RandomVertexCut,
            PartitionStrategy::SourceHash1D,
        ] {
            let mut incremental = PartitionedGraph::build(&base, 8, strategy, 42).unwrap();
            for &(u, v) in held_out {
                incremental.insert_edge(VertexId::new(u), VertexId::new(v), strategy, 42);
            }
            let cold = PartitionedGraph::build(&complete, 8, strategy, 42).unwrap();
            for n in 0..8 {
                let node = NodeId::new(n);
                assert_eq!(
                    incremental.node_edges(node),
                    cold.node_edges(node),
                    "{strategy:?} node {n}"
                );
            }
        }
    }

    #[test]
    fn incremental_inserts_keep_lists_sorted_and_presence_consistent() {
        let g = test_graph();
        let mut p = PartitionedGraph::build(&g, 6, PartitionStrategy::GreedyVertexCut, 5).unwrap();
        let before = p.total_edges();
        let node = p.insert_edge(
            VertexId::new(0),
            VertexId::new(199),
            PartitionStrategy::GreedyVertexCut,
            5,
        );
        assert_eq!(p.total_edges(), before + 1);
        assert!(p.is_present(VertexId::new(0), node));
        assert!(p.is_present(VertexId::new(199), node));
        for n in 0..6 {
            let edges = p.node_edges(NodeId::new(n));
            assert!(edges.windows(2).all(|w| w[0] < w[1]), "node {n} unsorted");
        }
    }

    #[test]
    fn batched_splices_match_per_edge_mutations() {
        let g = test_graph();
        let strategy = PartitionStrategy::RandomVertexCut;
        let mut batched = PartitionedGraph::build(&g, 8, strategy, 3).unwrap();
        let mut one_by_one = batched.clone();

        let removals: Vec<(VertexId, VertexId)> = g.edges().step_by(7).collect();
        let additions: Vec<(VertexId, VertexId)> = (0..12u32)
            .map(|i| (VertexId::new(i), VertexId::new(199 - i)))
            .filter(|&(u, v)| !g.has_edge(u, v))
            .collect();

        let mut removed_by_node = vec![Vec::new(); 8];
        for &(u, v) in &removals {
            let node = batched.locate_edge(u, v, strategy, 3).unwrap();
            removed_by_node[node.index()].push((u, v));
        }
        let mut added_by_node = vec![Vec::new(); 8];
        for &(u, v) in &additions {
            let node = batched.placement(u, v, strategy, 3, &[]);
            added_by_node[node].push((u, v));
        }
        for n in 0..8 {
            removed_by_node[n].sort_unstable();
            added_by_node[n].sort_unstable();
        }
        batched.splice_nodes(&removed_by_node, &added_by_node);

        for &(u, v) in &removals {
            one_by_one.remove_edge(u, v).unwrap();
        }
        for &(u, v) in &additions {
            one_by_one.insert_edge(u, v, strategy, 3);
        }
        for n in 0..8 {
            assert_eq!(
                batched.node_edges(NodeId::new(n)),
                one_by_one.node_edges(NodeId::new(n)),
                "node {n}"
            );
        }
    }

    #[test]
    fn remove_edge_finds_and_drops_exactly_one_copy() {
        let g = test_graph();
        let mut p = PartitionedGraph::build(&g, 8, PartitionStrategy::RandomVertexCut, 3).unwrap();
        let (u, v) = g.edges().next().unwrap();
        let before = p.total_edges();
        let node = p.remove_edge(u, v).expect("edge must be found");
        assert_eq!(p.total_edges(), before - 1);
        assert!(!p.node_edges(node).contains(&(u, v)));
        // Absent edges are reported as such.
        assert_eq!(p.remove_edge(u, v), None);
    }

    #[test]
    fn ensure_vertices_matches_cold_master_assignment() {
        let g = test_graph();
        let mut small =
            PartitionedGraph::build(&g, 8, PartitionStrategy::RandomVertexCut, 7).unwrap();
        small.ensure_vertices(g.num_vertices() + 30, 7);
        let bigger_edges: Vec<(u32, u32)> =
            g.edges().map(|(u, v)| (u.as_u32(), v.as_u32())).collect();
        let big_graph = CsrGraph::from_edges(g.num_vertices() + 30, &bigger_edges);
        let cold =
            PartitionedGraph::build(&big_graph, 8, PartitionStrategy::RandomVertexCut, 7).unwrap();
        for u in 0..(g.num_vertices() + 30) as u32 {
            assert_eq!(
                small.master(VertexId::new(u)),
                cold.master(VertexId::new(u)),
                "vertex {u}"
            );
        }
    }

    #[test]
    fn empty_graph_partitions_cleanly() {
        let g = CsrGraph::from_edges(0, &[]);
        let p = PartitionedGraph::build(&g, 4, PartitionStrategy::RandomVertexCut, 0).unwrap();
        assert_eq!(p.total_edges(), 0);
        assert_eq!(p.edge_balance(), (0, 0));
        assert!((p.replication_factor() - 1.0).abs() < 1e-12);
    }
}
