//! Reusable scratch storage for the gather phase.
//!
//! Every gather worker owns one `WorkerScratch` that persists across
//! partitions *and* supersteps, so the hot path stops re-allocating its
//! edge-sort and run buffers per partition. The [`ScratchArena`] inside it
//! is handed to [`GasStep::gather_run`](crate::GasStep::gather_run) so
//! batched programs can lease temporary buffers (kernel stripes, staging
//! tables) that would otherwise be rebuilt per vertex run.

use snaple_graph::VertexId;

/// A pool of reusable scratch buffers for batched gather programs.
///
/// Buffers leased from the arena live only for the duration of one
/// [`GasStep::gather_run`](crate::GasStep::gather_run) call and must be
/// [released](ScratchArena::release_f32) before returning so the next run
/// (and the next superstep) reuses the allocation. Leased buffers carry no
/// data between runs: a lease always returns a zero-filled buffer of the
/// requested length, so pooling cannot change program output.
#[derive(Debug, Default)]
pub struct ScratchArena {
    f32_bufs: Vec<Vec<f32>>,
}

impl ScratchArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Leases a zero-filled `f32` buffer of exactly `len` elements,
    /// reusing a previously released allocation when one is available.
    pub fn lease_f32(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.f32_bufs.pop().unwrap_or_default();
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a leased buffer to the pool for reuse by later runs.
    pub fn release_f32(&mut self, buf: Vec<f32>) {
        self.f32_bufs.push(buf);
    }
}

/// Per-worker scratch state of the engine's gather phase: the in-direction
/// edge sort buffer, the current run's neighbor list, and the program-facing
/// arena. One instance per host worker, reused across supersteps.
#[derive(Debug, Default)]
pub(crate) struct WorkerScratch {
    /// Sorted copy of a partition's edges (in-direction steps only).
    pub(crate) edges: Vec<(VertexId, VertexId)>,
    /// Neighbors of the gather run currently being assembled.
    pub(crate) neighbors: Vec<VertexId>,
    /// Buffer pool handed to `gather_run`.
    pub(crate) arena: ScratchArena,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_are_zeroed_and_recycled() {
        let mut arena = ScratchArena::new();
        let mut buf = arena.lease_f32(4);
        assert_eq!(buf, vec![0.0; 4]);
        buf[2] = 7.5;
        let ptr = buf.as_ptr();
        arena.release_f32(buf);
        let again = arena.lease_f32(3);
        assert_eq!(again, vec![0.0; 3], "recycled buffers must come back clean");
        assert_eq!(again.as_ptr(), ptr, "the allocation itself is reused");
        arena.release_f32(again);
    }

    #[test]
    fn growing_leases_reuse_the_backing_allocation() {
        let mut arena = ScratchArena::new();
        let buf = arena.lease_f32(2);
        arena.release_f32(buf);
        let bigger = arena.lease_f32(100);
        assert_eq!(bigger.len(), 100);
        assert!(bigger.iter().all(|&x| x == 0.0));
    }
}
