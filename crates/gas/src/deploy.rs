//! Prepared deployments: the shareable, immutable half of an engine.
//!
//! Building a vertex-cut partition is O(edges) — by far the most expensive
//! part of setting up a GAS run. A [`Deployment`] bundles that partition
//! with the cluster description and its calibrated [`CostModel`] so the
//! whole package can be built **once** and then shared by any number of
//! [`Engine`](crate::Engine)s (see [`Engine::on`](crate::Engine::on)):
//!
//! ```
//! use snaple_gas::{ClusterSpec, Deployment, Engine, PartitionStrategy};
//! use snaple_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let deployment = Deployment::new(&g, ClusterSpec::type_i(2),
//!                                  PartitionStrategy::RandomVertexCut, 7)?;
//! // Many engines, one partition: per-run accounting stays per-engine,
//! // the O(edges) partition build is paid exactly once.
//! let first = Engine::on(&deployment);
//! let second = Engine::on(&deployment);
//! assert_eq!(first.graph().num_edges(), second.graph().num_edges());
//! # Ok::<(), snaple_gas::EngineError>(())
//! ```
//!
//! This split is what turns a one-shot predictor into a *prepare once,
//! execute many* server: the serving layers upstream
//! (`snaple_core::Predictor::prepare`, `snaple_core::serve::Server`) hold a
//! `Deployment` per graph/cluster pair and spin up a fresh engine per
//! request stream step.

use std::time::Instant;

use snaple_graph::CsrGraph;

use crate::cluster::ClusterSpec;
use crate::cost::CostModel;
use crate::error::EngineError;
use crate::partition::{PartitionStrategy, PartitionedGraph};

/// The immutable heavy state of a GAS run: graph, cluster, vertex-cut
/// partition and cost model.
///
/// See the [module docs](self) for why this exists and how it is shared.
#[derive(Clone, Debug)]
pub struct Deployment<'g> {
    graph: &'g CsrGraph,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    seed: u64,
    part: PartitionedGraph,
    cost: CostModel,
    partition_build_seconds: f64,
}

impl<'g> Deployment<'g> {
    /// Partitions `graph` over `cluster` and derives the cluster's cost
    /// model, recording how long the partition build took on the host.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for unusable cluster shapes
    /// (zero nodes, more than [`crate::partition::MAX_NODES`] nodes).
    pub fn new(
        graph: &'g CsrGraph,
        cluster: ClusterSpec,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Self, EngineError> {
        let started = Instant::now();
        let part = PartitionedGraph::build(graph, cluster.nodes, strategy, seed)?;
        let partition_build_seconds = started.elapsed().as_secs_f64();
        let cost = CostModel::for_cluster(&cluster);
        Ok(Deployment {
            graph,
            cluster,
            strategy,
            seed,
            part,
            cost,
            partition_build_seconds,
        })
    }

    /// The graph this deployment partitions.
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The edge-placement strategy the partition was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The seed the partition was built with (also the default step seed of
    /// engines running on this deployment).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The vertex-cut partition.
    pub fn partitioned(&self) -> &PartitionedGraph {
        &self.part
    }

    /// The cluster's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Host wall-clock seconds spent building the partition — the setup
    /// cost that sharing a deployment amortizes away.
    pub fn partition_build_seconds(&self) -> f64 {
        self.partition_build_seconds
    }

    /// Replication factor of the partition.
    pub fn replication_factor(&self) -> f64 {
        self.part.replication_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ring(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn deployment_captures_partition_and_timing() {
        let g = ring(50);
        let d =
            Deployment::new(&g, ClusterSpec::type_i(4), PartitionStrategy::default(), 3).unwrap();
        assert_eq!(d.partitioned().total_edges(), g.num_edges());
        assert!(d.partition_build_seconds() >= 0.0);
        assert!(d.replication_factor() >= 1.0);
        assert_eq!(d.cluster().nodes, 4);
        assert_eq!(d.seed(), 3);
        assert_eq!(d.strategy(), PartitionStrategy::RandomVertexCut);
    }

    #[test]
    fn deployment_rejects_invalid_clusters() {
        let g = ring(10);
        let starved = ClusterSpec {
            nodes: 0,
            ..ClusterSpec::type_i(1)
        };
        assert!(matches!(
            Deployment::new(&g, starved, PartitionStrategy::default(), 0),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deployment_partition_matches_a_direct_build() {
        let g = ring(64);
        let d = Deployment::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::GreedyVertexCut,
            9,
        )
        .unwrap();
        let direct = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 9).unwrap();
        for n in 0..8 {
            let node = NodeId::new(n);
            assert_eq!(d.partitioned().node_edges(node), direct.node_edges(node));
        }
    }
}
