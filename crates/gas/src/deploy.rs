//! Prepared deployments: the shareable half of an engine, now refreshable
//! in place.
//!
//! Building a vertex-cut partition is O(edges) — by far the most expensive
//! part of setting up a GAS run. A [`Deployment`] bundles that partition
//! with the cluster description and its calibrated [`CostModel`] so the
//! whole package can be built **once** and then shared by any number of
//! [`Engine`](crate::Engine)s (see [`Engine::on`](crate::Engine::on)):
//!
//! ```
//! use snaple_gas::{ClusterSpec, Deployment, Engine, PartitionStrategy};
//! use snaple_graph::CsrGraph;
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let deployment = Deployment::new(&g, ClusterSpec::type_i(2),
//!                                  PartitionStrategy::RandomVertexCut, 7)?;
//! // Many engines, one partition: per-run accounting stays per-engine,
//! // the O(edges) partition build is paid exactly once.
//! let first = Engine::on(&deployment);
//! let second = Engine::on(&deployment);
//! assert_eq!(first.graph().num_edges(), second.graph().num_edges());
//! # Ok::<(), snaple_gas::EngineError>(())
//! ```
//!
//! # The delta lifecycle: prepare → execute → `apply_delta` → execute
//!
//! A serving deployment over a *growing* graph must not repartition
//! O(edges) state whenever a follow edge arrives.
//! [`Deployment::apply_delta`] ingests a
//! [`snaple_graph::GraphDelta`] incrementally: the mutated
//! graph is folded in with a linear
//! [`CsrGraph::compact`](snaple_graph::CsrGraph::compact) merge, removed
//! edges are dropped from — and inserted edges routed onto — only the
//! partitions that actually hold them, and the per-partition cost-model
//! entries (static CSR bytes per node) are rebuilt for the touched
//! partitions alone. Engines created after the apply observe the mutated
//! graph; program results are bit-identical to a cold rebuild on that
//! graph, because GAS program output never depends on edge placement
//! (the engine's cross-cluster determinism guarantee).
//!
//! ```
//! use snaple_gas::{ClusterSpec, Deployment, PartitionStrategy};
//! use snaple_graph::{CsrGraph, GraphDelta};
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
//! let mut deployment = Deployment::new(&g, ClusterSpec::type_i(2),
//!                                      PartitionStrategy::RandomVertexCut, 7)?;
//! let mut delta = GraphDelta::new();
//! delta.insert(0, 2).remove(1, 2);
//! let applied = deployment.apply_delta(&delta)?;
//! assert_eq!(applied.inserted_edges, 1);
//! assert_eq!(applied.removed_edges, 1);
//! assert_eq!(deployment.graph().num_edges(), 3);
//! # Ok::<(), snaple_gas::EngineError>(())
//! ```
//!
//! This split is what turns a one-shot predictor into a *prepare once,
//! execute many* server: the serving layers upstream
//! (`snaple_core::Predictor::prepare`, `snaple_core::serve::Server`) hold a
//! `Deployment` per graph/cluster pair, spin up a fresh engine per request
//! stream step, and refresh the deployment in place when update batches
//! interleave with prediction batches.

use std::sync::Arc;
use std::time::Instant;

use snaple_graph::{CsrGraph, GraphDelta, GraphStore};

use crate::cluster::{ClusterSpec, NodeId};
use crate::cost::CostModel;
use crate::error::EngineError;
use crate::partition::{PartitionStrategy, PartitionedGraph};

/// What one [`Deployment::apply_delta`] call did, and what it cost.
#[derive(Clone, Debug, Default)]
pub struct DeltaStats {
    /// Effective edge insertions applied (no-ops already dropped).
    pub inserted_edges: usize,
    /// Effective edge removals applied.
    pub removed_edges: usize,
    /// Vertices the graph grew by (insertions referencing new ids).
    pub grown_vertices: usize,
    /// Distinct partitions whose edge lists (and cached cost-model
    /// entries) were touched — the incremental win: a small delta touches
    /// a handful of partitions, a full rebuild touches all of them.
    pub touched_partitions: usize,
    /// Host wall-clock seconds the whole apply took (compact + re-route).
    pub apply_wall_seconds: f64,
}

/// The graph a deployment partitions, in whichever ownership shape the
/// caller handed it over: borrowed from the caller (the historical
/// `Cow::Borrowed` path), owned after the first applied delta, or shared
/// with other deployments behind an `Arc` (how file-backed and compressed
/// [`GraphStore`] backends are served without copying them per engine).
#[derive(Clone, Debug)]
enum DepGraph<'g> {
    Borrowed(&'g dyn GraphStore),
    Owned(CsrGraph),
    Shared(Arc<dyn GraphStore>),
}

impl DepGraph<'_> {
    fn store(&self) -> &dyn GraphStore {
        match self {
            DepGraph::Borrowed(g) => *g,
            DepGraph::Owned(g) => g,
            DepGraph::Shared(g) => g.as_ref(),
        }
    }
}

/// The immutable-between-updates heavy state of a GAS run: graph, cluster,
/// vertex-cut partition and cost model.
///
/// The graph can be any [`GraphStore`] backend — an in-memory
/// [`CsrGraph`], a file-backed `snaple_graph::v2::FileCsr`, or a
/// compressed `snaple_graph::compress::CompressedGraph` — and partitioning,
/// supersteps and delta applies behave identically over all of them
/// (applying a delta folds any backend into an owned in-memory CSR, since
/// the mutated graph no longer matches the on-disk bytes).
///
/// See the [module docs](self) for why this exists, how it is shared, and
/// how [`Deployment::apply_delta`] refreshes it in place.
#[derive(Clone, Debug)]
pub struct Deployment<'g> {
    /// Borrowed until the first applied delta, owned afterwards.
    graph: DepGraph<'g>,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    seed: u64,
    part: PartitionedGraph,
    cost: CostModel,
    /// Per-node static CSR share in bytes (8 per stored edge) — the
    /// partition-local cost-model entry engines charge as each node's
    /// memory base. Rebuilt only for touched partitions on delta applies.
    node_static_bytes: Vec<u64>,
    partition_build_seconds: f64,
    deltas_applied: usize,
    delta_apply_seconds: f64,
    delta_touched_partitions: usize,
}

impl<'g> Deployment<'g> {
    /// Partitions `graph` over `cluster` and derives the cluster's cost
    /// model, recording how long the partition build took on the host.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for unusable cluster shapes
    /// (zero nodes, more than [`crate::partition::MAX_NODES`] nodes).
    pub fn new(
        graph: &'g dyn GraphStore,
        cluster: ClusterSpec,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Self, EngineError> {
        Deployment::assemble(DepGraph::Borrowed(graph), cluster, strategy, seed)
    }

    /// Like [`Deployment::new`] over a shared, owning graph handle — the
    /// entry point for serving layers that open a [`GraphStore`] backend
    /// themselves (e.g. `snaple_graph::io::open_store`) and need a
    /// `'static` deployment.
    ///
    /// # Errors
    ///
    /// As [`Deployment::new`].
    pub fn new_shared(
        graph: Arc<dyn GraphStore>,
        cluster: ClusterSpec,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Deployment<'static>, EngineError> {
        Deployment::assemble(DepGraph::Shared(graph), cluster, strategy, seed)
    }

    fn assemble<'a>(
        graph: DepGraph<'a>,
        cluster: ClusterSpec,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Deployment<'a>, EngineError> {
        let started = Instant::now();
        let part = PartitionedGraph::build(graph.store(), cluster.nodes, strategy, seed)?;
        let partition_build_seconds = started.elapsed().as_secs_f64();
        let cost = CostModel::for_cluster(&cluster);
        let node_static_bytes = (0..part.num_nodes())
            .map(|n| part.node_edges(NodeId::new(n as u16)).len() as u64 * 8)
            .collect();
        Ok(Deployment {
            graph,
            cluster,
            strategy,
            seed,
            part,
            cost,
            node_static_bytes,
            partition_build_seconds,
            deltas_applied: 0,
            delta_apply_seconds: 0.0,
            delta_touched_partitions: 0,
        })
    }

    /// Ingests a batch of edge insertions/removals *incrementally*: the
    /// graph is compacted with a linear merge, and only the vertex-cut
    /// partitions holding a removed edge or receiving an inserted one are
    /// re-routed — partitions the delta does not touch keep their edge
    /// lists and cached cost entries byte-for-byte.
    ///
    /// Engines created on this deployment after the call run on the
    /// mutated graph; their results are bit-identical to a cold
    /// [`Deployment::new`] on that graph. The cumulative apply time and
    /// touched-partition count are surfaced in every subsequent run's
    /// [`RunStats`](crate::RunStats).
    ///
    /// A delta whose every operation is a no-op against the current graph
    /// (inserting present edges, removing absent ones) returns zeroed
    /// counts without rebuilding anything.
    ///
    /// # Errors
    ///
    /// Currently infallible in practice — the signature reserves the
    /// error channel for future cluster-capacity validation, matching
    /// [`Deployment::new`].
    pub fn apply_delta(&mut self, delta: &GraphDelta) -> Result<DeltaStats, EngineError> {
        let started = Instant::now();
        let overlay = delta.resolve(self.graph.store());
        if overlay.is_noop() {
            let stats = DeltaStats {
                apply_wall_seconds: started.elapsed().as_secs_f64(),
                ..DeltaStats::default()
            };
            self.deltas_applied += 1;
            self.delta_apply_seconds += stats.apply_wall_seconds;
            return Ok(stats);
        }
        let grown_vertices = overlay.num_vertices() - self.graph.store().num_vertices();
        self.part.ensure_vertices(overlay.num_vertices(), self.seed);

        // Route the whole batch first, then splice each touched node's
        // edge list in one merge pass — O(delta + touched lists), instead
        // of one O(list) shift per edge.
        let nodes = self.part.num_nodes();
        let mut removed_by_node: Vec<Vec<_>> = vec![Vec::new(); nodes];
        for (u, v) in overlay.removed_edges() {
            if let Some(node) = self.part.locate_edge(u, v, self.strategy, self.seed) {
                removed_by_node[node.index()].push((u, v));
            }
        }
        // Greedy placement consults live state: loads net of the edges
        // queued for removal, and presence bits updated as each insert
        // lands — so a batch routes exactly like a sequence of per-edge
        // `insert_edge` calls preceded by the removals.
        let mut added_by_node: Vec<Vec<_>> = vec![Vec::new(); nodes];
        let mut loads: Vec<u64> = (0..nodes)
            .map(|n| {
                (self.part.node_edges(NodeId::new(n as u16)).len() - removed_by_node[n].len())
                    as u64
            })
            .collect();
        for (u, v, _) in overlay.inserted_edges() {
            let node = self.part.placement(u, v, self.strategy, self.seed, &loads);
            loads[node] += 1;
            added_by_node[node].push((u, v));
            self.part.mark_present(u, NodeId::new(node as u16));
            self.part.mark_present(v, NodeId::new(node as u16));
        }
        let mut touched = 0u64; // bitmask over MAX_NODES ≤ 64 partitions
        for n in 0..nodes {
            if removed_by_node[n].is_empty() && added_by_node[n].is_empty() {
                continue;
            }
            touched |= 1 << n;
            // `removed_edges`/`inserted_edges` iterate in (src, dst)
            // order, so the per-node groups arrive sorted — but the
            // added groups are not guaranteed disjoint-sorted against
            // interleaving, so sort defensively (cheap: per-node slices).
            removed_by_node[n].sort_unstable();
            added_by_node[n].sort_unstable();
        }

        // Fold the overlay in without transiently doubling the adjacency:
        // an owned CSR is compacted *consuming* (its arrays are reused in
        // place), an in-memory borrow uses the cloning merge, and any
        // other backend is materialized once and then consumed.
        let placeholder = DepGraph::Owned(CsrGraph::from_edges(0, &[]));
        let new_graph = match std::mem::replace(&mut self.graph, placeholder) {
            DepGraph::Owned(g) => g.compact_overlay_owned(&overlay),
            DepGraph::Borrowed(g) => match g.as_csr() {
                Some(csr) => csr.compact_overlay(&overlay),
                None => g.to_csr().compact_overlay_owned(&overlay),
            },
            DepGraph::Shared(g) => match g.as_csr() {
                Some(csr) => csr.compact_overlay(&overlay),
                None => g.to_csr().compact_overlay_owned(&overlay),
            },
        };
        self.part.splice_nodes(&removed_by_node, &added_by_node);
        // Refresh the touched partitions' cached cost-model entries;
        // untouched entries are already exact.
        let mut mask = touched;
        while mask != 0 {
            let n = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            self.node_static_bytes[n] =
                self.part.node_edges(NodeId::new(n as u16)).len() as u64 * 8;
        }
        self.graph = DepGraph::Owned(new_graph);

        let stats = DeltaStats {
            inserted_edges: overlay.num_inserted(),
            removed_edges: overlay.num_removed(),
            grown_vertices,
            touched_partitions: touched.count_ones() as usize,
            apply_wall_seconds: started.elapsed().as_secs_f64(),
        };
        self.deltas_applied += 1;
        self.delta_apply_seconds += stats.apply_wall_seconds;
        self.delta_touched_partitions += stats.touched_partitions;
        Ok(stats)
    }

    /// Clones the deployment into a fully owned (`'static`) snapshot,
    /// detaching it from the borrowed base graph.
    ///
    /// This is the building block of *epoch-based* serving
    /// (`snaple_core::concurrent`): a concurrent server forks the current
    /// deployment off to the side, applies a delta to the fork, and
    /// atomically publishes it — readers keep executing on the old epoch
    /// and never observe a half-applied update. The copy is memcpy-bound
    /// (graph CSR arrays, partition edge lists); the subsequent
    /// [`Deployment::apply_delta`] on the fork is still incremental.
    pub fn detach(&self) -> Deployment<'static> {
        let graph = match &self.graph {
            DepGraph::Owned(g) => DepGraph::Owned(g.clone()),
            // An in-memory borrow detaches to an owned copy (the
            // historical behavior); other backends detach to a shared
            // handle — cloning a file-backed graph into RAM would defeat
            // its purpose, and epoch forks only mutate via `apply_delta`,
            // which folds to an owned CSR anyway.
            DepGraph::Borrowed(g) => match g.as_csr() {
                Some(csr) => DepGraph::Owned(csr.clone()),
                None => DepGraph::Shared(g.clone_shared()),
            },
            DepGraph::Shared(g) => DepGraph::Shared(Arc::clone(g)),
        };
        Deployment {
            graph,
            cluster: self.cluster.clone(),
            strategy: self.strategy,
            seed: self.seed,
            part: self.part.clone(),
            cost: self.cost.clone(),
            node_static_bytes: self.node_static_bytes.clone(),
            partition_build_seconds: self.partition_build_seconds,
            deltas_applied: self.deltas_applied,
            delta_apply_seconds: self.delta_apply_seconds,
            delta_touched_partitions: self.delta_touched_partitions,
        }
    }

    /// The graph this deployment partitions — the *current* graph,
    /// reflecting every applied delta.
    pub fn graph(&self) -> &dyn GraphStore {
        self.graph.store()
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The edge-placement strategy the partition was built with.
    pub fn strategy(&self) -> PartitionStrategy {
        self.strategy
    }

    /// The seed the partition was built with (also the default step seed of
    /// engines running on this deployment).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The vertex-cut partition.
    pub fn partitioned(&self) -> &PartitionedGraph {
        &self.part
    }

    /// The cluster's cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Per-node static CSR bytes — the partition-local cost entries,
    /// maintained incrementally across delta applies.
    pub fn node_static_bytes(&self) -> &[u64] {
        &self.node_static_bytes
    }

    /// Host wall-clock seconds spent building the partition — the setup
    /// cost that sharing a deployment amortizes away.
    pub fn partition_build_seconds(&self) -> f64 {
        self.partition_build_seconds
    }

    /// Number of [`Deployment::apply_delta`] calls absorbed so far.
    pub fn deltas_applied(&self) -> usize {
        self.deltas_applied
    }

    /// Cumulative host wall-clock seconds spent applying deltas.
    pub fn delta_apply_seconds(&self) -> f64 {
        self.delta_apply_seconds
    }

    /// Cumulative count of partitions touched by applied deltas.
    pub fn delta_touched_partitions(&self) -> usize {
        self.delta_touched_partitions
    }

    /// Replication factor of the partition.
    ///
    /// After removals this is an upper bound: replicas stranded on
    /// partitions that lost their last edge are not reclaimed until a
    /// full rebuild (see
    /// [`PartitionedGraph::remove_edge`]).
    pub fn replication_factor(&self) -> f64 {
        self.part.replication_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    fn ring(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn deployment_captures_partition_and_timing() {
        let g = ring(50);
        let d =
            Deployment::new(&g, ClusterSpec::type_i(4), PartitionStrategy::default(), 3).unwrap();
        assert_eq!(d.partitioned().total_edges(), g.num_edges());
        assert!(d.partition_build_seconds() >= 0.0);
        assert!(d.replication_factor() >= 1.0);
        assert_eq!(d.cluster().nodes, 4);
        assert_eq!(d.seed(), 3);
        assert_eq!(d.strategy(), PartitionStrategy::RandomVertexCut);
        assert_eq!(d.deltas_applied(), 0);
        assert_eq!(d.delta_apply_seconds(), 0.0);
    }

    #[test]
    fn deployment_rejects_invalid_clusters() {
        let g = ring(10);
        let starved = ClusterSpec {
            nodes: 0,
            ..ClusterSpec::type_i(1)
        };
        assert!(matches!(
            Deployment::new(&g, starved, PartitionStrategy::default(), 0),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn deployment_partition_matches_a_direct_build() {
        let g = ring(64);
        let d = Deployment::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::GreedyVertexCut,
            9,
        )
        .unwrap();
        let direct = PartitionedGraph::build(&g, 8, PartitionStrategy::GreedyVertexCut, 9).unwrap();
        for n in 0..8 {
            let node = NodeId::new(n);
            assert_eq!(d.partitioned().node_edges(node), direct.node_edges(node));
        }
    }

    #[test]
    fn apply_delta_mutates_graph_and_partition_consistently() {
        let g = ring(40);
        let mut d = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            7,
        )
        .unwrap();
        let mut delta = GraphDelta::new();
        delta
            .insert(0, 20)
            .insert(5, 30)
            .remove(0, 1)
            .remove(10, 11);
        let stats = d.apply_delta(&delta).unwrap();
        assert_eq!(stats.inserted_edges, 2);
        assert_eq!(stats.removed_edges, 2);
        assert_eq!(stats.grown_vertices, 0);
        assert!(stats.touched_partitions >= 1 && stats.touched_partitions <= 4);
        assert!(stats.apply_wall_seconds >= 0.0);

        // Graph and partition agree on the mutated edge set.
        assert_eq!(d.graph().num_edges(), 40);
        assert_eq!(d.partitioned().total_edges(), 40);
        use snaple_graph::VertexId;
        assert!(d.graph().has_edge(VertexId::new(0), VertexId::new(20)));
        assert!(!d.graph().has_edge(VertexId::new(0), VertexId::new(1)));
        let mut collected: Vec<(u32, u32)> = (0..4)
            .flat_map(|n| {
                d.partitioned()
                    .node_edges(NodeId::new(n))
                    .iter()
                    .map(|&(u, v)| (u.as_u32(), v.as_u32()))
            })
            .collect();
        collected.sort_unstable();
        let expected: Vec<(u32, u32)> = snaple_graph::store::edges(d.graph())
            .map(|(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        assert_eq!(collected, expected);

        // Cumulative accounting carried by the deployment.
        assert_eq!(d.deltas_applied(), 1);
        assert!(d.delta_apply_seconds() > 0.0);
        assert_eq!(d.delta_touched_partitions(), stats.touched_partitions);
    }

    #[test]
    fn greedy_batched_routing_matches_per_edge_mutations() {
        // The batched routing must see live greedy state: loads net of
        // pending removals, presence updated insert-by-insert. Compare
        // against a literal sequence of remove_edge/insert_edge calls.
        let g = ring(60);
        let strategy = PartitionStrategy::GreedyVertexCut;
        let mut deployment = Deployment::new(&g, ClusterSpec::type_i(6), strategy, 11).unwrap();
        let mut delta = GraphDelta::new();
        delta.remove(0, 1).remove(10, 11).remove(20, 21);
        // Inserts sharing endpoints: the second placement must observe
        // the replica the first created.
        delta
            .insert(7, 30)
            .insert(7, 31)
            .insert(7, 32)
            .insert(30, 7);
        let overlay = delta.resolve(&g);

        let mut manual = PartitionedGraph::build(&g, 6, strategy, 11).unwrap();
        for (u, v) in overlay.removed_edges() {
            manual.remove_edge(u, v).unwrap();
        }
        for (u, v, _) in overlay.inserted_edges() {
            manual.insert_edge(u, v, strategy, 11);
        }

        deployment.apply_delta(&delta).unwrap();
        for n in 0..6 {
            let node = NodeId::new(n);
            assert_eq!(
                deployment.partitioned().node_edges(node),
                manual.node_edges(node),
                "greedy batch diverged from per-edge path on node {n}"
            );
        }
        for v in g.vertices() {
            assert_eq!(
                deployment.partitioned().presence_mask(v),
                manual.presence_mask(v),
                "presence of {v}"
            );
        }
    }

    #[test]
    fn apply_delta_grows_the_vertex_range() {
        let g = ring(10);
        let mut d = Deployment::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let mut delta = GraphDelta::new();
        delta.insert(3, 14).insert(12, 0);
        let stats = d.apply_delta(&delta).unwrap();
        assert_eq!(stats.grown_vertices, 5);
        assert_eq!(d.graph().num_vertices(), 15);
        use snaple_graph::VertexId;
        // New vertices got masters and are present where their edges live.
        let p = d.partitioned();
        for v in [12u32, 14] {
            assert!(p.is_present(VertexId::new(v), p.master(VertexId::new(v))));
        }
    }

    #[test]
    fn noop_deltas_change_nothing_but_are_counted() {
        let g = ring(10);
        let mut d = Deployment::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let before: Vec<u64> = d.node_static_bytes().to_vec();
        let mut delta = GraphDelta::new();
        delta.insert(0, 1).remove(5, 7); // present insert, absent removal
        let stats = d.apply_delta(&delta).unwrap();
        assert_eq!(stats.inserted_edges, 0);
        assert_eq!(stats.removed_edges, 0);
        assert_eq!(stats.touched_partitions, 0);
        assert_eq!(d.node_static_bytes(), &before[..]);
        assert_eq!(d.graph().num_edges(), 10);
        assert_eq!(d.deltas_applied(), 1);
    }

    #[test]
    fn detached_forks_apply_deltas_without_touching_the_original() {
        let g = ring(40);
        let original = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            7,
        )
        .unwrap();
        let mut fork: Deployment<'static> = original.detach();
        // The fork is byte-identical to its source...
        assert_eq!(fork.graph().num_edges(), original.graph().num_edges());
        for n in 0..4 {
            let node = NodeId::new(n);
            assert_eq!(
                fork.partitioned().node_edges(node),
                original.partitioned().node_edges(node)
            );
        }
        assert_eq!(fork.node_static_bytes(), original.node_static_bytes());
        // ...and mutating it leaves the original untouched.
        let mut delta = GraphDelta::new();
        delta.insert(0, 20).remove(0, 1);
        fork.apply_delta(&delta).unwrap();
        use snaple_graph::VertexId;
        assert!(fork.graph().has_edge(VertexId::new(0), VertexId::new(20)));
        assert!(!original
            .graph()
            .has_edge(VertexId::new(0), VertexId::new(20)));
        assert!(original
            .graph()
            .has_edge(VertexId::new(0), VertexId::new(1)));
        assert_eq!(original.deltas_applied(), 0);
        assert_eq!(fork.deltas_applied(), 1);
        // A fork of a fork keeps working (owned graphs detach too).
        let refork = fork.detach();
        assert_eq!(refork.graph().num_edges(), fork.graph().num_edges());
    }

    #[test]
    fn static_byte_cache_tracks_touched_partitions_exactly() {
        let g = ring(60);
        let mut d = Deployment::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::RandomVertexCut,
            4,
        )
        .unwrap();
        let mut delta = GraphDelta::new();
        delta.insert(0, 30).remove(20, 21);
        d.apply_delta(&delta).unwrap();
        for n in 0..8 {
            assert_eq!(
                d.node_static_bytes()[n],
                d.partitioned().node_edges(NodeId::new(n as u16)).len() as u64 * 8,
                "node {n} cache diverged"
            );
        }
    }
}
