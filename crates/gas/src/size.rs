//! Payload size estimation for network and memory accounting.

use snaple_graph::VertexId;

/// Types whose serialized payload size can be estimated.
///
/// The engine uses these estimates for everything it accounts in bytes:
/// master→mirror state broadcasts, mirror→master gather partials, and
/// per-node memory footprints. Estimates follow a simple wire model — fixed
/// width scalars plus a 16-byte envelope per variable-length collection —
/// so they are deterministic and cheap.
///
/// ```
/// use snaple_gas::SizeEstimate;
/// assert_eq!(1u32.estimated_bytes(), 4);
/// assert_eq!(vec![1u32, 2, 3].estimated_bytes(), 16 + 12);
/// ```
pub trait SizeEstimate {
    /// Estimated payload size in bytes.
    fn estimated_bytes(&self) -> u64;
}

/// Envelope overhead charged per variable-length collection.
pub const COLLECTION_OVERHEAD: u64 = 16;

macro_rules! fixed_size {
    ($($t:ty => $n:expr),* $(,)?) => {
        $(impl SizeEstimate for $t {
            #[inline]
            fn estimated_bytes(&self) -> u64 { $n }
        })*
    };
}

fixed_size! {
    u8 => 1, u16 => 2, u32 => 4, u64 => 8, usize => 8,
    i8 => 1, i16 => 2, i32 => 4, i64 => 8,
    f32 => 4, f64 => 8, bool => 1,
    VertexId => 4,
    () => 0,
}

impl<T: SizeEstimate> SizeEstimate for Option<T> {
    fn estimated_bytes(&self) -> u64 {
        1 + self.as_ref().map_or(0, SizeEstimate::estimated_bytes)
    }
}

impl<T: SizeEstimate> SizeEstimate for Vec<T> {
    fn estimated_bytes(&self) -> u64 {
        COLLECTION_OVERHEAD + self.iter().map(SizeEstimate::estimated_bytes).sum::<u64>()
    }
}

impl<T: SizeEstimate> SizeEstimate for [T] {
    fn estimated_bytes(&self) -> u64 {
        COLLECTION_OVERHEAD + self.iter().map(SizeEstimate::estimated_bytes).sum::<u64>()
    }
}

impl<A: SizeEstimate, B: SizeEstimate> SizeEstimate for (A, B) {
    fn estimated_bytes(&self) -> u64 {
        self.0.estimated_bytes() + self.1.estimated_bytes()
    }
}

impl<A: SizeEstimate, B: SizeEstimate, C: SizeEstimate> SizeEstimate for (A, B, C) {
    fn estimated_bytes(&self) -> u64 {
        self.0.estimated_bytes() + self.1.estimated_bytes() + self.2.estimated_bytes()
    }
}

impl<T: SizeEstimate + ?Sized> SizeEstimate for &T {
    fn estimated_bytes(&self) -> u64 {
        (**self).estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_have_fixed_sizes() {
        assert_eq!(3u8.estimated_bytes(), 1);
        assert_eq!(3u64.estimated_bytes(), 8);
        assert_eq!(3.0f32.estimated_bytes(), 4);
        assert_eq!(VertexId::new(9).estimated_bytes(), 4);
        assert_eq!(().estimated_bytes(), 0);
    }

    #[test]
    fn options_charge_a_tag_byte() {
        assert_eq!(None::<u32>.estimated_bytes(), 1);
        assert_eq!(Some(1u32).estimated_bytes(), 5);
    }

    #[test]
    fn collections_charge_envelope_plus_elements() {
        let v: Vec<(VertexId, f32)> = vec![(VertexId::new(1), 0.5); 3];
        assert_eq!(v.estimated_bytes(), COLLECTION_OVERHEAD + 3 * 8);
        let nested: Vec<Vec<u32>> = vec![vec![1, 2], vec![]];
        assert_eq!(
            nested.estimated_bytes(),
            COLLECTION_OVERHEAD + (COLLECTION_OVERHEAD + 8) + COLLECTION_OVERHEAD
        );
    }

    #[test]
    fn slices_and_refs_delegate() {
        let v = [1u32, 2, 3];
        assert_eq!(v[..].estimated_bytes(), COLLECTION_OVERHEAD + 12);
        let r = &5u64;
        assert_eq!(r.estimated_bytes(), 8);
    }
}
