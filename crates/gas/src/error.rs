//! Engine error type.

use std::error::Error as StdError;
use std::fmt;

use crate::NodeId;

/// Errors produced by the GAS engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A simulated node ran out of memory — the failure mode of the paper's
    /// BASELINE on the large datasets (§5.3).
    ResourceExhausted {
        /// The node that exceeded its capacity.
        node: NodeId,
        /// Bytes the node would have needed.
        required: u64,
        /// The node's configured capacity in bytes.
        capacity: u64,
        /// The GAS step during which the exhaustion occurred.
        step: String,
    },
    /// A node failure was injected (fault-tolerance testing).
    NodeFailure {
        /// The failed node.
        node: NodeId,
        /// The GAS step during which the failure fired.
        step: String,
    },
    /// The engine was configured inconsistently.
    InvalidConfig(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::ResourceExhausted {
                node,
                required,
                capacity,
                step,
            } => write!(
                f,
                "node {node} exhausted memory during step {step:?}: needs {required} bytes, capacity {capacity} bytes"
            ),
            EngineError::NodeFailure { node, step } => {
                write!(f, "node {node} failed during step {step:?}")
            }
            EngineError::InvalidConfig(msg) => write!(f, "invalid engine configuration: {msg}"),
        }
    }
}

impl StdError for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_node_and_step() {
        let e = EngineError::ResourceExhausted {
            node: NodeId::new(2),
            required: 100,
            capacity: 50,
            step: "gather-2".into(),
        };
        let s = e.to_string();
        assert!(s.contains("n2") && s.contains("gather-2") && s.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
