//! The GAS superstep executor.

use std::thread;

use snaple_graph::hash::hash2;
use snaple_graph::{store, Direction, GraphStore, VertexId, VertexMask};

use crate::cluster::{ClusterSpec, NodeId};
use crate::cost::CostModel;
use crate::deploy::Deployment;
use crate::error::EngineError;
use crate::partition::{PartitionStrategy, PartitionedGraph};
use crate::program::{GasStep, GatherCtx, NeighborStates, RunBudget, WorkTally};
use crate::scratch::WorkerScratch;
use crate::shard::ShardAssignment;
use crate::size::SizeEstimate;
use crate::stats::{NodeStats, RunStats, StepStats};

/// Framing overhead charged per partial-gather message (vertex id + length).
const MESSAGE_OVERHEAD: u64 = 8;

/// Serializer for a program's gather accumulator, used by
/// [`Engine::run_step_sharded`] to carry partials across the shard sync
/// boundary as bytes instead of in-memory values.
///
/// A correct codec must round-trip exactly: `decode(encode(g)) == g` bit
/// for bit, or the sharded step diverges from the in-process one.
pub trait GatherCodec<G> {
    /// Appends the serialized form of `value` to `out`.
    fn encode(&self, value: &G, out: &mut Vec<u8>);
    /// Decodes one value from the front of `input`, advancing it past the
    /// consumed bytes. Returns `None` on malformed input.
    fn decode(&self, input: &mut &[u8]) -> Option<G>;
}

/// [`GatherCodec`] for `u64` accumulators (little-endian).
#[derive(Copy, Clone, Debug, Default)]
pub struct U64Codec;

impl GatherCodec<u64> for U64Codec {
    fn encode(&self, value: &u64, out: &mut Vec<u8>) {
        out.extend_from_slice(&value.to_le_bytes());
    }

    fn decode(&self, input: &mut &[u8]) -> Option<u64> {
        let (head, rest) = input.split_first_chunk::<8>()?;
        *input = rest;
        Some(u64::from_le_bytes(*head))
    }
}

/// Placeholder codec for the unsharded path, where no partial is ever
/// serialized.
struct NoCodec;

impl<G> GatherCodec<G> for NoCodec {
    fn encode(&self, _: &G, _: &mut Vec<u8>) {
        // snaple-lint: allow(panic) — NoCodec is only installed on the unsharded path, which never encodes
        unreachable!("unsharded steps never serialize partials")
    }

    fn decode(&self, _: &mut &[u8]) -> Option<G> {
        // snaple-lint: allow(panic) — NoCodec is only installed on the unsharded path, which never decodes
        unreachable!("unsharded steps never deserialize partials")
    }
}

/// Traffic crossing the shard sync boundary of one
/// [`Engine::run_step_sharded`] call: one serialized partials message per
/// shard.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardSyncStats {
    /// Messages exchanged (one per shard).
    pub messages: usize,
    /// Total serialized bytes across those messages.
    pub bytes: u64,
}

/// The host's available hardware parallelism, with a conservative
/// fallback of 2 when the platform cannot report it — the one worker-count
/// policy shared by the engine's phase pools and the serving layers above.
pub fn host_parallelism() -> usize {
    thread::available_parallelism().map_or(2, |p| p.get())
}

/// The deployment an engine runs on: built for this engine alone, or
/// borrowed from a prepared, shared [`Deployment`].
#[derive(Debug)]
enum DeploymentRef<'d> {
    /// Boxed: a deployment is several hundred bytes and the shared
    /// variant is one pointer.
    Owned(Box<Deployment<'d>>),
    Shared(&'d Deployment<'d>),
}

impl<'d> DeploymentRef<'d> {
    fn get(&self) -> &Deployment<'d> {
        match self {
            DeploymentRef::Owned(d) => d,
            DeploymentRef::Shared(d) => d,
        }
    }
}

/// Executes GAS programs over a partitioned graph on a simulated cluster.
///
/// The immutable heavy state (partition, cost model) lives in a
/// [`Deployment`]; per-run accounting ([`RunStats`], the step counter,
/// injected failures) lives here. [`Engine::new`] builds a private
/// deployment — the historical one-shot path — while [`Engine::on`] borrows
/// a prepared one, so repeated runs over the same graph/cluster reuse the
/// O(edges) partition instead of re-hashing every edge.
///
/// See the [crate docs](crate) for the execution and accounting model and a
/// complete example.
#[derive(Debug)]
pub struct Engine<'d> {
    deployment: DeploymentRef<'d>,
    cost_override: Option<CostModel>,
    run: RunStats,
    seed: u64,
    step_counter: usize,
    injected_failure: Option<(NodeId, usize)>,
    gather_workers: Option<usize>,
    /// One scratch slot per gather worker, kept across supersteps so the
    /// hot path reuses its edge/run/stripe buffers instead of
    /// re-allocating them per partition.
    worker_scratch: Vec<WorkerScratch>,
}

impl<'d> Engine<'d> {
    /// Partitions `graph` over `cluster` and prepares an engine owning the
    /// resulting deployment.
    ///
    /// The partition build time is recorded in the run's
    /// [`RunStats::partition_build_seconds`]; engines created with
    /// [`Engine::on`] report zero there because their deployment was
    /// prepared ahead of time.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for unusable cluster shapes
    /// (zero nodes, more than [`crate::partition::MAX_NODES`] nodes).
    pub fn new(
        graph: &'d dyn GraphStore,
        cluster: ClusterSpec,
        strategy: PartitionStrategy,
        seed: u64,
    ) -> Result<Self, EngineError> {
        let deployment = Deployment::new(graph, cluster, strategy, seed)?;
        let partition_build_seconds = deployment.partition_build_seconds();
        Ok(Engine::assemble(
            DeploymentRef::Owned(Box::new(deployment)),
            partition_build_seconds,
        ))
    }

    /// Creates an engine running on a prepared, shared [`Deployment`] —
    /// the *execute* half of prepare-once/execute-many serving.
    ///
    /// The engine inherits the deployment's seed for per-step randomness
    /// (override with [`Engine::with_seed`]); its [`RunStats`] report a
    /// partition build time of zero since setup was paid at prepare time.
    pub fn on(deployment: &'d Deployment<'d>) -> Self {
        Engine::assemble(DeploymentRef::Shared(deployment), 0.0)
    }

    fn assemble(deployment: DeploymentRef<'d>, partition_build_seconds: f64) -> Self {
        let dep = deployment.get();
        let replication_factor = dep.replication_factor();
        let seed = dep.seed();
        let delta_apply_seconds = dep.delta_apply_seconds();
        let delta_touched_partitions = dep.delta_touched_partitions();
        Engine {
            deployment,
            cost_override: None,
            run: RunStats {
                steps: Vec::new(),
                replication_factor,
                partition_build_seconds,
                delta_apply_seconds,
                delta_touched_partitions,
            },
            seed,
            step_counter: 0,
            injected_failure: None,
            gather_workers: None,
            worker_scratch: Vec::new(),
        }
    }

    /// Overrides the seed driving per-step randomness (partition placement
    /// is fixed by the deployment and unaffected).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the number of OS threads the gather phase uses (default: the
    /// host's `available_parallelism`).
    ///
    /// Simulated partitions are *chunked* across the workers, so any cap
    /// produces bit-identical results and byte-identical cost accounting —
    /// the per-partition tallies are computed the same way no matter which
    /// host thread runs them. Exposed for tests and benchmarks that pin
    /// host parallelism; a 64-partition cluster no longer spawns 64
    /// threads on a 4-core host either way.
    pub fn with_gather_workers(mut self, workers: usize) -> Self {
        self.gather_workers = Some(workers.max(1));
        self
    }

    /// The deployment this engine runs on.
    pub fn deployment(&self) -> &Deployment<'d> {
        self.deployment.get()
    }

    /// The graph this engine executes over — the deployment's *current*
    /// graph, reflecting any deltas applied before this engine was made.
    pub fn graph(&self) -> &dyn GraphStore {
        self.deployment.get().graph()
    }

    /// The simulated cluster.
    pub fn cluster(&self) -> &ClusterSpec {
        self.deployment.get().cluster()
    }

    /// The vertex-cut partition.
    pub fn partitioned(&self) -> &PartitionedGraph {
        self.deployment.get().partitioned()
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &RunStats {
        &self.run
    }

    /// Consumes the engine, returning its accumulated statistics.
    pub fn into_stats(self) -> RunStats {
        self.run
    }

    /// Simulated seconds accumulated so far.
    pub fn simulated_seconds(&self) -> f64 {
        self.run.simulated_seconds()
    }

    /// Replaces the cost model for this engine's runs (e.g. for
    /// sensitivity analyses); the shared deployment's model is untouched.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost_override = Some(cost);
    }

    /// Arranges for `node` to fail when step number `at_step` (0-based,
    /// counted across `run_step` calls) starts, for fault-injection tests.
    pub fn inject_failure(&mut self, node: NodeId, at_step: usize) {
        self.injected_failure = Some((node, at_step));
    }

    /// Runs one GAS superstep of `step` over `state`.
    ///
    /// `state[i]` is the program state of vertex `i`; it is read during the
    /// gather phase and rewritten by `apply` at the end of the step.
    ///
    /// # Errors
    ///
    /// * [`EngineError::InvalidConfig`] if `state` does not match the graph.
    /// * [`EngineError::ResourceExhausted`] if any simulated node exceeds
    ///   its memory capacity while holding replicas and gather partials.
    /// * [`EngineError::NodeFailure`] if a failure was injected at this step.
    pub fn run_step<S: GasStep>(
        &mut self,
        step: &S,
        state: &mut [S::Vertex],
    ) -> Result<&StepStats, EngineError> {
        self.run_step_masked(step, state, None)
    }

    /// Runs one GAS superstep restricted to the *active* vertices of
    /// `mask` (`None` activates every vertex, like [`Engine::run_step`]).
    ///
    /// Only active vertices gather and apply: inactive vertices trigger no
    /// gather calls along their edges, receive no accumulator, and keep
    /// their state untouched. Accounting follows the restriction — only
    /// the state of vertices an active gather can read (the active set
    /// plus its gather-direction frontier) is charged for broadcast
    /// traffic and replica memory. A full mask is exactly equivalent to
    /// `None`, byte for byte.
    ///
    /// This is the engine half of targeted prediction: callers that only
    /// need results for a query subset run each step under a mask covering
    /// the vertices that can still influence those queries.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_step`], plus [`EngineError::InvalidConfig`] if the
    /// mask does not range over exactly the graph's vertices.
    pub fn run_step_masked<S: GasStep>(
        &mut self,
        step: &S,
        state: &mut [S::Vertex],
        mask: Option<&VertexMask>,
    ) -> Result<&StepStats, EngineError> {
        self.run_step_inner::<S, NoCodec>(step, state, mask, None)?;
        self.run
            .steps
            .last()
            .ok_or_else(|| EngineError::InvalidConfig("step record missing after run".to_string()))
    }

    /// Runs one masked GAS superstep split at the shard boundary: the
    /// gather phase produces per-shard partials which are **serialized**
    /// into one message per shard (via `codec`), decoded on the receiving
    /// side, and only then merged at the masters — the explicit
    /// mirror↔master exchange a multi-runtime deployment performs, exercised
    /// in-process.
    ///
    /// With a correct (bit-exact round-tripping) codec the results, state
    /// and statistics are byte-identical to [`Engine::run_step_masked`]:
    /// the sync boundary changes *where* the partials travel, not what
    /// they say. The returned [`ShardSyncStats`] report the serialized
    /// traffic.
    ///
    /// # Errors
    ///
    /// As [`Engine::run_step_masked`], plus
    /// [`EngineError::InvalidConfig`] if `assignment` does not cover
    /// exactly the deployment's partitions or a sync message fails to
    /// decode.
    pub fn run_step_sharded<S: GasStep, C: GatherCodec<S::Gather>>(
        &mut self,
        step: &S,
        state: &mut [S::Vertex],
        mask: Option<&VertexMask>,
        assignment: &ShardAssignment,
        codec: &C,
    ) -> Result<(&StepStats, ShardSyncStats), EngineError> {
        let sync = self.run_step_inner(step, state, mask, Some((assignment, codec)))?;
        let stats = self.run.steps.last().ok_or_else(|| {
            EngineError::InvalidConfig("step record missing after run".to_string())
        })?;
        Ok((stats, sync))
    }

    fn run_step_inner<S: GasStep, C: GatherCodec<S::Gather>>(
        &mut self,
        step: &S,
        state: &mut [S::Vertex],
        mask: Option<&VertexMask>,
        sharding: Option<(&ShardAssignment, &C)>,
    ) -> Result<ShardSyncStats, EngineError> {
        let dep = self.deployment.get();
        let graph = dep.graph();
        let part = dep.partitioned();
        if state.len() != graph.num_vertices() {
            return Err(EngineError::InvalidConfig(format!(
                "state has {} entries but the graph has {} vertices",
                state.len(),
                graph.num_vertices()
            )));
        }
        if let Some(m) = mask {
            if m.num_vertices() != graph.num_vertices() {
                return Err(EngineError::InvalidConfig(format!(
                    "mask ranges over {} vertices but the graph has {}",
                    m.num_vertices(),
                    graph.num_vertices()
                )));
            }
        }
        let step_idx = self.step_counter;
        self.step_counter += 1;
        if let Some((node, at)) = self.injected_failure {
            if at == step_idx {
                return Err(EngineError::NodeFailure {
                    node,
                    step: step.name().to_owned(),
                });
            }
        }

        let nodes = part.num_nodes();
        if let Some((assignment, _)) = sharding {
            if assignment.num_partitions() != nodes {
                return Err(EngineError::InvalidConfig(format!(
                    "shard assignment covers {} partitions but the deployment has {nodes}",
                    assignment.num_partitions()
                )));
            }
        }
        let cap = dep.cluster().memory_per_node;
        let step_seed = hash2(self.seed, step_idx as u64, 0x57e9);
        let dir = step.gather_direction();
        // Read set of a masked step: active vertices plus the neighbors
        // their gathers read. Only this state needs replicas this step.
        let read_mask: Option<VertexMask> = mask.map(|m| m.expand(graph, dir));

        // --- Broadcast phase: replicate vertex state to mirrors. ---------
        let state_bytes: Vec<u64> = state.iter().map(SizeEstimate::estimated_bytes).collect();
        let mut mem_base = vec![0u64; nodes];
        let mut net = vec![0u64; nodes];
        let mut broadcast_total = 0u64;
        // Static CSR share of each node (8 bytes per stored edge), read
        // from the deployment's per-partition cache — maintained
        // incrementally across delta applies instead of recounted here.
        mem_base.copy_from_slice(dep.node_static_bytes());
        for v in store::vertices(graph) {
            if let Some(rm) = &read_mask {
                if !rm.contains(v) {
                    continue;
                }
            }
            // snaple-lint: allow(index) — state_bytes has one entry per graph vertex (validated above)
            let sb = state_bytes[v.index()];
            let master = part.master(v).index();
            let mut mask = part.presence_mask(v);
            while mask != 0 {
                let n = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                // snaple-lint: allow(index) — n is a presence-mask bit and master a partition id, both < nodes
                mem_base[n] += sb;
                if n != master {
                    // snaple-lint: allow(index) — same bound as mem_base above
                    net[n] += sb;
                    // snaple-lint: allow(index) — same bound as mem_base above
                    net[master] += sb;
                    broadcast_total += sb;
                }
            }
        }
        for (n, &m) in mem_base.iter().enumerate() {
            if m > cap {
                return Err(EngineError::ResourceExhausted {
                    node: NodeId::new(n as u16),
                    required: m,
                    capacity: cap,
                    step: step.name().to_owned(),
                });
            }
        }

        // --- Gather phase: per-node local gathers (parallel). ------------
        struct NodeGather<G> {
            node: usize,
            partials: Vec<(VertexId, G, u64)>,
            gather_calls: u64,
            sum_calls: u64,
            ops: u64,
            mem_peak: u64,
        }

        let state_ro: &[S::Vertex] = state;
        let mem_base_ref = &mem_base;

        // The whole gather work of one simulated partition, runnable on
        // any host thread: the per-partition tallies depend only on the
        // partition's edge list, so the chunking below cannot change the
        // accounting. Edges are walked as *runs* — maximal stretches of
        // active same-gatherer edges (inactive edges never break a run,
        // exactly as the historical per-edge loop's flush behaved) — and
        // each run is handed to the program's `gather_run` in one call.
        let gather_node =
            |n: usize, ws: &mut WorkerScratch| -> Result<NodeGather<S::Gather>, EngineError> {
                let ctx = GatherCtx::new(graph, step_seed);
                let node = NodeId::new(n as u16);
                let stored = part.node_edges(node);
                let edges: &[(VertexId, VertexId)] = if dir == Direction::In {
                    ws.edges.clear();
                    ws.edges.extend_from_slice(stored);
                    ws.edges.sort_unstable_by_key(|&(s, d)| (d, s));
                    &ws.edges
                } else {
                    stored
                };
                let orient = |e: (VertexId, VertexId)| match dir {
                    Direction::Out => (e.0, e.1),
                    Direction::In => (e.1, e.0),
                };
                let states = NeighborStates::new(state_ro);
                let mut tally = WorkTally::new();
                let mut partials: Vec<(VertexId, S::Gather, u64)> = Vec::new();
                let mut gather_calls = 0u64;
                let mut sum_calls = 0u64;
                // snaple-lint: allow(index) — n comes from 0..nodes and mem_base has len nodes
                let mut mem = mem_base_ref[n];
                let mut mem_peak = mem;
                let mut i = 0usize;
                while i < edges.len() {
                    // snaple-lint: allow(index) — loop guard keeps i < edges.len()
                    let (gatherer, neighbor) = orient(edges[i]);
                    if let Some(m) = mask {
                        if !m.contains(gatherer) {
                            i += 1;
                            continue;
                        }
                    }
                    ws.neighbors.clear();
                    ws.neighbors.push(neighbor);
                    let mut j = i + 1;
                    while j < edges.len() {
                        // snaple-lint: allow(index) — loop guard keeps j < edges.len()
                        let (g, nb) = orient(edges[j]);
                        if let Some(m) = mask {
                            if !m.contains(g) {
                                j += 1;
                                continue;
                            }
                        }
                        if g != gatherer {
                            break;
                        }
                        ws.neighbors.push(nb);
                        j += 1;
                    }
                    let mut budget = RunBudget::new(
                        &mut gather_calls,
                        &mut sum_calls,
                        &mut mem,
                        &mut mem_peak,
                        cap,
                    );
                    let run = step
                        .gather_run(
                            &ctx,
                            gatherer,
                            // snaple-lint: allow(index) — gatherer is a partition-edge endpoint < num_vertices = state len
                            &state_ro[gatherer.index()],
                            &ws.neighbors,
                            &states,
                            &mut budget,
                            &mut ws.arena,
                            &mut tally,
                        )
                        .map_err(|overflow| EngineError::ResourceExhausted {
                            node,
                            required: overflow.required,
                            capacity: cap,
                            step: step.name().to_owned(),
                        })?;
                    if let Some((g, bytes)) = run {
                        partials.push((gatherer, g, bytes));
                    }
                    i = j;
                }
                Ok(NodeGather {
                    node: n,
                    partials,
                    gather_calls,
                    sum_calls,
                    ops: tally.ops(),
                    mem_peak,
                })
            };

        // Gather only over partitions that actually hold edges: on small
        // or skewed graphs many simulated nodes are empty, and gathering
        // an empty edge list is pure overhead. Empty nodes contribute an
        // empty tally directly.
        let nonempty: Vec<usize> = (0..nodes)
            .filter(|&n| !part.node_edges(NodeId::new(n as u16)).is_empty())
            .collect();
        // Cap host threads at the hardware parallelism and chunk the
        // partitions across them: a 64-partition cluster on a 4-core host
        // gets 4 workers with 16 partitions each, not 64 oversubscribed
        // threads. Each worker stops at its chunk's first error, so the
        // surfaced error is the lowest-numbered failing partition's —
        // exactly what the thread-per-partition layout reported.
        let gather_worker_cap = self.gather_workers.unwrap_or_else(host_parallelism);
        let gather_workers = gather_worker_cap.min(nonempty.len()).max(1);
        let chunk_len = nonempty.len().div_ceil(gather_workers).max(1);
        // Each worker borrows one persistent scratch slot; slots outlive
        // the step, so buffers grown on superstep k are reused on k+1.
        let scratch_pool = &mut self.worker_scratch;
        if scratch_pool.len() < gather_workers {
            scratch_pool.resize_with(gather_workers, WorkerScratch::default);
        }
        let gather_results: Vec<Result<Vec<NodeGather<S::Gather>>, EngineError>> =
            thread::scope(|scope| {
                let gather_node = &gather_node;
                let handles: Vec<_> = nonempty
                    .chunks(chunk_len)
                    .zip(scratch_pool.iter_mut())
                    .map(|(chunk, ws)| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|&n| gather_node(n, ws))
                                .collect::<Result<Vec<_>, _>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                    .collect()
            });

        let mut node_ops = vec![0u64; nodes];
        let mut mem_peaks = mem_base.clone();
        let mut gather_calls = 0u64;
        let mut sum_calls = 0u64;
        let mut partial_total = 0u64;

        // --- Merge partials at masters (deterministic node order). -------
        let mut acc: Vec<Option<(S::Gather, u64)>> =
            (0..graph.num_vertices()).map(|_| None).collect();
        let mut master_extra = vec![0u64; nodes];
        let mut merge_tallies: Vec<WorkTally> = vec![WorkTally::new(); nodes];
        let mut ordered: Vec<NodeGather<S::Gather>> = (0..nodes)
            .filter(|&n| part.node_edges(NodeId::new(n as u16)).is_empty())
            .map(|n| NodeGather {
                node: n,
                partials: Vec::new(),
                gather_calls: 0,
                sum_calls: 0,
                ops: 0,
                // snaple-lint: allow(index) — n comes from 0..nodes and mem_base has len nodes
                mem_peak: mem_base[n],
            })
            .collect();
        for r in gather_results {
            ordered.extend(r?);
        }
        ordered.sort_by_key(|g| g.node);

        // --- Shard sync boundary (sharded steps only). --------------------
        // Each shard's gather output — the per-partition partials of its
        // contiguous partition block — is flattened into one serialized
        // message and decoded on the "receiving" side before the master
        // merge. Because shards own contiguous, ascending partition
        // ranges, encoding shard by shard preserves the global node order
        // the merge below depends on, so a round-tripping codec keeps the
        // step bit-identical to the in-memory path.
        let mut sync = ShardSyncStats::default();
        if let Some((assignment, codec)) = sharding {
            let mut decoded: Vec<NodeGather<S::Gather>> = Vec::with_capacity(ordered.len());
            let mut pending = ordered.into_iter().peekable();
            for shard in 0..assignment.num_shards() {
                let range = assignment.partitions_of(shard);
                let mut msg: Vec<u8> = Vec::new();
                while let Some(ng) = pending.next_if(|g| range.contains(&g.node)) {
                    msg.extend_from_slice(&(ng.node as u32).to_le_bytes());
                    msg.extend_from_slice(&ng.gather_calls.to_le_bytes());
                    msg.extend_from_slice(&ng.sum_calls.to_le_bytes());
                    msg.extend_from_slice(&ng.ops.to_le_bytes());
                    msg.extend_from_slice(&ng.mem_peak.to_le_bytes());
                    msg.extend_from_slice(&(ng.partials.len() as u64).to_le_bytes());
                    for (v, g, bytes) in &ng.partials {
                        msg.extend_from_slice(&v.as_u32().to_le_bytes());
                        msg.extend_from_slice(&bytes.to_le_bytes());
                        codec.encode(g, &mut msg);
                    }
                }
                sync.messages += 1;
                sync.bytes += msg.len() as u64;

                let malformed = || {
                    EngineError::InvalidConfig(format!("shard {shard} sync message is malformed"))
                };
                let mut input = msg.as_slice();
                let read_u32 = |input: &mut &[u8]| -> Result<u32, EngineError> {
                    let (head, rest) = input.split_first_chunk::<4>().ok_or_else(malformed)?;
                    *input = rest;
                    Ok(u32::from_le_bytes(*head))
                };
                let read_u64 = |input: &mut &[u8]| -> Result<u64, EngineError> {
                    let (head, rest) = input.split_first_chunk::<8>().ok_or_else(malformed)?;
                    *input = rest;
                    Ok(u64::from_le_bytes(*head))
                };
                while !input.is_empty() {
                    let node = read_u32(&mut input)? as usize;
                    if node >= nodes {
                        return Err(EngineError::InvalidConfig(format!(
                            "shard {shard} sync message names partition {node}, but the cluster has {nodes}"
                        )));
                    }
                    let gather_calls = read_u64(&mut input)?;
                    let sum_calls = read_u64(&mut input)?;
                    let ops = read_u64(&mut input)?;
                    let mem_peak = read_u64(&mut input)?;
                    let count = read_u64(&mut input)?;
                    let mut partials = Vec::with_capacity(count.min(1 << 20) as usize);
                    for _ in 0..count {
                        let v = VertexId::new(read_u32(&mut input)?);
                        if v.index() >= graph.num_vertices() {
                            return Err(EngineError::InvalidConfig(format!(
                                "shard {shard} sync message names vertex {}, but the graph has {} vertices",
                                v.index(),
                                graph.num_vertices()
                            )));
                        }
                        let bytes = read_u64(&mut input)?;
                        let g = codec.decode(&mut input).ok_or_else(malformed)?;
                        partials.push((v, g, bytes));
                    }
                    decoded.push(NodeGather {
                        node,
                        partials,
                        gather_calls,
                        sum_calls,
                        ops,
                        mem_peak,
                    });
                }
            }
            ordered = decoded;
        }

        // In-memory gathers produce `node` from 0..nodes and `v` from the
        // partition's edge lists; on the sharded path both are re-decoded
        // from the sync message and bounds-checked at decode time above —
        // so every index below is validated on every path.
        for ng in ordered {
            // snaple-lint: allow(index) — ng.node < nodes: by construction in-memory, checked at decode when sharded
            node_ops[ng.node] += ng.ops;
            // snaple-lint: allow(index) — same bound as node_ops above
            mem_peaks[ng.node] = mem_peaks[ng.node].max(ng.mem_peak);
            gather_calls += ng.gather_calls;
            sum_calls += ng.sum_calls;
            for (v, g, bytes) in ng.partials {
                let master = part.master(v).index();
                if master != ng.node {
                    let framed = bytes + MESSAGE_OVERHEAD;
                    // snaple-lint: allow(index) — ng.node and master are partition ids < nodes
                    net[ng.node] += framed;
                    // snaple-lint: allow(index) — same bound as above
                    net[master] += framed;
                    partial_total += framed;
                    // snaple-lint: allow(index) — same bound as above
                    master_extra[master] += bytes;
                }
                // snaple-lint: allow(index) — v < num_vertices: edge endpoint in-memory, checked at decode when sharded
                let slot = &mut acc[v.index()];
                *slot = Some(match slot.take() {
                    None => (g, bytes),
                    Some((prev, pb)) => {
                        sum_calls += 1;
                        // snaple-lint: allow(index) — master is a partition id < nodes
                        let t = &mut merge_tallies[master];
                        t.add(1);
                        (step.sum(prev, g, t), pb + bytes)
                    }
                });
            }
        }
        for n in 0..nodes {
            // snaple-lint: allow(index) — every per-node vec here has len nodes and n < nodes
            node_ops[n] += merge_tallies[n].ops();
            // snaple-lint: allow(index) — same bound as above
            let with_partials = mem_base[n] + master_extra[n];
            // snaple-lint: allow(index) — same bound as above
            mem_peaks[n] = mem_peaks[n].max(with_partials);
            if with_partials > cap {
                return Err(EngineError::ResourceExhausted {
                    node: NodeId::new(n as u16),
                    required: with_partials,
                    capacity: cap,
                    step: step.name().to_owned(),
                });
            }
        }

        // --- Apply phase at masters (parallel over vertex shards). --------
        let workers = host_parallelism().min(graph.num_vertices().max(1));
        let chunk = graph.num_vertices().div_ceil(workers).max(1);
        let apply_calls = mask.map_or(graph.num_vertices(), VertexMask::len) as u64;
        let apply_node_ops: Vec<Vec<u64>> = thread::scope(|scope| {
            let handles: Vec<_> = state
                .chunks_mut(chunk)
                .zip(acc.chunks_mut(chunk))
                .enumerate()
                .map(|(ci, (state_chunk, acc_chunk))| {
                    scope.spawn(move || {
                        let ctx = GatherCtx::new(graph, step_seed);
                        let mut ops = vec![0u64; nodes];
                        let base = ci * chunk;
                        let mut tally = WorkTally::new();
                        for (i, (data, a)) in
                            state_chunk.iter_mut().zip(acc_chunk.iter_mut()).enumerate()
                        {
                            let u = VertexId::new((base + i) as u32);
                            if let Some(m) = mask {
                                if !m.contains(u) {
                                    continue;
                                }
                            }
                            let before = tally.ops();
                            tally.add(1);
                            step.apply(&ctx, u, data, a.take().map(|(g, _)| g), &mut tally);
                            // snaple-lint: allow(index) — master partition ids are < nodes and ops has len nodes
                            ops[part.master(u).index()] += tally.ops() - before;
                        }
                        ops
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        });
        for per_worker in apply_node_ops {
            for (total, o) in node_ops.iter_mut().zip(per_worker) {
                *total += o;
            }
        }

        // --- Assemble step statistics. ------------------------------------
        let per_node: Vec<NodeStats> = node_ops
            .iter()
            .zip(&net)
            .zip(&mem_peaks)
            .map(|((&compute_ops, &net_bytes), &memory_peak)| NodeStats {
                compute_ops,
                net_bytes,
                memory_peak,
            })
            .collect();
        let mut stats = StepStats {
            name: step.name().to_owned(),
            gather_calls,
            sum_calls,
            apply_calls,
            work_ops: node_ops.iter().sum(),
            broadcast_bytes: broadcast_total,
            partial_bytes: partial_total,
            per_node,
            simulated_seconds: 0.0,
        };
        let cost = self.cost_override.as_ref().unwrap_or_else(|| dep.cost());
        stats.simulated_seconds =
            cost.step_seconds(stats.max_node_ops(), stats.max_node_net_bytes());
        self.run.steps.push(stats);
        Ok(sync)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snaple_graph::{gen, CsrGraph};

    /// Sums neighbor values along out-edges: new state = Σ_{v ∈ Γ(u)} old(v).
    struct SumNeighbors;
    impl GasStep for SumNeighbors {
        type Vertex = u64;
        type Gather = u64;
        fn name(&self) -> &str {
            "sum-neighbors"
        }
        fn gather(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            _ud: &u64,
            _v: VertexId,
            vd: &u64,
            _w: &mut WorkTally,
        ) -> Option<u64> {
            Some(*vd)
        }
        fn sum(&self, a: u64, b: u64, _w: &mut WorkTally) -> u64 {
            a + b
        }
        fn apply(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            data: &mut u64,
            acc: Option<u64>,
            _w: &mut WorkTally,
        ) {
            *data = acc.unwrap_or(0);
        }
    }

    fn ring(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        CsrGraph::from_edges(n as usize, &edges)
    }

    #[test]
    fn sum_neighbors_on_a_ring() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            3,
        )
        .unwrap();
        let mut state: Vec<u64> = (0..10).collect();
        engine.run_step(&SumNeighbors, &mut state).unwrap();
        // Each vertex takes its successor's old value.
        let expect: Vec<u64> = (0..10).map(|i| (i + 1) % 10).collect();
        assert_eq!(state, expect);
    }

    #[test]
    fn results_are_identical_across_cluster_sizes() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = gen::erdos_renyi(300, 1_500, &mut rng).into_symmetric_graph();
        let mut reference: Vec<u64> = (0..300).map(|i| i * 17 % 101).collect();
        let mut one = Engine::new(
            &g,
            ClusterSpec::type_i(1),
            PartitionStrategy::RandomVertexCut,
            3,
        )
        .unwrap();
        one.run_step(&SumNeighbors, &mut reference).unwrap();
        for nodes in [2, 8, 32] {
            let mut state: Vec<u64> = (0..300).map(|i| i * 17 % 101).collect();
            let mut engine = Engine::new(
                &g,
                ClusterSpec::type_i(nodes),
                PartitionStrategy::GreedyVertexCut,
                99,
            )
            .unwrap();
            engine.run_step(&SumNeighbors, &mut state).unwrap();
            assert_eq!(state, reference, "cluster of {nodes} nodes diverged");
        }
    }

    #[test]
    fn single_node_has_no_network_traffic() {
        let g = ring(20);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(1),
            PartitionStrategy::RandomVertexCut,
            5,
        )
        .unwrap();
        let mut state = vec![1u64; 20];
        let stats = engine.run_step(&SumNeighbors, &mut state).unwrap();
        assert_eq!(stats.network_bytes(), 0);
        assert_eq!(stats.gather_calls, 20);
        assert_eq!(stats.apply_calls, 20);
    }

    #[test]
    fn multi_node_runs_account_network_traffic() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gen::erdos_renyi(200, 2_000, &mut rng).into_symmetric_graph();
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::RandomVertexCut,
            5,
        )
        .unwrap();
        let mut state = vec![1u64; 200];
        let stats = engine.run_step(&SumNeighbors, &mut state).unwrap();
        assert!(stats.broadcast_bytes > 0, "mirrors must receive state");
        assert!(stats.partial_bytes > 0, "masters must receive partials");
        assert!(stats.simulated_seconds > 0.0);
        assert!(engine.stats().replication_factor > 1.0);
    }

    #[test]
    fn memory_cap_triggers_resource_exhaustion() {
        let g = ring(100);
        let cluster = ClusterSpec {
            memory_per_node: 64, // bytes! nothing fits
            ..ClusterSpec::type_i(2)
        };
        let mut engine = Engine::new(&g, cluster, PartitionStrategy::RandomVertexCut, 1).unwrap();
        let mut state = vec![1u64; 100];
        let err = engine.run_step(&SumNeighbors, &mut state).unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { .. }),
            "{err}"
        );
    }

    #[test]
    fn injected_failures_fire_at_the_right_step() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        engine.inject_failure(NodeId::new(1), 1);
        let mut state = vec![0u64; 10];
        engine.run_step(&SumNeighbors, &mut state).unwrap();
        let err = engine.run_step(&SumNeighbors, &mut state).unwrap_err();
        assert_eq!(
            err,
            EngineError::NodeFailure {
                node: NodeId::new(1),
                step: "sum-neighbors".into()
            }
        );
    }

    #[test]
    fn state_length_mismatch_is_rejected() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let mut state = vec![0u64; 9];
        assert!(matches!(
            engine.run_step(&SumNeighbors, &mut state),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn full_mask_is_bit_identical_to_unmasked() {
        let mut rng = StdRng::seed_from_u64(21);
        let g = gen::erdos_renyi(250, 2_000, &mut rng).into_symmetric_graph();
        let init: Vec<u64> = (0..250).map(|i| i * 31 % 97).collect();
        let mut unmasked = init.clone();
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        engine.run_step(&SumNeighbors, &mut unmasked).unwrap();
        let reference = engine.into_stats();

        let mut masked = init;
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        let full = VertexMask::full(g.num_vertices());
        engine
            .run_step_masked(&SumNeighbors, &mut masked, Some(&full))
            .unwrap();
        let stats = engine.into_stats();
        assert_eq!(masked, unmasked);
        assert_eq!(stats.steps[0].gather_calls, reference.steps[0].gather_calls);
        assert_eq!(stats.steps[0].apply_calls, reference.steps[0].apply_calls);
        assert_eq!(stats.steps[0].work_ops, reference.steps[0].work_ops);
        assert_eq!(
            stats.steps[0].broadcast_bytes,
            reference.steps[0].broadcast_bytes
        );
        assert_eq!(
            stats.steps[0].partial_bytes,
            reference.steps[0].partial_bytes
        );
        assert_eq!(stats.total_network_bytes(), reference.total_network_bytes());
        assert_eq!(stats.peak_memory(), reference.peak_memory());
    }

    #[test]
    fn masked_steps_only_touch_active_vertices() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let mut state: Vec<u64> = (0..10).collect();
        let mask = VertexMask::from_vertices(10, [VertexId::new(2), VertexId::new(7)]);
        let stats = engine
            .run_step_masked(&SumNeighbors, &mut state, Some(&mask))
            .unwrap();
        assert_eq!(stats.gather_calls, 2, "one out-edge per active vertex");
        assert_eq!(stats.apply_calls, 2);
        // Active vertices take their successor's value; others are frozen.
        let expect: Vec<u64> = (0..10u64)
            .map(|i| if i == 2 || i == 7 { i + 1 } else { i })
            .collect();
        assert_eq!(state, expect);
    }

    #[test]
    fn masked_work_drops_below_unmasked() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gen::erdos_renyi(400, 4_000, &mut rng).into_symmetric_graph();
        let mut full_state = vec![1u64; 400];
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            2,
        )
        .unwrap();
        engine.run_step(&SumNeighbors, &mut full_state).unwrap();
        let full = engine.into_stats();

        let mask = VertexMask::from_vertices(400, (0..4).map(VertexId::new));
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            2,
        )
        .unwrap();
        let mut state = vec![1u64; 400];
        engine
            .run_step_masked(&SumNeighbors, &mut state, Some(&mask))
            .unwrap();
        let masked = engine.into_stats();
        assert!(masked.total_work_ops() < full.total_work_ops());
        assert!(masked.total_network_bytes() < full.total_network_bytes());
    }

    #[test]
    fn mismatched_mask_is_rejected() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let mut state = vec![0u64; 10];
        let mask = VertexMask::full(9);
        assert!(matches!(
            engine.run_step_masked(&SumNeighbors, &mut state, Some(&mask)),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    #[test]
    fn shared_deployment_runs_match_owned_engines() {
        let mut rng = StdRng::seed_from_u64(13);
        let g = gen::erdos_renyi(300, 2_500, &mut rng).into_symmetric_graph();
        let init: Vec<u64> = (0..300).map(|i| i * 13 % 89).collect();

        let mut owned_state = init.clone();
        let mut owned = Engine::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        owned.run_step(&SumNeighbors, &mut owned_state).unwrap();
        let owned_stats = owned.into_stats();
        assert!(
            owned_stats.partition_build_seconds > 0.0,
            "one-shot engines pay the partition build"
        );

        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        for _ in 0..3 {
            let mut state = init.clone();
            let mut engine = Engine::on(&deployment);
            engine.run_step(&SumNeighbors, &mut state).unwrap();
            let stats = engine.into_stats();
            assert_eq!(state, owned_state);
            assert_eq!(stats.steps[0].work_ops, owned_stats.steps[0].work_ops);
            assert_eq!(
                stats.total_network_bytes(),
                owned_stats.total_network_bytes()
            );
            assert_eq!(stats.peak_memory(), owned_stats.peak_memory());
            assert_eq!(
                stats.partition_build_seconds, 0.0,
                "prepared deployments amortize the partition build"
            );
        }
    }

    #[test]
    fn delta_applied_deployments_match_cold_rebuilds_bit_for_bit() {
        use snaple_graph::GraphDelta;
        let mut rng = StdRng::seed_from_u64(31);
        let g = gen::erdos_renyi(200, 1_600, &mut rng).into_symmetric_graph();
        let mut deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        let mut delta = GraphDelta::new();
        let mut removed = 0;
        for (u, v) in g.edges().take(30) {
            delta.remove(u.as_u32(), v.as_u32());
            removed += 1;
        }
        // Insert non-edges only: a pair absent from the base graph cannot
        // collide with the (existing) removed edges under last-wins dedup.
        let mut inserted = 0;
        'insert: for u in 0..200u32 {
            for v in (u + 1)..200 {
                if !g.has_edge(VertexId::new(u), VertexId::new(v)) {
                    delta.insert(u, v);
                    inserted += 1;
                    if inserted == 3 {
                        break 'insert;
                    }
                }
            }
        }
        delta.insert(205, 3); // grows the vertex range
        let stats = deployment.apply_delta(&delta).unwrap();
        assert_eq!(stats.removed_edges, removed);
        assert_eq!(stats.inserted_edges, 4);

        let mutated = deployment.graph().to_csr();
        let mut incremental_state = vec![1u64; mutated.num_vertices()];
        let mut engine = Engine::on(&deployment);
        engine
            .run_step(&SumNeighbors, &mut incremental_state)
            .unwrap();
        let run = engine.into_stats();
        assert_eq!(run.delta_apply_seconds, deployment.delta_apply_seconds());
        assert_eq!(
            run.delta_touched_partitions,
            deployment.delta_touched_partitions()
        );
        assert!(run.delta_apply_seconds > 0.0);

        let mut cold_state = vec![1u64; mutated.num_vertices()];
        let mut cold = Engine::new(
            &mutated,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        cold.run_step(&SumNeighbors, &mut cold_state).unwrap();
        assert_eq!(incremental_state, cold_state);
        assert_eq!(cold.stats().delta_apply_seconds, 0.0);
    }

    #[test]
    fn engine_seed_override_changes_step_seeds_only() {
        let g = ring(12);
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            5,
        )
        .unwrap();
        // SumNeighbors is deterministic, so results must agree under any
        // seed; the partition placement is untouched by construction.
        let mut a = vec![1u64; 12];
        Engine::on(&deployment)
            .run_step(&SumNeighbors, &mut a)
            .unwrap();
        let mut b = vec![1u64; 12];
        Engine::on(&deployment)
            .with_seed(999)
            .run_step(&SumNeighbors, &mut b)
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_partitions_still_account_their_static_memory() {
        // 2 edges over 32 nodes: most partitions are empty, so the gather
        // phase spawns at most 2 workers — and the empty nodes must still
        // report their (zero-edge) base memory without skewing stats.
        let g = CsrGraph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(32),
            PartitionStrategy::RandomVertexCut,
            2,
        )
        .unwrap();
        let mut state = vec![1u64; 4];
        let stats = engine.run_step(&SumNeighbors, &mut state).unwrap();
        assert_eq!(stats.gather_calls, 2);
        assert_eq!(stats.per_node.len(), 32);
        // 0 and 2 take their successor's value; 1 and 3 have no out-edges.
        assert_eq!(state, vec![1, 0, 1, 0]);
    }

    #[test]
    fn gather_worker_cap_keeps_results_and_cost_accounting_byte_identical() {
        // Regression for the oversubscription fix: a 64-partition cluster
        // used to spawn one thread per non-empty partition. Partitions are
        // now chunked over a capped worker pool — and because each
        // partition's tallies are computed identically no matter which
        // host thread runs them, every cap must produce bit-identical
        // state and byte-identical simulated-cost accounting.
        let mut rng = StdRng::seed_from_u64(17);
        let g = gen::erdos_renyi(400, 6_000, &mut rng).into_symmetric_graph();
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(64),
            PartitionStrategy::RandomVertexCut,
            5,
        )
        .unwrap();
        let init: Vec<u64> = (0..400).map(|i| i * 7 % 53).collect();

        let mut reference_state = init.clone();
        let mut reference = Engine::on(&deployment);
        reference
            .run_step(&SumNeighbors, &mut reference_state)
            .unwrap();
        let reference_stats = reference.into_stats();

        for workers in [1, 3, 8, 200] {
            let mut state = init.clone();
            let mut engine = Engine::on(&deployment).with_gather_workers(workers);
            engine.run_step(&SumNeighbors, &mut state).unwrap();
            let stats = engine.into_stats();
            assert_eq!(state, reference_state, "{workers} workers diverged");
            let (s, r) = (&stats.steps[0], &reference_stats.steps[0]);
            assert_eq!(s.gather_calls, r.gather_calls, "{workers} workers");
            assert_eq!(s.sum_calls, r.sum_calls, "{workers} workers");
            assert_eq!(s.apply_calls, r.apply_calls, "{workers} workers");
            assert_eq!(s.work_ops, r.work_ops, "{workers} workers");
            assert_eq!(s.broadcast_bytes, r.broadcast_bytes, "{workers} workers");
            assert_eq!(s.partial_bytes, r.partial_bytes, "{workers} workers");
            assert_eq!(s.per_node.len(), r.per_node.len());
            for (n, (sn, rn)) in s.per_node.iter().zip(&r.per_node).enumerate() {
                assert_eq!(sn.compute_ops, rn.compute_ops, "node {n}");
                assert_eq!(sn.net_bytes, rn.net_bytes, "node {n}");
                assert_eq!(sn.memory_peak, rn.memory_peak, "node {n}");
            }
            assert_eq!(s.simulated_seconds, r.simulated_seconds);
        }
    }

    #[test]
    fn gather_worker_cap_surfaces_the_lowest_failing_partition() {
        // Memory exhaustion must name the same node regardless of the cap.
        let g = ring(200);
        let cluster = ClusterSpec {
            memory_per_node: 64,
            ..ClusterSpec::type_i(16)
        };
        let deployment =
            Deployment::new(&g, cluster, PartitionStrategy::RandomVertexCut, 1).unwrap();
        let mut errors = Vec::new();
        for workers in [1, 4, 64] {
            let mut state = vec![1u64; 200];
            let err = Engine::on(&deployment)
                .with_gather_workers(workers)
                .run_step(&SumNeighbors, &mut state)
                .unwrap_err();
            errors.push(err);
        }
        assert!(errors.windows(2).all(|w| w[0] == w[1]), "{errors:?}");
    }

    #[test]
    fn sharded_steps_are_bit_identical_to_in_memory_steps() {
        use crate::shard::ShardAssignment;
        let mut rng = StdRng::seed_from_u64(23);
        let g = gen::erdos_renyi(300, 3_000, &mut rng).into_symmetric_graph();
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::RandomVertexCut,
            5,
        )
        .unwrap();
        let init: Vec<u64> = (0..300).map(|i| i * 11 % 71).collect();

        let mut reference_state = init.clone();
        let mut reference = Engine::on(&deployment);
        reference
            .run_step(&SumNeighbors, &mut reference_state)
            .unwrap();
        let reference_stats = reference.into_stats();

        for shards in [1, 2, 3, 8] {
            let assignment = ShardAssignment::new(8, shards).unwrap();
            let mut state = init.clone();
            let mut engine = Engine::on(&deployment);
            let (_, sync) = engine
                .run_step_sharded(&SumNeighbors, &mut state, None, &assignment, &U64Codec)
                .unwrap();
            assert_eq!(sync.messages, shards, "one sync message per shard");
            assert!(sync.bytes > 0, "partials must travel as bytes");
            let stats = engine.into_stats();
            assert_eq!(state, reference_state, "{shards} shards diverged");
            let (s, r) = (&stats.steps[0], &reference_stats.steps[0]);
            assert_eq!(s.gather_calls, r.gather_calls, "{shards} shards");
            assert_eq!(s.sum_calls, r.sum_calls, "{shards} shards");
            assert_eq!(s.work_ops, r.work_ops, "{shards} shards");
            assert_eq!(s.broadcast_bytes, r.broadcast_bytes, "{shards} shards");
            assert_eq!(s.partial_bytes, r.partial_bytes, "{shards} shards");
            for (n, (sn, rn)) in s.per_node.iter().zip(&r.per_node).enumerate() {
                assert_eq!(sn.compute_ops, rn.compute_ops, "node {n}");
                assert_eq!(sn.net_bytes, rn.net_bytes, "node {n}");
                assert_eq!(sn.memory_peak, rn.memory_peak, "node {n}");
            }
            assert_eq!(s.simulated_seconds, r.simulated_seconds);
        }
    }

    #[test]
    fn sharded_steps_respect_masks() {
        use crate::shard::ShardAssignment;
        let g = ring(40);
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            2,
        )
        .unwrap();
        let mask = VertexMask::from_vertices(40, [VertexId::new(3), VertexId::new(20)]);

        let mut reference = vec![1u64; 40];
        Engine::on(&deployment)
            .run_step_masked(&SumNeighbors, &mut reference, Some(&mask))
            .unwrap();

        let assignment = ShardAssignment::new(4, 2).unwrap();
        let mut state = vec![1u64; 40];
        Engine::on(&deployment)
            .run_step_sharded(
                &SumNeighbors,
                &mut state,
                Some(&mask),
                &assignment,
                &U64Codec,
            )
            .unwrap();
        assert_eq!(state, reference);
    }

    #[test]
    fn sharded_steps_reject_mismatched_assignments() {
        use crate::shard::ShardAssignment;
        let g = ring(10);
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            2,
        )
        .unwrap();
        let assignment = ShardAssignment::new(6, 2).unwrap(); // wrong partition count
        let mut state = vec![1u64; 10];
        assert!(matches!(
            Engine::on(&deployment).run_step_sharded(
                &SumNeighbors,
                &mut state,
                None,
                &assignment,
                &U64Codec
            ),
            Err(EngineError::InvalidConfig(_))
        ));
    }

    /// [`SumNeighbors`] with a hand-batched `gather_run` that replays the
    /// budget protocol, exercising the override contract end to end.
    struct BatchedSumNeighbors;
    impl GasStep for BatchedSumNeighbors {
        type Vertex = u64;
        type Gather = u64;
        fn name(&self) -> &str {
            "sum-neighbors"
        }
        fn gather(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            _ud: &u64,
            _v: VertexId,
            vd: &u64,
            _w: &mut WorkTally,
        ) -> Option<u64> {
            Some(*vd)
        }
        fn sum(&self, a: u64, b: u64, _w: &mut WorkTally) -> u64 {
            a + b
        }
        #[allow(clippy::too_many_arguments)]
        fn gather_run(
            &self,
            _ctx: &GatherCtx<'_>,
            _u: VertexId,
            _u_data: &u64,
            neighbors: &[VertexId],
            states: &crate::program::NeighborStates<'_, u64>,
            budget: &mut crate::program::RunBudget<'_>,
            _scratch: &mut crate::scratch::ScratchArena,
            work: &mut WorkTally,
        ) -> Result<Option<(u64, u64)>, crate::program::GatherOverflow> {
            let mut acc = 0u64;
            let mut bytes = 0u64;
            for (i, &v) in neighbors.iter().enumerate() {
                budget.count_gather();
                work.add(1);
                let item = *states.get(v);
                let b = item.estimated_bytes();
                budget.charge(b)?;
                if i > 0 {
                    budget.count_sum();
                    work.add(1);
                }
                acc += item;
                bytes += b;
            }
            if neighbors.is_empty() {
                Ok(None)
            } else {
                Ok(Some((acc, bytes)))
            }
        }
        fn apply(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            data: &mut u64,
            acc: Option<u64>,
            _w: &mut WorkTally,
        ) {
            *data = acc.unwrap_or(0);
        }
    }

    #[test]
    fn batched_gather_run_override_is_byte_identical_to_default() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = gen::erdos_renyi(350, 4_000, &mut rng).into_symmetric_graph();
        let deployment = Deployment::new(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::RandomVertexCut,
            7,
        )
        .unwrap();
        let init: Vec<u64> = (0..350).map(|i| i * 19 % 61).collect();
        let mask = VertexMask::from_vertices(350, (0..200).map(|i| VertexId::new(i * 7 % 350)));

        for m in [None, Some(&mask)] {
            let mut reference_state = init.clone();
            let mut reference = Engine::on(&deployment);
            reference
                .run_step_masked(&SumNeighbors, &mut reference_state, m)
                .unwrap();
            let reference_stats = reference.into_stats();

            let mut state = init.clone();
            let mut engine = Engine::on(&deployment);
            engine
                .run_step_masked(&BatchedSumNeighbors, &mut state, m)
                .unwrap();
            let stats = engine.into_stats();
            let masked = m.is_some();
            assert_eq!(state, reference_state, "masked={masked}");
            let (s, r) = (&stats.steps[0], &reference_stats.steps[0]);
            assert_eq!(s.gather_calls, r.gather_calls, "masked={masked}");
            assert_eq!(s.sum_calls, r.sum_calls, "masked={masked}");
            assert_eq!(s.apply_calls, r.apply_calls, "masked={masked}");
            assert_eq!(s.work_ops, r.work_ops, "masked={masked}");
            assert_eq!(s.broadcast_bytes, r.broadcast_bytes, "masked={masked}");
            assert_eq!(s.partial_bytes, r.partial_bytes, "masked={masked}");
            for (n, (sn, rn)) in s.per_node.iter().zip(&r.per_node).enumerate() {
                assert_eq!(sn.compute_ops, rn.compute_ops, "node {n}");
                assert_eq!(sn.net_bytes, rn.net_bytes, "node {n}");
                assert_eq!(sn.memory_peak, rn.memory_peak, "node {n}");
            }
            assert_eq!(s.simulated_seconds, r.simulated_seconds);
        }
    }

    #[test]
    fn batched_override_surfaces_the_same_memory_exhaustion() {
        let g = ring(200);
        let cluster = ClusterSpec {
            memory_per_node: 64,
            ..ClusterSpec::type_i(8)
        };
        let deployment =
            Deployment::new(&g, cluster, PartitionStrategy::RandomVertexCut, 1).unwrap();
        let mut a = vec![1u64; 200];
        let default_err = Engine::on(&deployment)
            .run_step(&SumNeighbors, &mut a)
            .unwrap_err();
        let mut b = vec![1u64; 200];
        let batched_err = Engine::on(&deployment)
            .run_step(&BatchedSumNeighbors, &mut b)
            .unwrap_err();
        assert_eq!(default_err, batched_err);
    }

    #[test]
    fn stats_accumulate_across_steps() {
        let g = ring(10);
        let mut engine = Engine::new(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1,
        )
        .unwrap();
        let mut state = vec![1u64; 10];
        engine.run_step(&SumNeighbors, &mut state).unwrap();
        engine.run_step(&SumNeighbors, &mut state).unwrap();
        assert_eq!(engine.stats().steps.len(), 2);
        assert!(engine.simulated_seconds() > 0.0);
        let run = engine.into_stats();
        assert_eq!(run.steps.len(), 2);
    }
}
