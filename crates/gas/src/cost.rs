//! Cost model: from op/byte tallies to simulated cluster seconds.
//!
//! The reproduction runs programs for real but on scaled-down graphs and on
//! whatever host executes the tests, so wall-clock time is meaningless as a
//! *cluster* metric. Instead, every step's simulated duration is derived
//! from quantities the engine measures exactly:
//!
//! ```text
//! step_seconds = max_node(compute_ops) · op_cost / cores_per_node
//!              + max_node(net_bytes) / bandwidth
//!              + step_latency
//! ```
//!
//! The per-operation cost constant was calibrated once so that the emulated
//! *livejournal* workload at the paper's own scale would land within ~2× of
//! the absolute times of the paper's Tables 5 and 6; all claims this
//! repository makes are about *shape* (ratios, orderings, crossovers),
//! which are insensitive to that calibration — see DESIGN.md §5.

use crate::cluster::ClusterSpec;

/// Default cost per work unit, in seconds. One work unit corresponds to
/// one scoring/merge primitive (a set-intersection step, a path
/// combination, a top-k comparison). Calibrated against the paper's own
/// single-machine SNAPLE measurement (Table 6: livejournal, klocal = 20,
/// 45.8 s on 20 cores ≈ 3.3×10⁹ such primitives), giving ≈ 0.25 µs per
/// primitive including engine overheads. Random-access workloads price
/// differently — see the walk-hop constant in `snaple-cassovary`.
pub const DEFAULT_OP_COST: f64 = 0.25e-6;

/// Converts engine tallies into simulated seconds for one cluster.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Seconds per work unit on one core.
    pub op_cost: f64,
    /// Cores per node available for compute.
    pub cores_per_node: usize,
    /// Network bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Fixed barrier latency per step, in seconds.
    pub step_latency: f64,
}

impl CostModel {
    /// Builds the model for a cluster using [`DEFAULT_OP_COST`].
    pub fn for_cluster(cluster: &ClusterSpec) -> Self {
        CostModel {
            op_cost: DEFAULT_OP_COST,
            cores_per_node: cluster.cores_per_node,
            bandwidth: cluster.bandwidth,
            step_latency: cluster.step_latency,
        }
    }

    /// Overrides the per-op cost (for sensitivity analyses).
    pub fn with_op_cost(mut self, op_cost: f64) -> Self {
        self.op_cost = op_cost;
        self
    }

    /// Simulated duration of a step whose slowest node executed
    /// `max_node_ops` work units and moved `max_node_net_bytes` bytes.
    pub fn step_seconds(&self, max_node_ops: u64, max_node_net_bytes: u64) -> f64 {
        let compute = max_node_ops as f64 * self.op_cost / self.cores_per_node as f64;
        let network = if self.bandwidth.is_finite() && self.bandwidth > 0.0 {
            max_node_net_bytes as f64 / self.bandwidth
        } else {
            0.0
        };
        compute + network + self.step_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_scales_inversely_with_cores() {
        let c8 = CostModel::for_cluster(&ClusterSpec::type_i(4));
        let mut c16 = c8.clone();
        c16.cores_per_node = 16;
        let t8 = c8.step_seconds(1_000_000, 0);
        let t16 = c16.step_seconds(1_000_000, 0);
        assert!(t8 > t16);
        // Subtract latency before comparing the compute parts.
        let lat = c8.step_latency;
        assert!(((t8 - lat) / (t16 - lat) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn network_term_uses_bandwidth() {
        let m = CostModel::for_cluster(&ClusterSpec::type_i(2));
        let base = m.step_seconds(0, 0);
        let t = m.step_seconds(0, 125_000_000); // 1 second at 1 GbE
        assert!((t - base - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_machine_pays_no_network() {
        let m = CostModel::for_cluster(&ClusterSpec::single_machine(20, 1 << 30));
        assert_eq!(m.step_seconds(0, u64::MAX), 0.0);
    }

    #[test]
    fn op_cost_override() {
        let m = CostModel::for_cluster(&ClusterSpec::single_machine(1, 1)).with_op_cost(1.0);
        assert!((m.step_seconds(3, 0) - 3.0).abs() < 1e-12);
    }
}
