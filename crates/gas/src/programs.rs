//! Reference GAS programs: PageRank, connected components, degree counting.
//!
//! These are the "hello world"s of vertex-centric computation. They serve
//! three purposes here: they demonstrate that the engine is a *general*
//! GAS substrate (not a SNAPLE one-off), they cross-validate the engine
//! against the sequential oracles in [`snaple_graph::algo`], and they give
//! the benchmarks non-SNAPLE workloads to measure partitioners with.

use snaple_graph::algo;
use snaple_graph::{store, CsrGraph, Direction, GraphStore, VertexId};

use crate::cluster::ClusterSpec;
use crate::engine::Engine;
use crate::error::EngineError;
use crate::partition::PartitionStrategy;
use crate::program::{GasStep, GatherCtx, WorkTally};

/// One synchronous PageRank sweep: gathers `rank(v) / outdeg(v)` over
/// in-edges (dangling mass handled by the driver between sweeps).
#[derive(Clone, Debug)]
pub struct PageRankStep {
    /// Damping factor `d` (0.85 in most of the literature).
    pub damping: f64,
    /// Teleport-plus-dangling base value added to every vertex this sweep.
    pub base: f64,
}

impl GasStep for PageRankStep {
    type Vertex = f64;
    type Gather = f64;

    fn name(&self) -> &str {
        "pagerank-sweep"
    }

    fn gather_direction(&self) -> Direction {
        Direction::In
    }

    fn gather(
        &self,
        ctx: &GatherCtx<'_>,
        _u: VertexId,
        _u_data: &f64,
        v: VertexId,
        v_data: &f64,
        _work: &mut WorkTally,
    ) -> Option<f64> {
        Some(*v_data / ctx.out_degree(v).max(1) as f64)
    }

    fn sum(&self, a: f64, b: f64, _work: &mut WorkTally) -> f64 {
        a + b
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut f64,
        acc: Option<f64>,
        _work: &mut WorkTally,
    ) {
        *data = self.base + self.damping * acc.unwrap_or(0.0);
    }
}

/// Runs `iterations` synchronous PageRank sweeps on the engine and returns
/// the final ranks.
///
/// Matches [`snaple_graph::algo::pagerank`] exactly (same dangling-mass
/// handling), which the tests assert.
///
/// # Errors
///
/// Propagates engine errors ([`EngineError`]).
pub fn pagerank(
    graph: &dyn GraphStore,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    damping: f64,
    iterations: usize,
    seed: u64,
) -> Result<Vec<f64>, EngineError> {
    let n = graph.num_vertices();
    if n == 0 {
        return Ok(Vec::new());
    }
    let uniform = 1.0 / n as f64;
    let mut engine = Engine::new(graph, cluster, strategy, seed)?;
    let mut rank = vec![uniform; n];
    for _ in 0..iterations {
        let dangling: f64 = store::vertices(graph)
            .filter(|&u| graph.out_degree(u) == 0)
            .map(|u| rank[u.index()])
            .sum();
        let step = PageRankStep {
            damping,
            base: (1.0 - damping) * uniform + damping * dangling * uniform,
        };
        engine.run_step(&step, &mut rank)?;
    }
    Ok(rank)
}

/// One label-propagation round in one direction: every vertex adopts the
/// minimum label among itself and its neighbors.
#[derive(Clone, Debug)]
pub struct MinLabelStep {
    dir: Direction,
}

impl GasStep for MinLabelStep {
    type Vertex = u32;
    type Gather = u32;

    fn name(&self) -> &str {
        "min-label"
    }

    fn gather_direction(&self) -> Direction {
        self.dir
    }

    fn gather(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        _u_data: &u32,
        _v: VertexId,
        v_data: &u32,
        _work: &mut WorkTally,
    ) -> Option<u32> {
        Some(*v_data)
    }

    fn sum(&self, a: u32, b: u32, _work: &mut WorkTally) -> u32 {
        a.min(b)
    }

    fn apply(
        &self,
        _ctx: &GatherCtx<'_>,
        _u: VertexId,
        data: &mut u32,
        acc: Option<u32>,
        _work: &mut WorkTally,
    ) {
        if let Some(m) = acc {
            *data = (*data).min(m);
        }
    }
}

/// Weakly connected components by min-label propagation: alternating
/// out-edge and in-edge rounds until a fixpoint. Returns the per-vertex
/// component label (smallest vertex id in the component), identical to
/// [`snaple_graph::algo::weakly_connected_components`].
///
/// # Errors
///
/// Propagates engine errors ([`EngineError`]).
pub fn connected_components(
    graph: &dyn GraphStore,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    seed: u64,
) -> Result<Vec<u32>, EngineError> {
    let n = graph.num_vertices();
    let mut engine = Engine::new(graph, cluster, strategy, seed)?;
    let mut labels: Vec<u32> = (0..n as u32).collect();
    loop {
        let before = labels.clone();
        engine.run_step(
            &MinLabelStep {
                dir: Direction::Out,
            },
            &mut labels,
        )?;
        engine.run_step(&MinLabelStep { dir: Direction::In }, &mut labels)?;
        if labels == before {
            return Ok(labels);
        }
    }
}

/// Computes `(out_degree, in_degree)` per vertex as a two-step GAS program
/// — the simplest possible engine smoke test.
///
/// # Errors
///
/// Propagates engine errors ([`EngineError`]).
pub fn degrees(
    graph: &dyn GraphStore,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    seed: u64,
) -> Result<Vec<(u32, u32)>, EngineError> {
    #[derive(Clone, Copy)]
    struct CountStep {
        dir: Direction,
    }
    impl GasStep for CountStep {
        type Vertex = (u32, u32);
        type Gather = u32;
        fn name(&self) -> &str {
            "degree-count"
        }
        fn gather_direction(&self) -> Direction {
            self.dir
        }
        fn gather(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            _ud: &(u32, u32),
            _v: VertexId,
            _vd: &(u32, u32),
            _w: &mut WorkTally,
        ) -> Option<u32> {
            Some(1)
        }
        fn sum(&self, a: u32, b: u32, _w: &mut WorkTally) -> u32 {
            a + b
        }
        fn apply(
            &self,
            _: &GatherCtx<'_>,
            _u: VertexId,
            data: &mut (u32, u32),
            acc: Option<u32>,
            _w: &mut WorkTally,
        ) {
            match self.dir {
                Direction::Out => data.0 = acc.unwrap_or(0),
                Direction::In => data.1 = acc.unwrap_or(0),
            }
        }
    }

    let mut state = vec![(0u32, 0u32); graph.num_vertices()];
    let mut engine = Engine::new(graph, cluster, strategy, seed)?;
    engine.run_step(
        &CountStep {
            dir: Direction::Out,
        },
        &mut state,
    )?;
    engine.run_step(&CountStep { dir: Direction::In }, &mut state)?;
    Ok(state)
}

/// Cross-checks engine outputs against the sequential oracles; returns the
/// per-vertex maximum PageRank deviation. Used by tests and the `verify`
/// paths of the benchmarks.
///
/// # Errors
///
/// Propagates engine errors ([`EngineError`]).
pub fn validate_against_oracles(
    graph: &CsrGraph,
    cluster: ClusterSpec,
    strategy: PartitionStrategy,
    seed: u64,
) -> Result<f64, EngineError> {
    let gas_pr = pagerank(graph, cluster.clone(), strategy, 0.85, 20, seed)?;
    let seq_pr = algo::pagerank(graph, 0.85, 20);
    let max_dev = gas_pr
        .iter()
        .zip(&seq_pr)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max);

    let gas_cc = connected_components(graph, cluster, strategy, seed)?;
    let seq_cc = algo::weakly_connected_components(graph);
    assert_eq!(gas_cc, seq_cc, "components diverged from the oracle");
    Ok(max_dev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snaple_graph::gen;

    fn test_graph(seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::erdos_renyi(150, 400, &mut rng).into_symmetric_graph()
    }

    #[test]
    fn gas_pagerank_matches_sequential_oracle() {
        let g = test_graph(1);
        let dev = validate_against_oracles(
            &g,
            ClusterSpec::type_i(8),
            PartitionStrategy::RandomVertexCut,
            7,
        )
        .unwrap();
        assert!(dev < 1e-12, "max deviation {dev}");
    }

    #[test]
    fn gas_pagerank_is_a_distribution() {
        let g = test_graph(2);
        let pr = pagerank(
            &g,
            ClusterSpec::type_ii(4),
            PartitionStrategy::GreedyVertexCut,
            0.85,
            30,
            3,
        )
        .unwrap();
        let sum: f64 = pr.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(pr.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn components_match_oracle_on_directed_graphs() {
        // Directed chain + separate pair: weak connectivity must bridge
        // direction.
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 1), (3, 2), (4, 5)]);
        let labels = connected_components(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::SourceHash1D,
            1,
        )
        .unwrap();
        assert_eq!(labels, algo::weakly_connected_components(&g));
        assert_eq!(labels, vec![0, 0, 0, 0, 4, 4]);
    }

    #[test]
    fn degrees_match_graph_accessors() {
        let g = test_graph(3);
        let d = degrees(
            &g,
            ClusterSpec::type_i(4),
            PartitionStrategy::RandomVertexCut,
            9,
        )
        .unwrap();
        for u in g.vertices() {
            assert_eq!(d[u.index()].0 as usize, g.out_degree(u), "{u}");
            assert_eq!(d[u.index()].1 as usize, g.in_degree(u), "{u}");
        }
    }

    #[test]
    fn empty_graph_programs_terminate() {
        let g = CsrGraph::from_edges(0, &[]);
        assert!(pagerank(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            0.85,
            3,
            1
        )
        .unwrap()
        .is_empty());
        assert!(connected_components(
            &g,
            ClusterSpec::type_i(2),
            PartitionStrategy::RandomVertexCut,
            1
        )
        .unwrap()
        .is_empty());
    }
}
