//! Execution statistics collected by the engine.

/// Per-node tallies for one GAS step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Compute operations executed on this node (engine-counted calls plus
    /// program-reported work units).
    pub compute_ops: u64,
    /// Bytes this node sent or received over the simulated network.
    pub net_bytes: u64,
    /// Peak simulated memory footprint of the node during the step.
    pub memory_peak: u64,
}

/// Statistics of one executed GAS step.
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// Step name as reported by the program.
    pub name: String,
    /// Number of `gather` invocations.
    pub gather_calls: u64,
    /// Number of `sum` invocations (local folds plus master merges).
    pub sum_calls: u64,
    /// Number of `apply` invocations.
    pub apply_calls: u64,
    /// Total work units, including program-reported extra work.
    pub work_ops: u64,
    /// Bytes of vertex state broadcast from masters to mirrors.
    pub broadcast_bytes: u64,
    /// Bytes of gather partials sent from mirrors to masters.
    pub partial_bytes: u64,
    /// Per-node breakdown.
    pub per_node: Vec<NodeStats>,
    /// Simulated wall-clock duration of the step (cost model output).
    pub simulated_seconds: f64,
}

impl NodeStats {
    /// Folds another run's tally for the same node into this one:
    /// cumulative counters (`compute_ops`, `net_bytes`) add, while
    /// `memory_peak` keeps the larger high-water mark — concurrent peaks
    /// are not assumed to coincide.
    pub fn merge_parallel(&mut self, other: &NodeStats) {
        self.compute_ops += other.compute_ops;
        self.net_bytes += other.net_bytes;
        self.memory_peak = self.memory_peak.max(other.memory_peak);
    }
}

impl StepStats {
    /// Total bytes crossing the simulated network during this step.
    pub fn network_bytes(&self) -> u64 {
        self.broadcast_bytes + self.partial_bytes
    }

    /// Largest per-node compute-op count (the straggler that bounds the
    /// step's compute time).
    pub fn max_node_ops(&self) -> u64 {
        self.per_node
            .iter()
            .map(|n| n.compute_ops)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-node network volume.
    pub fn max_node_net_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.net_bytes).max().unwrap_or(0)
    }

    /// Largest per-node memory footprint.
    pub fn peak_memory(&self) -> u64 {
        self.per_node
            .iter()
            .map(|n| n.memory_peak)
            .max()
            .unwrap_or(0)
    }

    /// Folds the same-named step of a run that executed *in parallel*
    /// with this one (e.g. on a sibling shard) into this step's tallies.
    ///
    /// Cumulative counters (calls, work, bytes) add; per-node tallies
    /// merge element-wise (the longer breakdown wins when node counts
    /// differ); `simulated_seconds` keeps the maximum — parallel runs
    /// complete when their slowest member does.
    pub fn merge_parallel(&mut self, other: &StepStats) {
        self.gather_calls += other.gather_calls;
        self.sum_calls += other.sum_calls;
        self.apply_calls += other.apply_calls;
        self.work_ops += other.work_ops;
        self.broadcast_bytes += other.broadcast_bytes;
        self.partial_bytes += other.partial_bytes;
        if self.per_node.len() < other.per_node.len() {
            self.per_node
                .resize(other.per_node.len(), NodeStats::default());
        }
        for (mine, theirs) in self.per_node.iter_mut().zip(&other.per_node) {
            mine.merge_parallel(theirs);
        }
        self.simulated_seconds = self.simulated_seconds.max(other.simulated_seconds);
    }
}

/// Accumulated statistics of a full GAS program run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per executed step, in order.
    pub steps: Vec<StepStats>,
    /// Replication factor of the partition the run executed on.
    pub replication_factor: f64,
    /// Host wall-clock seconds spent building the partition *for this
    /// run*: the full O(edges) build for one-shot engines
    /// ([`Engine::new`](crate::Engine::new)), zero for engines executing
    /// on a prepared, shared [`Deployment`](crate::Deployment)
    /// ([`Engine::on`](crate::Engine::on)) — which is how experiment
    /// tables make the prepare-once amortization win visible.
    pub partition_build_seconds: f64,
    /// Cumulative host wall-clock seconds the run's deployment spent
    /// absorbing graph deltas
    /// ([`Deployment::apply_delta`](crate::Deployment::apply_delta)) —
    /// zero for one-shot engines and for deployments never updated.
    pub delta_apply_seconds: f64,
    /// Cumulative count of vertex-cut partitions touched by the
    /// deployment's applied deltas: the incremental-repair footprint that
    /// a full repartition would have inflated to every-partition.
    pub delta_touched_partitions: usize,
}

impl RunStats {
    /// Simulated wall-clock seconds across all steps.
    pub fn simulated_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.simulated_seconds).sum()
    }

    /// Total simulated network traffic in bytes.
    pub fn total_network_bytes(&self) -> u64 {
        self.steps.iter().map(StepStats::network_bytes).sum()
    }

    /// Peak per-node memory across all steps.
    pub fn peak_memory(&self) -> u64 {
        self.steps
            .iter()
            .map(StepStats::peak_memory)
            .max()
            .unwrap_or(0)
    }

    /// Total work units across all steps.
    pub fn total_work_ops(&self) -> u64 {
        self.steps.iter().map(|s| s.work_ops).sum()
    }

    /// Folds the stats of a run that executed *in parallel* with this one
    /// (a sibling shard's run over the same program) into this summary.
    ///
    /// Steps pair up by position — sharded runs execute the same program,
    /// so step `i` here and step `i` there are the same superstep — and
    /// merge via [`StepStats::merge_parallel`]; unmatched trailing steps
    /// are appended verbatim. Wall-clock style fields
    /// (`partition_build_seconds`, `delta_apply_seconds`) keep the
    /// maximum (parallel preparation is bounded by its slowest member),
    /// as do `replication_factor` and `delta_touched_partitions`, which
    /// are per-deployment readings rather than cumulative counters.
    pub fn merge_parallel(&mut self, other: &RunStats) {
        for (i, step) in other.steps.iter().enumerate() {
            match self.steps.get_mut(i) {
                Some(mine) => mine.merge_parallel(step),
                None => self.steps.push(step.clone()),
            }
        }
        self.replication_factor = self.replication_factor.max(other.replication_factor);
        self.partition_build_seconds = self
            .partition_build_seconds
            .max(other.partition_build_seconds);
        self.delta_apply_seconds = self.delta_apply_seconds.max(other.delta_apply_seconds);
        self.delta_touched_partitions = self
            .delta_touched_partitions
            .max(other.delta_touched_partitions);
    }

    /// Merges an iterator of parallel runs into one summary; `None` when
    /// the iterator is empty.
    pub fn merged_parallel<'a>(runs: impl IntoIterator<Item = &'a RunStats>) -> Option<RunStats> {
        let mut iter = runs.into_iter();
        let mut acc = iter.next()?.clone();
        for run in iter {
            acc.merge_parallel(run);
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(ops: &[u64], net: &[u64], mem: &[u64], secs: f64) -> StepStats {
        StepStats {
            name: "s".into(),
            per_node: ops
                .iter()
                .zip(net)
                .zip(mem)
                .map(|((&o, &n), &m)| NodeStats {
                    compute_ops: o,
                    net_bytes: n,
                    memory_peak: m,
                })
                .collect(),
            broadcast_bytes: net.iter().sum::<u64>() / 2,
            partial_bytes: net.iter().sum::<u64>() / 2,
            simulated_seconds: secs,
            ..Default::default()
        }
    }

    #[test]
    fn step_maxes() {
        let s = step(&[5, 9, 2], &[10, 4, 7], &[100, 50, 200], 1.5);
        assert_eq!(s.max_node_ops(), 9);
        assert_eq!(s.max_node_net_bytes(), 10);
        assert_eq!(s.peak_memory(), 200);
        assert_eq!(s.network_bytes(), 20);
    }

    #[test]
    fn run_aggregates() {
        let run = RunStats {
            steps: vec![
                step(&[5], &[10], &[100], 1.0),
                step(&[7], &[2], &[300], 0.5),
            ],
            replication_factor: 1.5,
            ..Default::default()
        };
        assert!((run.simulated_seconds() - 1.5).abs() < 1e-12);
        assert_eq!(run.peak_memory(), 300);
        assert_eq!(run.total_network_bytes(), 10 + 2);
    }

    #[test]
    fn parallel_step_merge_adds_counters_and_keeps_critical_path() {
        let mut a = step(&[5, 9], &[10, 4], &[100, 50], 1.5);
        a.gather_calls = 7;
        a.apply_calls = 3;
        let mut b = step(&[2, 1], &[6, 6], &[300, 10], 0.5);
        b.gather_calls = 5;
        b.apply_calls = 4;
        a.merge_parallel(&b);
        assert_eq!(a.gather_calls, 12);
        assert_eq!(a.apply_calls, 7);
        assert_eq!(a.per_node[0].compute_ops, 7);
        assert_eq!(a.per_node[1].net_bytes, 10);
        // Peaks keep the high-water mark, not the sum.
        assert_eq!(a.per_node[0].memory_peak, 300);
        assert_eq!(a.per_node[1].memory_peak, 50);
        // Parallel runs complete when the slowest member does.
        assert!((a.simulated_seconds - 1.5).abs() < 1e-12);
        assert_eq!(a.network_bytes(), 14 + 12);
    }

    #[test]
    fn parallel_step_merge_grows_to_the_longer_node_breakdown() {
        let mut a = step(&[5], &[10], &[100], 1.0);
        let b = step(&[1, 2, 3], &[0, 0, 6], &[50, 70, 90], 2.0);
        a.merge_parallel(&b);
        assert_eq!(a.per_node.len(), 3);
        assert_eq!(a.per_node[0].compute_ops, 6);
        assert_eq!(a.per_node[2].compute_ops, 3);
        assert_eq!(a.peak_memory(), 100);
    }

    #[test]
    fn parallel_run_merge_pairs_steps_by_position() {
        let mut a = RunStats {
            steps: vec![step(&[5], &[10], &[100], 1.0)],
            replication_factor: 1.5,
            partition_build_seconds: 0.2,
            ..Default::default()
        };
        let b = RunStats {
            steps: vec![step(&[7], &[2], &[300], 0.25), step(&[1], &[4], &[10], 0.5)],
            replication_factor: 1.2,
            partition_build_seconds: 0.6,
            delta_apply_seconds: 0.1,
            delta_touched_partitions: 3,
        };
        a.merge_parallel(&b);
        assert_eq!(a.steps.len(), 2, "unmatched trailing steps append");
        assert_eq!(a.steps[0].per_node[0].compute_ops, 12);
        assert!((a.steps[0].simulated_seconds - 1.0).abs() < 1e-12);
        assert!((a.replication_factor - 1.5).abs() < 1e-12);
        assert!((a.partition_build_seconds - 0.6).abs() < 1e-12);
        assert_eq!(a.delta_touched_partitions, 3);
        assert_eq!(a.total_work_ops(), 0, "work_ops untouched by helper steps");
    }

    #[test]
    fn merged_parallel_folds_a_whole_fleet() {
        let runs: Vec<RunStats> = (0..3u64)
            .map(|i| RunStats {
                steps: vec![step(&[i + 1], &[10], &[100 * (i + 1)], i as f64)],
                replication_factor: 1.0 + i as f64 / 10.0,
                ..Default::default()
            })
            .collect();
        let merged = RunStats::merged_parallel(&runs).unwrap();
        assert_eq!(merged.steps[0].per_node[0].compute_ops, 1 + 2 + 3);
        assert_eq!(merged.peak_memory(), 300);
        assert!((merged.simulated_seconds() - 2.0).abs() < 1e-12);
        assert!(RunStats::merged_parallel(std::iter::empty()).is_none());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StepStats::default();
        assert_eq!(s.max_node_ops(), 0);
        assert_eq!(s.peak_memory(), 0);
        let r = RunStats::default();
        assert_eq!(r.simulated_seconds(), 0.0);
        assert_eq!(r.total_work_ops(), 0);
    }
}
