//! Execution statistics collected by the engine.

/// Per-node tallies for one GAS step.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct NodeStats {
    /// Compute operations executed on this node (engine-counted calls plus
    /// program-reported work units).
    pub compute_ops: u64,
    /// Bytes this node sent or received over the simulated network.
    pub net_bytes: u64,
    /// Peak simulated memory footprint of the node during the step.
    pub memory_peak: u64,
}

/// Statistics of one executed GAS step.
#[derive(Clone, Debug, Default)]
pub struct StepStats {
    /// Step name as reported by the program.
    pub name: String,
    /// Number of `gather` invocations.
    pub gather_calls: u64,
    /// Number of `sum` invocations (local folds plus master merges).
    pub sum_calls: u64,
    /// Number of `apply` invocations.
    pub apply_calls: u64,
    /// Total work units, including program-reported extra work.
    pub work_ops: u64,
    /// Bytes of vertex state broadcast from masters to mirrors.
    pub broadcast_bytes: u64,
    /// Bytes of gather partials sent from mirrors to masters.
    pub partial_bytes: u64,
    /// Per-node breakdown.
    pub per_node: Vec<NodeStats>,
    /// Simulated wall-clock duration of the step (cost model output).
    pub simulated_seconds: f64,
}

impl StepStats {
    /// Total bytes crossing the simulated network during this step.
    pub fn network_bytes(&self) -> u64 {
        self.broadcast_bytes + self.partial_bytes
    }

    /// Largest per-node compute-op count (the straggler that bounds the
    /// step's compute time).
    pub fn max_node_ops(&self) -> u64 {
        self.per_node
            .iter()
            .map(|n| n.compute_ops)
            .max()
            .unwrap_or(0)
    }

    /// Largest per-node network volume.
    pub fn max_node_net_bytes(&self) -> u64 {
        self.per_node.iter().map(|n| n.net_bytes).max().unwrap_or(0)
    }

    /// Largest per-node memory footprint.
    pub fn peak_memory(&self) -> u64 {
        self.per_node
            .iter()
            .map(|n| n.memory_peak)
            .max()
            .unwrap_or(0)
    }
}

/// Accumulated statistics of a full GAS program run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// One entry per executed step, in order.
    pub steps: Vec<StepStats>,
    /// Replication factor of the partition the run executed on.
    pub replication_factor: f64,
    /// Host wall-clock seconds spent building the partition *for this
    /// run*: the full O(edges) build for one-shot engines
    /// ([`Engine::new`](crate::Engine::new)), zero for engines executing
    /// on a prepared, shared [`Deployment`](crate::Deployment)
    /// ([`Engine::on`](crate::Engine::on)) — which is how experiment
    /// tables make the prepare-once amortization win visible.
    pub partition_build_seconds: f64,
    /// Cumulative host wall-clock seconds the run's deployment spent
    /// absorbing graph deltas
    /// ([`Deployment::apply_delta`](crate::Deployment::apply_delta)) —
    /// zero for one-shot engines and for deployments never updated.
    pub delta_apply_seconds: f64,
    /// Cumulative count of vertex-cut partitions touched by the
    /// deployment's applied deltas: the incremental-repair footprint that
    /// a full repartition would have inflated to every-partition.
    pub delta_touched_partitions: usize,
}

impl RunStats {
    /// Simulated wall-clock seconds across all steps.
    pub fn simulated_seconds(&self) -> f64 {
        self.steps.iter().map(|s| s.simulated_seconds).sum()
    }

    /// Total simulated network traffic in bytes.
    pub fn total_network_bytes(&self) -> u64 {
        self.steps.iter().map(StepStats::network_bytes).sum()
    }

    /// Peak per-node memory across all steps.
    pub fn peak_memory(&self) -> u64 {
        self.steps
            .iter()
            .map(StepStats::peak_memory)
            .max()
            .unwrap_or(0)
    }

    /// Total work units across all steps.
    pub fn total_work_ops(&self) -> u64 {
        self.steps.iter().map(|s| s.work_ops).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(ops: &[u64], net: &[u64], mem: &[u64], secs: f64) -> StepStats {
        StepStats {
            name: "s".into(),
            per_node: ops
                .iter()
                .zip(net)
                .zip(mem)
                .map(|((&o, &n), &m)| NodeStats {
                    compute_ops: o,
                    net_bytes: n,
                    memory_peak: m,
                })
                .collect(),
            broadcast_bytes: net.iter().sum::<u64>() / 2,
            partial_bytes: net.iter().sum::<u64>() / 2,
            simulated_seconds: secs,
            ..Default::default()
        }
    }

    #[test]
    fn step_maxes() {
        let s = step(&[5, 9, 2], &[10, 4, 7], &[100, 50, 200], 1.5);
        assert_eq!(s.max_node_ops(), 9);
        assert_eq!(s.max_node_net_bytes(), 10);
        assert_eq!(s.peak_memory(), 200);
        assert_eq!(s.network_bytes(), 20);
    }

    #[test]
    fn run_aggregates() {
        let run = RunStats {
            steps: vec![
                step(&[5], &[10], &[100], 1.0),
                step(&[7], &[2], &[300], 0.5),
            ],
            replication_factor: 1.5,
            ..Default::default()
        };
        assert!((run.simulated_seconds() - 1.5).abs() < 1e-12);
        assert_eq!(run.peak_memory(), 300);
        assert_eq!(run.total_network_bytes(), 10 + 2);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = StepStats::default();
        assert_eq!(s.max_node_ops(), 0);
        assert_eq!(s.peak_memory(), 0);
        let r = RunStats::default();
        assert_eq!(r.simulated_seconds(), 0.0);
        assert_eq!(r.total_work_ops(), 0);
    }
}
