#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! A simulated distributed **gather-apply-scatter** (GAS) engine.
//!
//! This crate is the substrate on which the SNAPLE link-prediction programs
//! run. It reproduces the execution and *cost* structure of
//! GraphLab/PowerGraph — the engine the paper builds on — without requiring
//! a physical cluster:
//!
//! * Graphs are split across `N` simulated nodes with a **vertex-cut**
//!   partitioner ([`partition`]): edges are assigned to nodes, vertices are
//!   replicated wherever their edges live, and one replica per vertex is the
//!   *master*.
//! * A GAS superstep ([`Engine::run_step`]) executes a user
//!   [`GasStep`] program: per-edge `gather`, associative `sum` into
//!   per-node partial accumulators, and per-vertex `apply` at the master.
//!   Programs really run (multithreaded on the host), so their outputs are
//!   exact; only *time* is modeled.
//! * Every byte that would cross the network in a real deployment is
//!   accounted: master→mirror state broadcasts before gathering and
//!   mirror→master partial-gather transfers after it. Per-node memory is
//!   tracked against the cluster's capacity and the engine fails with
//!   [`EngineError::ResourceExhausted`] exactly where a real GraphLab
//!   deployment would die — which is how the paper's BASELINE fails on
//!   *orkut* and *twitter-rv*.
//! * A calibrated [`cost::CostModel`] converts the per-node op and byte
//!   tallies into simulated wall-clock seconds for a given
//!   [`ClusterSpec`] (the paper's type-I and type-II machines ship as
//!   presets).
//! * Deployments are **refreshable in place**: the serving lifecycle is
//!   *prepare → execute → [`Deployment::apply_delta`] → execute*. A
//!   [`GraphDelta`](snaple_graph::GraphDelta) of edge insertions and
//!   removals folds into the prepared state incrementally — the graph
//!   via a linear [`CsrGraph::compact`](snaple_graph::CsrGraph::compact)
//!   merge, the vertex-cut partition by re-routing only the partitions
//!   the delta touches — and engines created afterwards run on the
//!   mutated graph with results bit-identical to a cold rebuild on it.
//!   [`RunStats`] carry the deployment's cumulative delta-apply time and
//!   touched-partition count; see [`deploy`] for the full lifecycle.
//!
//! # Example
//!
//! Count each vertex's in-degree with a one-step GAS program:
//!
//! ```
//! use snaple_gas::{ClusterSpec, Engine, GasStep, GatherCtx, PartitionStrategy, WorkTally};
//! use snaple_graph::{CsrGraph, Direction, VertexId};
//!
//! struct InDegree;
//! impl GasStep for InDegree {
//!     type Vertex = u64;
//!     type Gather = u64;
//!     fn name(&self) -> &'static str { "in-degree" }
//!     fn gather_direction(&self) -> Direction { Direction::In }
//!     fn gather(&self, _: &GatherCtx<'_>, _u: VertexId, _ud: &u64, _v: VertexId,
//!               _vd: &u64, _w: &mut WorkTally) -> Option<u64> { Some(1) }
//!     fn sum(&self, a: u64, b: u64, _w: &mut WorkTally) -> u64 { a + b }
//!     fn apply(&self, _: &GatherCtx<'_>, _u: VertexId, data: &mut u64,
//!              acc: Option<u64>, _w: &mut WorkTally) { *data = acc.unwrap_or(0); }
//! }
//!
//! let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 2)]);
//! let cluster = ClusterSpec::type_i(2);
//! let mut engine = Engine::new(&g, cluster, PartitionStrategy::RandomVertexCut, 7)?;
//! let mut state = vec![0u64; 3];
//! engine.run_step(&InDegree, &mut state)?;
//! assert_eq!(state, vec![0, 1, 2]);
//! # Ok::<(), snaple_gas::EngineError>(())
//! ```

pub mod cluster;
pub mod cost;
pub mod deploy;
pub mod engine;
pub mod error;
pub mod partition;
pub mod program;
pub mod programs;
pub mod scratch;
pub mod shard;
pub mod size;
pub mod stats;

pub use cluster::{ClusterSpec, NodeId};
pub use cost::CostModel;
pub use deploy::{DeltaStats, Deployment};
pub use engine::{host_parallelism, Engine, GatherCodec, ShardSyncStats, U64Codec};
pub use error::EngineError;
pub use partition::{master_node, PartitionStrategy, PartitionedGraph};
pub use program::{GasStep, GatherCtx, GatherOverflow, NeighborStates, RunBudget, WorkTally};
pub use scratch::ScratchArena;
pub use shard::ShardAssignment;
pub use size::SizeEstimate;
pub use stats::{NodeStats, RunStats, StepStats};
