//! The GAS program interface.

use snaple_graph::{Direction, GraphStore, VertexId};

use crate::scratch::ScratchArena;
use crate::size::SizeEstimate;

/// Work counter threaded through a GAS step.
///
/// The engine automatically counts one operation per `gather`, `sum` and
/// `apply` invocation; programs report *additional* units of work (e.g. one
/// unit per Jaccard merge step, one per path combination) via
/// [`WorkTally::add`]. These units feed the [cost model](crate::cost) that
/// converts executions into simulated cluster seconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkTally {
    ops: u64,
}

impl WorkTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` additional units of work.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total units recorded so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &WorkTally) {
        self.ops += other.ops;
    }
}

/// Read-only execution context available to `gather` and `apply`.
///
/// Mirrors what GraphLab exposes to vertex programs: the degrees of the
/// vertex being processed (`num_out_edges` in GraphLab's API), edge weights,
/// and a per-run seed for deterministic randomized decisions (such as the
/// probabilistic neighborhood truncation of the paper's Algorithm 2,
/// line 3). Full topology is deliberately *not* exposed — that is the GAS
/// restriction the paper works within.
#[derive(Debug)]
pub struct GatherCtx<'a> {
    graph: &'a dyn GraphStore,
    seed: u64,
}

impl<'a> GatherCtx<'a> {
    pub(crate) fn new(graph: &'a dyn GraphStore, seed: u64) -> Self {
        GatherCtx { graph, seed }
    }

    /// Out-degree `|Γ(u)|` of a vertex.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.graph.out_degree(u)
    }

    /// In-degree `|Γ⁻¹(u)|` of a vertex.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.graph.in_degree(u)
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Weight of the edge `(u, v)` (1.0 for unweighted graphs), or `None`
    /// if no such edge exists.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        self.graph.edge_weight(u, v)
    }

    /// Per-run seed for deterministic hash-based randomness.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// A simulated node ran out of memory while accumulating gather partials.
///
/// Produced by [`RunBudget::charge`]; batched [`GasStep::gather_run`]
/// implementations propagate it with `?` and the engine converts it into
/// [`EngineError::ResourceExhausted`](crate::EngineError::ResourceExhausted)
/// naming the failing partition.
#[derive(Debug)]
pub struct GatherOverflow {
    pub(crate) required: u64,
}

/// Accounting ledger of one gather run, threaded through
/// [`GasStep::gather_run`].
///
/// The budget mirrors the engine's historical per-edge protocol: one
/// [`count_gather`](RunBudget::count_gather) per gathered edge, one
/// [`charge`](RunBudget::charge) per accumulator contribution (checked
/// against the simulated node's memory capacity), and one
/// [`count_sum`](RunBudget::count_sum) per fold. A batched implementation
/// that replays these calls in edge order produces byte-identical run
/// statistics to the default per-edge path.
#[derive(Debug)]
pub struct RunBudget<'a> {
    gather_calls: &'a mut u64,
    sum_calls: &'a mut u64,
    mem: &'a mut u64,
    mem_peak: &'a mut u64,
    cap: u64,
}

impl<'a> RunBudget<'a> {
    pub(crate) fn new(
        gather_calls: &'a mut u64,
        sum_calls: &'a mut u64,
        mem: &'a mut u64,
        mem_peak: &'a mut u64,
        cap: u64,
    ) -> Self {
        RunBudget {
            gather_calls,
            sum_calls,
            mem,
            mem_peak,
            cap,
        }
    }

    /// Records one gather invocation (the engine's implicit op per edge).
    #[inline]
    pub fn count_gather(&mut self) {
        *self.gather_calls += 1;
    }

    /// Records one sum fold (the engine's implicit op per fold).
    #[inline]
    pub fn count_sum(&mut self) {
        *self.sum_calls += 1;
    }

    /// Charges `bytes` of accumulator memory against the node's capacity.
    ///
    /// # Errors
    ///
    /// Returns [`GatherOverflow`] when the node's cumulative gather memory
    /// exceeds its capacity — propagate it, do not swallow it.
    #[inline]
    pub fn charge(&mut self, bytes: u64) -> Result<(), GatherOverflow> {
        *self.mem += bytes;
        *self.mem_peak = (*self.mem_peak).max(*self.mem);
        if *self.mem > self.cap {
            Err(GatherOverflow {
                required: *self.mem,
            })
        } else {
            Ok(())
        }
    }
}

/// Read access to the vertex states a gather run may consult, indexed by
/// neighbor id. Wraps the full state slice without exposing mutation.
#[derive(Debug)]
pub struct NeighborStates<'a, V> {
    states: &'a [V],
}

impl<'a, V> NeighborStates<'a, V> {
    pub(crate) fn new(states: &'a [V]) -> Self {
        NeighborStates { states }
    }

    /// The program state of vertex `v`.
    #[inline]
    pub fn get(&self, v: VertexId) -> &'a V {
        &self.states[v.index()]
    }
}

/// One gather-apply superstep of a GAS program.
///
/// A multi-step program (like SNAPLE's Algorithm 2) is expressed as a
/// sequence of `GasStep` values sharing a vertex state type, executed in
/// order via [`Engine::run_step`](crate::Engine::run_step).
///
/// Semantics, following the paper's §2.3 (notation of PowerGraph):
///
/// 1. **gather** runs once per edge adjacent to the accumulating vertex `u`
///    in [`gather_direction`](GasStep::gather_direction), on whichever
///    simulated node stores the edge. It may read both endpoint states.
/// 2. **sum** folds gather results into per-node partial accumulators;
///    partials cross the (accounted) network to `u`'s master replica.
///    It must be commutative and associative up to the tolerance the
///    program cares about.
/// 3. **apply** runs at the master with the fully merged accumulator
///    (`None` if no edge produced a gather value) and may rewrite `u`'s
///    state. The new state is broadcast to mirrors before the next step
///    (also accounted).
///
/// The scatter phase of the full GAS model is intentionally absent: neither
/// SNAPLE nor the paper's baselines use it (paper §4: "We do not use any
/// scatter phase"), and omitting it keeps accounting exact.
pub trait GasStep: Sync {
    /// Per-vertex program state, shared across all steps of a program.
    type Vertex: Send + Sync + SizeEstimate;
    /// Per-step accumulator type.
    type Gather: Send + SizeEstimate;

    /// Human-readable step name (used in stats and error reports).
    fn name(&self) -> &str;

    /// Which adjacent edges `u` gathers over. Defaults to out-edges, the
    /// direction used throughout the paper.
    fn gather_direction(&self) -> Direction {
        Direction::Out
    }

    /// Produces an accumulator contribution for one edge.
    ///
    /// `u` is the accumulating vertex, `v` the neighbor along the gathered
    /// edge ((u, v) for [`Direction::Out`], (v, u) for [`Direction::In`]).
    /// Returning `None` contributes nothing (and transfers nothing).
    fn gather(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        u_data: &Self::Vertex,
        v: VertexId,
        v_data: &Self::Vertex,
        work: &mut WorkTally,
    ) -> Option<Self::Gather>;

    /// Folds two accumulators. Must be commutative and associative.
    fn sum(&self, a: Self::Gather, b: Self::Gather, work: &mut WorkTally) -> Self::Gather;

    /// Gathers one *run* — a maximal stretch of same-vertex edges on one
    /// simulated node — in a single call, returning the folded accumulator
    /// and its accounted byte size (`None` if every edge contributed
    /// nothing).
    ///
    /// The default implementation replays the engine's per-edge protocol —
    /// [`gather`](GasStep::gather) / [`SizeEstimate`] charge /
    /// [`sum`](GasStep::sum) per neighbor — and is byte-identical to the
    /// historical edge loop. Batched programs override it to consume the
    /// whole neighbor stripe at once (vectorized kernels, pooled buffers
    /// from `scratch`), and **must replicate the same accounting**: per
    /// neighbor one [`RunBudget::count_gather`] plus `work.add(1)`, one
    /// [`RunBudget::charge`] per contribution, and per fold one
    /// [`RunBudget::count_sum`] plus `work.add(1)` on top of whatever
    /// `sum` itself would tally — otherwise run statistics (and the
    /// simulated cost model built on them) diverge from the per-edge path.
    ///
    /// # Errors
    ///
    /// Propagates [`GatherOverflow`] from [`RunBudget::charge`] when the
    /// simulated node exceeds its memory capacity.
    #[allow(unused_variables, clippy::too_many_arguments)]
    fn gather_run(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        u_data: &Self::Vertex,
        neighbors: &[VertexId],
        states: &NeighborStates<'_, Self::Vertex>,
        budget: &mut RunBudget<'_>,
        scratch: &mut ScratchArena,
        work: &mut WorkTally,
    ) -> Result<Option<(Self::Gather, u64)>, GatherOverflow> {
        let mut cur: Option<(Self::Gather, u64)> = None;
        for &v in neighbors {
            budget.count_gather();
            work.add(1);
            let Some(item) = self.gather(ctx, u, u_data, v, states.get(v), work) else {
                continue;
            };
            let bytes = item.estimated_bytes();
            budget.charge(bytes)?;
            cur = Some(match cur.take() {
                None => (item, bytes),
                Some((acc, b)) => {
                    budget.count_sum();
                    work.add(1);
                    (self.sum(acc, item, work), b + bytes)
                }
            });
        }
        Ok(cur)
    }

    /// Consumes the merged accumulator and updates the vertex state.
    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut Self::Vertex,
        acc: Option<Self::Gather>,
        work: &mut WorkTally,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::CsrGraph;

    #[test]
    fn tally_accumulates_and_merges() {
        let mut a = WorkTally::new();
        a.add(3);
        a.add(4);
        let mut b = WorkTally::new();
        b.add(10);
        a.merge(&b);
        assert_eq!(a.ops(), 17);
        assert_eq!(WorkTally::default().ops(), 0);
    }

    #[test]
    fn ctx_exposes_degrees_weights_and_seed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 0)]);
        let ctx = GatherCtx::new(&g, 99);
        assert_eq!(ctx.out_degree(VertexId::new(0)), 2);
        assert_eq!(ctx.in_degree(VertexId::new(0)), 1);
        assert_eq!(ctx.num_vertices(), 3);
        assert_eq!(
            ctx.edge_weight(VertexId::new(0), VertexId::new(1)),
            Some(1.0)
        );
        assert_eq!(ctx.edge_weight(VertexId::new(2), VertexId::new(0)), None);
        assert_eq!(ctx.seed(), 99);
    }
}
