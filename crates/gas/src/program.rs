//! The GAS program interface.

use snaple_graph::{CsrGraph, Direction, VertexId};

use crate::size::SizeEstimate;

/// Work counter threaded through a GAS step.
///
/// The engine automatically counts one operation per `gather`, `sum` and
/// `apply` invocation; programs report *additional* units of work (e.g. one
/// unit per Jaccard merge step, one per path combination) via
/// [`WorkTally::add`]. These units feed the [cost model](crate::cost) that
/// converts executions into simulated cluster seconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkTally {
    ops: u64,
}

impl WorkTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` additional units of work.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.ops += n;
    }

    /// Total units recorded so far.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &WorkTally) {
        self.ops += other.ops;
    }
}

/// Read-only execution context available to `gather` and `apply`.
///
/// Mirrors what GraphLab exposes to vertex programs: the degrees of the
/// vertex being processed (`num_out_edges` in GraphLab's API), edge weights,
/// and a per-run seed for deterministic randomized decisions (such as the
/// probabilistic neighborhood truncation of the paper's Algorithm 2,
/// line 3). Full topology is deliberately *not* exposed — that is the GAS
/// restriction the paper works within.
#[derive(Debug)]
pub struct GatherCtx<'a> {
    graph: &'a CsrGraph,
    seed: u64,
}

impl<'a> GatherCtx<'a> {
    pub(crate) fn new(graph: &'a CsrGraph, seed: u64) -> Self {
        GatherCtx { graph, seed }
    }

    /// Out-degree `|Γ(u)|` of a vertex.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.graph.out_degree(u)
    }

    /// In-degree `|Γ⁻¹(u)|` of a vertex.
    #[inline]
    pub fn in_degree(&self, u: VertexId) -> usize {
        self.graph.in_degree(u)
    }

    /// Number of vertices in the graph.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Weight of the edge `(u, v)` (1.0 for unweighted graphs), or `None`
    /// if no such edge exists.
    #[inline]
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<f32> {
        self.graph.edge_weight(u, v)
    }

    /// Per-run seed for deterministic hash-based randomness.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// One gather-apply superstep of a GAS program.
///
/// A multi-step program (like SNAPLE's Algorithm 2) is expressed as a
/// sequence of `GasStep` values sharing a vertex state type, executed in
/// order via [`Engine::run_step`](crate::Engine::run_step).
///
/// Semantics, following the paper's §2.3 (notation of PowerGraph):
///
/// 1. **gather** runs once per edge adjacent to the accumulating vertex `u`
///    in [`gather_direction`](GasStep::gather_direction), on whichever
///    simulated node stores the edge. It may read both endpoint states.
/// 2. **sum** folds gather results into per-node partial accumulators;
///    partials cross the (accounted) network to `u`'s master replica.
///    It must be commutative and associative up to the tolerance the
///    program cares about.
/// 3. **apply** runs at the master with the fully merged accumulator
///    (`None` if no edge produced a gather value) and may rewrite `u`'s
///    state. The new state is broadcast to mirrors before the next step
///    (also accounted).
///
/// The scatter phase of the full GAS model is intentionally absent: neither
/// SNAPLE nor the paper's baselines use it (paper §4: "We do not use any
/// scatter phase"), and omitting it keeps accounting exact.
pub trait GasStep: Sync {
    /// Per-vertex program state, shared across all steps of a program.
    type Vertex: Send + Sync + SizeEstimate;
    /// Per-step accumulator type.
    type Gather: Send + SizeEstimate;

    /// Human-readable step name (used in stats and error reports).
    fn name(&self) -> &str;

    /// Which adjacent edges `u` gathers over. Defaults to out-edges, the
    /// direction used throughout the paper.
    fn gather_direction(&self) -> Direction {
        Direction::Out
    }

    /// Produces an accumulator contribution for one edge.
    ///
    /// `u` is the accumulating vertex, `v` the neighbor along the gathered
    /// edge ((u, v) for [`Direction::Out`], (v, u) for [`Direction::In`]).
    /// Returning `None` contributes nothing (and transfers nothing).
    fn gather(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        u_data: &Self::Vertex,
        v: VertexId,
        v_data: &Self::Vertex,
        work: &mut WorkTally,
    ) -> Option<Self::Gather>;

    /// Folds two accumulators. Must be commutative and associative.
    fn sum(&self, a: Self::Gather, b: Self::Gather, work: &mut WorkTally) -> Self::Gather;

    /// Consumes the merged accumulator and updates the vertex state.
    fn apply(
        &self,
        ctx: &GatherCtx<'_>,
        u: VertexId,
        data: &mut Self::Vertex,
        acc: Option<Self::Gather>,
        work: &mut WorkTally,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_and_merges() {
        let mut a = WorkTally::new();
        a.add(3);
        a.add(4);
        let mut b = WorkTally::new();
        b.add(10);
        a.merge(&b);
        assert_eq!(a.ops(), 17);
        assert_eq!(WorkTally::default().ops(), 0);
    }

    #[test]
    fn ctx_exposes_degrees_weights_and_seed() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (0, 2), (1, 0)]);
        let ctx = GatherCtx::new(&g, 99);
        assert_eq!(ctx.out_degree(VertexId::new(0)), 2);
        assert_eq!(ctx.in_degree(VertexId::new(0)), 1);
        assert_eq!(ctx.num_vertices(), 3);
        assert_eq!(
            ctx.edge_weight(VertexId::new(0), VertexId::new(1)),
            Some(1.0)
        );
        assert_eq!(ctx.edge_weight(VertexId::new(2), VertexId::new(0)), None);
        assert_eq!(ctx.seed(), 99);
    }
}
