#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! Supervised link prediction on top of SNAPLE — the extension the paper
//! names as future work (§7: *"One such path involve\[s\] the extension of
//! SNAPLE to supervised link-prediction strategies, which may improve
//! recall while taking advantage of distributed computing."*).
//!
//! The approach follows the classical supervised link-prediction recipe
//! (Lichtenwalter et al., the paper's \[22\]) but keeps SNAPLE's distributed
//! cost profile: all *features* are unsupervised SNAPLE scores, each
//! computable with the same three-step GAS program, so the only additional
//! work is a cheap logistic model over a handful of score columns.
//!
//! 1. [`features`] runs a panel of SNAPLE scoring configurations and joins
//!    their candidate lists into per-pair feature vectors (optionally with
//!    log-degree features).
//! 2. A self-supervised training set is built by holding out a second
//!    batch of edges from the *training* graph: pairs that recover a
//!    held-out edge are positives, all other candidates negatives.
//! 3. [`logistic`] fits an L2-regularized logistic regression with SGD
//!    (hand-rolled — no external ML dependency).
//! 4. The learned weights re-rank the candidate pool; the result is the
//!    same [`snaple_core::Prediction`] type as every other predictor in
//!    the workspace, so the evaluation harness applies unchanged.
//!
//! # Example
//!
//! ```
//! use snaple_supervised::{SupervisedConfig, SupervisedSnaple};
//! use snaple_gas::ClusterSpec;
//! use snaple_graph::gen::datasets;
//!
//! let graph = datasets::GOWALLA.emulate(0.005, 42);
//! let cluster = ClusterSpec::type_ii(4);
//! let model = SupervisedSnaple::new(SupervisedConfig::new())
//!     .train(&graph, &cluster)?;
//! // The trained model is a Predictor like every other backend.
//! use snaple_core::{PredictRequest, Predictor};
//! let prediction = Predictor::predict(&model, &PredictRequest::new(&graph, &cluster))?;
//! assert_eq!(prediction.num_vertices(), graph.num_vertices());
//! # Ok::<(), snaple_core::SnapleError>(())
//! ```

pub mod features;
pub mod logistic;

use std::time::Instant;

use snaple_core::{
    ExecuteRequest, NamedScore, Prediction, Predictor, PrepareRequest, PreparedPredictor,
    SetupStats, SnapleError,
};
use snaple_gas::{ClusterSpec, Deployment};
use snaple_graph::{CsrGraph, GraphStore};

use crate::features::{CandidateTable, FeaturePanel};
use crate::logistic::LogisticRegression;

/// Configuration of the supervised predictor.
#[derive(Clone, Debug)]
pub struct SupervisedConfig {
    /// The unsupervised scoring configurations whose scores become feature
    /// columns.
    pub panel: Vec<NamedScore>,
    /// Include log-degree features of both endpoints.
    pub degree_features: bool,
    /// Final predictions per vertex.
    pub k: usize,
    /// Candidate-pool size gathered per vertex per configuration.
    pub pool: usize,
    /// `klocal` used by the underlying SNAPLE runs.
    pub klocal: Option<usize>,
    /// Edges held out per vertex to generate training labels.
    pub label_removals: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Seed for hold-out construction and SGD shuffling.
    pub seed: u64,
}

impl SupervisedConfig {
    /// Creates the default configuration: a linearSum/counter/PPR/euclSum
    /// panel with degree features.
    pub fn new() -> Self {
        SupervisedConfig {
            panel: vec![
                NamedScore::LinearSum,
                NamedScore::Counter,
                NamedScore::Ppr,
                NamedScore::EuclSum,
            ],
            degree_features: true,
            k: 5,
            pool: 20,
            klocal: Some(20),
            label_removals: 1,
            epochs: 12,
            learning_rate: 0.1,
            l2: 1e-4,
            seed: 0x5afe,
        }
    }

    /// Sets the scoring panel.
    pub fn panel(mut self, panel: Vec<NamedScore>) -> Self {
        self.panel = panel;
        self
    }

    /// Sets the number of final predictions per vertex.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Sets the candidate-pool size per vertex.
    pub fn pool(mut self, pool: usize) -> Self {
        self.pool = pool;
        self
    }

    /// Sets the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SupervisedConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The supervised trainer.
#[derive(Clone, Debug)]
pub struct SupervisedSnaple {
    config: SupervisedConfig,
}

impl SupervisedSnaple {
    /// Creates a trainer.
    pub fn new(config: SupervisedConfig) -> Self {
        SupervisedSnaple { config }
    }

    /// Trains a model on `graph`: holds out `label_removals` edges per
    /// vertex, extracts the feature panel on the reduced graph, labels
    /// candidates by whether they recover a held-out edge, and fits the
    /// logistic model.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying SNAPLE runs and
    /// rejects empty panels.
    pub fn train(
        &self,
        graph: &CsrGraph,
        cluster: &ClusterSpec,
    ) -> Result<TrainedModel, SnapleError> {
        if self.config.panel.is_empty() {
            return Err(SnapleError::InvalidConfig(
                "supervised panel must contain at least one scoring configuration".into(),
            ));
        }
        let holdout = snaple_eval::HoldOut::remove_edges(
            graph,
            self.config.label_removals,
            self.config.seed ^ 0x1abe1,
        );
        let panel = FeaturePanel::new(&self.config);
        let table = panel.extract(&holdout.train, cluster)?;

        let mut xs: Vec<Vec<f64>> = Vec::new();
        let mut ys: Vec<f64> = Vec::new();
        for (u, z, features) in table.rows() {
            xs.push(features.to_vec());
            ys.push(if holdout.is_removed(u, z) { 1.0 } else { 0.0 });
        }
        let mut model = LogisticRegression::new(table.num_features());
        model.fit(
            &xs,
            &ys,
            self.config.epochs,
            self.config.learning_rate,
            self.config.l2,
            self.config.seed,
        );
        Ok(TrainedModel {
            config: self.config.clone(),
            model,
            feature_names: table.feature_names().to_vec(),
        })
    }
}

/// A trained supervised ranker.
#[derive(Clone, Debug)]
pub struct TrainedModel {
    config: SupervisedConfig,
    model: LogisticRegression,
    feature_names: Vec<String>,
}

impl TrainedModel {
    /// Learned weight per feature column (diagnostic).
    pub fn weights(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.feature_names
            .iter()
            .map(String::as_str)
            .zip(self.model.weights().iter().copied())
    }

    /// The feature columns the model consumes, in weight order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    fn rank(&self, graph: &dyn GraphStore, table: CandidateTable) -> Prediction {
        use snaple_core::topk::top_k_by_score;
        let mut per_vertex: Vec<Vec<(snaple_graph::VertexId, f32)>> =
            vec![Vec::new(); graph.num_vertices()];
        for (u, z, features) in table.rows() {
            let p = self.model.predict_proba(features);
            per_vertex[u.index()].push((z, p as f32));
        }
        let predictions: Vec<_> = per_vertex
            .into_iter()
            .map(|cands| top_k_by_score(cands, self.config.k))
            .collect();
        Prediction::from_parts(predictions, table.into_stats())
    }
}

/// A trained supervised ranker with its feature-panel plan prepared: one
/// shared [`Deployment`] serves every panel column of every request.
///
/// Owns a copy of the trained model (weights and panel config), so epoch
/// forks ([`PreparedPredictor::fork_with_delta`]) detach into fully owned
/// snapshots.
pub struct PreparedModel<'a> {
    model: TrainedModel,
    deployment: Deployment<'a>,
    setup: SetupStats,
}

impl PreparedPredictor for PreparedModel<'_> {
    fn execute(&self, req: &ExecuteRequest<'_>) -> Result<Prediction, SnapleError> {
        let graph = self.deployment.graph();
        req.validate_for(graph)?;
        if req.attributes().is_some() {
            return Err(SnapleError::InvalidConfig(
                "the supervised panel scores structure only and accepts no content attributes"
                    .to_owned(),
            ));
        }
        let panel = FeaturePanel::new(&self.model.config);
        let table = panel.extract_on(&self.deployment, req.queries(), req.seed())?;
        Ok(self.model.rank(graph, table))
    }

    /// Refreshes the **single shared deployment** once per delta — every
    /// feature column of every subsequent request runs on the mutated
    /// graph without any per-column repartitioning.
    fn apply_delta(
        &mut self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<snaple_gas::DeltaStats, SnapleError> {
        Ok(self.deployment.apply_delta(delta)?)
    }

    fn fork_with_delta(
        &self,
        delta: &snaple_graph::GraphDelta,
    ) -> Result<(Box<dyn PreparedPredictor>, snaple_gas::DeltaStats), SnapleError> {
        let mut deployment = self.deployment.detach();
        let applied = deployment.apply_delta(delta)?;
        let fork = PreparedModel {
            model: self.model.clone(),
            deployment,
            setup: self.setup.clone(),
        };
        Ok((Box::new(fork), applied))
    }

    fn setup(&self) -> &SetupStats {
        &self.setup
    }
}

impl Predictor for TrainedModel {
    /// Prepares the feature-panel plan: one shared deployment (partition +
    /// cost model) that every panel column of every subsequent
    /// [`ExecuteRequest`] runs on — where the one-shot path used to
    /// rebuild the partition once per column per call.
    ///
    /// The returned [`PreparedModel`] extracts the panel (targeted when
    /// the request carries a [`QuerySet`](snaple_core::QuerySet)) and
    /// ranks each requested vertex's candidate pool by the learned model.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying SNAPLE runs;
    /// [`SnapleError::InvalidConfig`] for empty panels or attached
    /// attributes (the panel's configurations are structural).
    fn prepare<'a>(
        &'a self,
        req: &PrepareRequest<'a>,
    ) -> Result<Box<dyn PreparedPredictor + 'a>, SnapleError> {
        let started = Instant::now();
        let panel = FeaturePanel::new(&self.config);
        let deployment = panel.deploy(req.graph(), req.cluster())?;
        let setup = SetupStats {
            prepare_wall_seconds: started.elapsed().as_secs_f64(),
            partition_build_seconds: deployment.partition_build_seconds(),
            replication_factor: deployment.replication_factor(),
        };
        Ok(Box::new(PreparedModel {
            model: self.clone(),
            deployment,
            setup,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_core::{PredictRequest, Snaple, SnapleConfig};
    use snaple_eval::{metrics, HoldOut};
    use snaple_graph::gen::datasets;

    fn cluster() -> ClusterSpec {
        ClusterSpec::type_ii(4)
    }

    #[test]
    fn rejects_empty_panels() {
        let graph = datasets::GOWALLA.emulate(0.002, 1);
        let err = SupervisedSnaple::new(SupervisedConfig::new().panel(vec![]))
            .train(&graph, &cluster())
            .unwrap_err();
        assert!(matches!(err, SnapleError::InvalidConfig(_)));
    }

    #[test]
    fn training_produces_finite_interpretable_weights() {
        let graph = datasets::GOWALLA.emulate(0.005, 3);
        let model = SupervisedSnaple::new(SupervisedConfig::new().seed(3))
            .train(&graph, &cluster())
            .unwrap();
        let weights: Vec<(String, f64)> = model.weights().map(|(n, w)| (n.to_owned(), w)).collect();
        assert!(weights.len() >= 4, "{weights:?}");
        assert!(weights.iter().all(|(_, w)| w.is_finite()));
        // At least one score column must carry signal.
        assert!(
            weights.iter().any(|(_, w)| w.abs() > 1e-3),
            "degenerate model: {weights:?}"
        );
    }

    #[test]
    fn supervised_matches_or_beats_its_best_feature() {
        let graph = datasets::GOWALLA.emulate(0.01, 7);
        let eval = HoldOut::remove_edges(&graph, 1, 99);
        let cl = cluster();

        let model = SupervisedSnaple::new(SupervisedConfig::new().seed(7))
            .train(&eval.train, &cl)
            .unwrap();
        let supervised =
            Predictor::predict(&model, &PredictRequest::new(&eval.train, &cl)).unwrap();
        let supervised_recall = metrics::recall(&supervised, &eval);

        let mut best_single: f64 = 0.0;
        for spec in [NamedScore::LinearSum, NamedScore::Counter, NamedScore::Ppr] {
            let p = Predictor::predict(
                &Snaple::new(SnapleConfig::new(spec).klocal(Some(20))),
                &PredictRequest::new(&eval.train, &cl),
            )
            .unwrap();
            best_single = best_single.max(metrics::recall(&p, &eval));
        }
        // Paper §7 hopes supervision "may improve recall"; require at
        // least near-parity with the best unsupervised configuration.
        assert!(
            supervised_recall >= 0.9 * best_single,
            "supervised {supervised_recall} vs best single {best_single}"
        );
    }

    #[test]
    fn prediction_lists_are_well_formed() {
        let graph = datasets::GOWALLA.emulate(0.004, 5);
        let cl = cluster();
        let model = SupervisedSnaple::new(SupervisedConfig::new().k(3).seed(5))
            .train(&graph, &cl)
            .unwrap();
        let p = Predictor::predict(&model, &PredictRequest::new(&graph, &cl)).unwrap();
        for (u, preds) in p.iter() {
            assert!(preds.len() <= 3);
            for &(z, s) in preds {
                assert_ne!(z, u);
                assert!((0.0..=1.0).contains(&s), "probability out of range: {s}");
            }
            assert!(preds.windows(2).all(|w| w[0].1 >= w[1].1));
        }
    }
}
