//! Candidate feature extraction from a panel of SNAPLE configurations.

use std::collections::HashMap;

use snaple_core::{ExecuteRequest, PlanConfig, QuerySet, ScorePlan, ScoreSpec, SnapleError};
use snaple_gas::{ClusterSpec, Deployment, RunStats};
use snaple_graph::{GraphStore, VertexId};

use crate::SupervisedConfig;

/// Runs each panel configuration and joins candidate scores into feature
/// rows.
#[derive(Clone, Debug)]
pub struct FeaturePanel<'c> {
    config: &'c SupervisedConfig,
}

impl<'c> FeaturePanel<'c> {
    /// Creates a panel extractor.
    pub fn new(config: &'c SupervisedConfig) -> Self {
        FeaturePanel { config }
    }

    /// Extracts the candidate table for every vertex of `graph`.
    ///
    /// Candidates are the union of each configuration's top-`pool`
    /// predictions; a configuration that did not propose a candidate
    /// contributes a zero in its column.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying SNAPLE runs.
    pub fn extract(
        &self,
        graph: &dyn GraphStore,
        cluster: &ClusterSpec,
    ) -> Result<CandidateTable, SnapleError> {
        self.extract_for(graph, cluster, None)
    }

    /// The fused [`ScorePlan`] evaluating every panel column in **one**
    /// masked sweep — all columns share one partition strategy, seed and
    /// sampling configuration, which is what lets the whole panel ride a
    /// single traversal of a single shared [`Deployment`].
    ///
    /// # Errors
    ///
    /// [`SnapleError::InvalidConfig`] for empty panels.
    pub fn plan(&self) -> Result<ScorePlan, SnapleError> {
        let cfg = self.config;
        if cfg.panel.is_empty() {
            return Err(SnapleError::InvalidConfig("empty panel".into()));
        }
        let specs: Vec<ScoreSpec> = cfg
            .panel
            .iter()
            .map(|&named| ScoreSpec::named(named))
            .collect();
        ScorePlan::with_config(
            specs,
            PlanConfig::default()
                .k(cfg.pool)
                .klocal(cfg.klocal)
                .seed(cfg.seed),
        )
    }

    /// Builds the deployment every panel column executes on.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] for unusable cluster shapes.
    pub fn deploy<'g>(
        &self,
        graph: &'g dyn GraphStore,
        cluster: &ClusterSpec,
    ) -> Result<Deployment<'g>, SnapleError> {
        let plan = self.plan()?;
        let config = plan.config();
        Ok(Deployment::new(
            graph,
            cluster.clone(),
            config.partition,
            config.seed,
        )?)
    }

    /// Like [`FeaturePanel::extract`], optionally restricted to a query
    /// subset: every panel configuration runs targeted, so only the
    /// queried vertices get candidate rows — the serving path of the
    /// supervised re-ranker.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying SNAPLE runs.
    pub fn extract_for(
        &self,
        graph: &dyn GraphStore,
        cluster: &ClusterSpec,
        queries: Option<&QuerySet>,
    ) -> Result<CandidateTable, SnapleError> {
        let deployment = self.deploy(graph, cluster)?;
        let mut table = self.extract_on(&deployment, queries, None)?;
        // This one-shot path paid for the partition build (once for the
        // whole panel, not once per column).
        table.stats.partition_build_seconds = deployment.partition_build_seconds();
        Ok(table)
    }

    /// Runs the whole panel on a prepared, shared [`Deployment`] — the
    /// serving path: one O(edges) partition build covers every feature
    /// column of every request, and since the [`ScorePlan`] redesign one
    /// **fused sweep** computes all score columns at once instead of one
    /// deployment run per column (the columns are bit-identical to the
    /// per-column runs the panel used to pay for).
    ///
    /// `seed` overrides the randomized parts of the fused run (see
    /// [`ExecuteRequest::with_seed`]); `None` keeps the panel seed.
    ///
    /// # Errors
    ///
    /// Propagates [`SnapleError`] from the underlying fused run.
    pub fn extract_on(
        &self,
        deployment: &Deployment<'_>,
        queries: Option<&QuerySet>,
        seed: Option<u64>,
    ) -> Result<CandidateTable, SnapleError> {
        let cfg = self.config;
        let graph = deployment.graph();
        let mut names: Vec<String> = cfg.panel.iter().map(|s| s.name().to_owned()).collect();
        if cfg.degree_features {
            names.push("log-out-degree(u)".into());
            names.push("log-in-degree(z)".into());
        }
        let num_features = names.len();

        // candidate -> dense feature row, per vertex.
        let mut rows: Vec<HashMap<VertexId, Vec<f64>>> = vec![HashMap::new(); graph.num_vertices()];
        let plan = self.plan()?;
        let mut exec = ExecuteRequest::new();
        if let Some(q) = queries {
            exec = exec.with_queries(q);
        }
        if let Some(s) = seed {
            exec = exec.with_seed(s);
        }
        let matrix = plan.execute_on(deployment, &exec)?;
        for col in 0..cfg.panel.len() {
            for (u, preds) in matrix.column_rows(col) {
                for &(z, score) in preds {
                    rows[u.index()]
                        .entry(z)
                        .or_insert_with(|| vec![0.0; num_features])[col] = score as f64;
                }
            }
        }
        let stats = matrix.stats;
        if cfg.degree_features {
            for (ui, candidates) in rows.iter_mut().enumerate() {
                let u = VertexId::new(ui as u32);
                let du = (graph.out_degree(u) as f64 + 1.0).ln();
                for (z, row) in candidates.iter_mut() {
                    row[num_features - 2] = du;
                    row[num_features - 1] = (graph.in_degree(*z) as f64 + 1.0).ln();
                }
            }
        }
        Ok(CandidateTable { names, rows, stats })
    }
}

/// The joined candidate/feature table produced by [`FeaturePanel`].
#[derive(Clone, Debug)]
pub struct CandidateTable {
    names: Vec<String>,
    rows: Vec<HashMap<VertexId, Vec<f64>>>,
    stats: RunStats,
}

impl CandidateTable {
    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.names.len()
    }

    /// Column names, in row order.
    pub fn feature_names(&self) -> &[String] {
        &self.names
    }

    /// Total candidate rows across all vertices.
    pub fn num_rows(&self) -> usize {
        self.rows.iter().map(HashMap::len).sum()
    }

    /// Iterates `(source, candidate, features)` rows in deterministic
    /// (source, candidate) order.
    pub fn rows(&self) -> impl Iterator<Item = (VertexId, VertexId, &[f64])> + '_ {
        self.rows.iter().enumerate().flat_map(|(ui, cands)| {
            let u = VertexId::new(ui as u32);
            let mut sorted: Vec<(&VertexId, &Vec<f64>)> = cands.iter().collect();
            sorted.sort_by_key(|(z, _)| **z);
            sorted
                .into_iter()
                .map(move |(z, f)| (u, *z, f.as_slice()))
                .collect::<Vec<_>>()
        })
    }

    /// Accumulated engine statistics of the panel runs.
    pub fn into_stats(self) -> RunStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snaple_graph::gen::datasets;

    fn extract_small() -> CandidateTable {
        let graph = datasets::GOWALLA.emulate(0.002, 9);
        let config = SupervisedConfig::new().seed(9);
        FeaturePanel::new(&config)
            .extract(&graph, &ClusterSpec::type_ii(2))
            .unwrap()
    }

    #[test]
    fn table_shape_matches_config() {
        let t = extract_small();
        // 4 panel scores + 2 degree features.
        assert_eq!(t.num_features(), 6);
        assert_eq!(t.feature_names().len(), 6);
        assert!(t.num_rows() > 0);
    }

    #[test]
    fn rows_are_deterministically_ordered_and_dense() {
        let t = extract_small();
        let rows: Vec<(VertexId, VertexId)> = t.rows().map(|(u, z, _)| (u, z)).collect();
        let mut sorted = rows.clone();
        sorted.sort();
        assert_eq!(rows, sorted, "row order must be (source, candidate)");
        for (_, _, f) in t.rows() {
            assert_eq!(f.len(), 6);
            assert!(f.iter().all(|x| x.is_finite()));
        }
    }

    #[test]
    fn candidate_union_is_at_least_each_column() {
        let graph = datasets::GOWALLA.emulate(0.002, 9);
        let one = SupervisedConfig::new()
            .panel(vec![snaple_core::NamedScore::Counter])
            .seed(9);
        let narrow = FeaturePanel::new(&one)
            .extract(&graph, &ClusterSpec::type_ii(2))
            .unwrap();
        let wide = extract_small();
        assert!(wide.num_rows() >= narrow.num_rows());
    }
}
