//! Hand-rolled L2-regularized logistic regression trained with SGD.
//!
//! Deliberately minimal: the supervised extension only needs a linear
//! model over a handful of SNAPLE score columns, so pulling an ML
//! framework would be all cost and no benefit. Features are standardized
//! internally (mean/variance learned from the training set) so callers can
//! feed raw scores of wildly different magnitudes (path counts vs Jaccard
//! fractions).

use snaple_graph::hash::hash1;

/// A binary logistic-regression model.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl LogisticRegression {
    /// Creates an untrained model for `num_features` inputs.
    pub fn new(num_features: usize) -> Self {
        LogisticRegression {
            weights: vec![0.0; num_features],
            bias: 0.0,
            mean: vec![0.0; num_features],
            std: vec![1.0; num_features],
        }
    }

    /// Learned weights (in standardized feature space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Fits with plain SGD over shuffled samples.
    ///
    /// # Panics
    ///
    /// Panics if `xs` and `ys` have different lengths or a row has the
    /// wrong width.
    pub fn fit(
        &mut self,
        xs: &[Vec<f64>],
        ys: &[f64],
        epochs: usize,
        learning_rate: f64,
        l2: f64,
        seed: u64,
    ) {
        assert_eq!(xs.len(), ys.len(), "features and labels must align");
        if xs.is_empty() {
            return;
        }
        let d = self.weights.len();
        for (i, row) in xs.iter().enumerate() {
            assert_eq!(row.len(), d, "row {i} has width {} != {d}", row.len());
        }
        self.learn_standardization(xs);
        let n = xs.len();

        // Deterministic shuffling: order by a per-(epoch, index) hash.
        let mut order: Vec<usize> = (0..n).collect();
        for epoch in 0..epochs {
            order.sort_by_key(|&i| hash1(seed ^ (epoch as u64), i as u64));
            let lr = learning_rate / (1.0 + epoch as f64 * 0.5);
            for &i in &order {
                let z = self.standardized_logit(&xs[i]);
                let p = sigmoid(z);
                let err = p - ys[i];
                for (j, w) in self.weights.iter_mut().enumerate() {
                    let xij = (xs[i][j] - self.mean[j]) / self.std[j];
                    *w -= lr * (err * xij + l2 * *w);
                }
                self.bias -= lr * err;
            }
        }
    }

    fn learn_standardization(&mut self, xs: &[Vec<f64>]) {
        let d = self.weights.len();
        let n = xs.len() as f64;
        let mut mean = vec![0.0; d];
        for row in xs {
            for (m, x) in mean.iter_mut().zip(row) {
                *m += x;
            }
        }
        for m in mean.iter_mut() {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for row in xs {
            for ((v, x), m) in var.iter_mut().zip(row).zip(&mean) {
                *v += (x - m) * (x - m);
            }
        }
        self.std = var.into_iter().map(|v| (v / n).sqrt().max(1e-9)).collect();
        self.mean = mean;
    }

    fn standardized_logit(&self, x: &[f64]) -> f64 {
        let mut z = self.bias;
        for ((w, x), (m, s)) in self
            .weights
            .iter()
            .zip(x)
            .zip(self.mean.iter().zip(&self.std))
        {
            z += w * (x - m) / s;
        }
        z
    }

    /// Probability that `x` is a positive example.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong width.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature width mismatch");
        sigmoid(self.standardized_logit(x))
    }
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn separable_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Positive iff x0 + x1 > 1.0; x2 is pure noise.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f64 / 17.0;
            let b = ((i * 7) % 13) as f64 / 13.0;
            let noise = ((i * 31) % 11) as f64 / 11.0;
            xs.push(vec![a, b, noise]);
            ys.push(if a + b > 1.0 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_separable_problem() {
        let (xs, ys) = separable_data(600);
        let mut m = LogisticRegression::new(3);
        m.fit(&xs, &ys, 30, 0.5, 1e-5, 7);
        let mut correct = 0;
        for (x, y) in xs.iter().zip(&ys) {
            let p = m.predict_proba(x);
            if (p > 0.5) == (*y > 0.5) {
                correct += 1;
            }
        }
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        // Signal features outweigh the noise feature.
        assert!(m.weights()[0].abs() > 3.0 * m.weights()[2].abs());
        assert!(m.weights()[1].abs() > 3.0 * m.weights()[2].abs());
    }

    #[test]
    fn untrained_model_is_uninformative() {
        let m = LogisticRegression::new(2);
        assert!((m.predict_proba(&[5.0, -3.0]) - 0.5).abs() < 1e-12);
        assert_eq!(m.bias(), 0.0);
    }

    #[test]
    fn fit_on_empty_data_is_a_no_op() {
        let mut m = LogisticRegression::new(2);
        m.fit(&[], &[], 5, 0.1, 0.0, 1);
        assert!((m.predict_proba(&[1.0, 1.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn training_is_deterministic() {
        let (xs, ys) = separable_data(200);
        let mut a = LogisticRegression::new(3);
        let mut b = LogisticRegression::new(3);
        a.fit(&xs, &ys, 10, 0.3, 1e-4, 9);
        b.fit(&xs, &ys, 10, 0.3, 1e-4, 9);
        assert_eq!(a.weights(), b.weights());
        assert_eq!(a.bias(), b.bias());
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_labels_panic() {
        let mut m = LogisticRegression::new(1);
        m.fit(&[vec![1.0]], &[1.0, 0.0], 1, 0.1, 0.0, 1);
    }

    proptest! {
        #[test]
        fn probabilities_stay_in_unit_interval(
            x in proptest::collection::vec(-100.0f64..100.0, 4),
            w in proptest::collection::vec(-10.0f64..10.0, 4),
            bias in -10.0f64..10.0,
        ) {
            let mut m = LogisticRegression::new(4);
            m.weights = w;
            m.bias = bias;
            let p = m.predict_proba(&x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p.is_finite());
        }

        #[test]
        fn sigmoid_is_monotone_and_symmetric(a in -50.0f64..50.0, d in 0.0f64..10.0) {
            prop_assert!(sigmoid(a + d) >= sigmoid(a) - 1e-12);
            prop_assert!((sigmoid(a) + sigmoid(-a) - 1.0).abs() < 1e-9);
        }
    }
}
