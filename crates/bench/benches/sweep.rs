//! Criterion bench: fused N-spec [`ScorePlan`] sweeps vs N independent
//! standalone runs on shared prepared deployments.
//!
//! Knobs (environment):
//! * `SWEEP_BENCH_SCALE` — gowalla emulation scale (default 0.01).
//!
//! With `BENCH_JSON=...` set, per-benchmark medians land in the usual
//! JSON line format for tracking.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snaple_core::{ExecuteRequest, Predictor, PrepareRequest, ScorePlan};
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;

fn scale() -> f64 {
    std::env::var("SWEEP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn bench_fused_vs_independent(c: &mut Criterion) {
    let graph = datasets::GOWALLA.emulate(scale(), 7);
    let cluster = ClusterSpec::type_ii(4);
    let mut group = c.benchmark_group("sweep");
    group.sample_size(10);

    for &n in &[1usize, 2, 4, 8] {
        let table3 = [
            "linearSum",
            "counter",
            "PPR",
            "euclSum",
            "geomSum",
            "linearMean",
            "euclMean",
            "geomMean",
        ];
        let plan = ScorePlan::parse(&table3[..n].join(", ")).expect("plan parses");
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .expect("prepare plan");

        // One fused sweep computing all n columns.
        group.bench_with_input(BenchmarkId::new("fused-plan", n), &n, |bench, _| {
            bench.iter(|| {
                black_box(
                    prepared
                        .execute_matrix(&ExecuteRequest::new())
                        .expect("fused execute"),
                )
            });
        });

        // The naive path: n standalone runs (each on its own prepared
        // deployment, so both sides amortize the partition build).
        let snaples: Vec<_> = (0..n).map(|col| plan.column_snaple(col)).collect();
        let prepared_solos: Vec<_> = snaples
            .iter()
            .map(|snaple| {
                snaple
                    .prepare(&PrepareRequest::new(&graph, &cluster))
                    .expect("prepare standalone")
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("independent-runs", n), &n, |bench, _| {
            bench.iter(|| {
                for prepared in &prepared_solos {
                    black_box(
                        prepared
                            .execute(&ExecuteRequest::new())
                            .expect("standalone execute"),
                    );
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fused_vs_independent);
criterion_main!(benches);
