//! Criterion micro-benchmarks for SNAPLE's hot primitives: raw similarity
//! computation, top-k selection, triple merging, and full GAS steps.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snaple_core::similarity::{intersection_size, intersection_size_scalar, Jaccard, Similarity};
use snaple_core::topk::top_k_by_score;
use snaple_core::{
    NamedScore, NeighborhoodView, PredictRequest, Predictor, QuerySet, Snaple, SnapleConfig,
};
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;
use snaple_graph::{CsrGraph, Relabeling, VertexId};

fn sorted_ids(n: usize, max: u32, rng: &mut StdRng) -> Vec<VertexId> {
    let mut v: Vec<VertexId> = (0..n)
        .map(|_| VertexId::new(rng.gen_range(0..max)))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

fn bench_similarity(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity");
    let mut rng = StdRng::seed_from_u64(1);
    for &len in &[16usize, 64, 200] {
        let a = sorted_ids(len, 10_000, &mut rng);
        let b = sorted_ids(len, 10_000, &mut rng);
        group.bench_with_input(BenchmarkId::new("jaccard", len), &len, |bench, _| {
            let (va, vb) = (
                NeighborhoodView::new(&a, a.len()),
                NeighborhoodView::new(&b, b.len()),
            );
            bench.iter(|| black_box(Jaccard.score(va, vb)));
        });
        group.bench_with_input(BenchmarkId::new("intersection", len), &len, |bench, _| {
            bench.iter(|| black_box(intersection_size(&a, &b)))
        });
    }
    group.finish();
}

/// The galloping dispatch of [`intersection_size`]: a short probe list
/// against an ever-longer sorted neighborhood. Past the dispatch ratio
/// (16×) the galloping path's O(|short|·log|long|) should pull away from
/// the linear merge's O(|short| + |long|); below it the linear merge
/// must stay untouched.
fn bench_intersection_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection-skew");
    let mut rng = StdRng::seed_from_u64(3);
    let short = sorted_ids(16, 4_000_000, &mut rng);
    for &long_len in &[128usize, 2_048, 32_768, 524_288] {
        let long = sorted_ids(long_len, 4_000_000, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("short16", long.len()),
            &long_len,
            |bench, _| bench.iter(|| black_box(intersection_size(&short, &long))),
        );
    }
    // Equal-length lists never gallop: here the dispatch takes the
    // block-compare path (under `--features simd`) and the interesting
    // comparison is dispatch vs the always-merge scalar entry point.
    for &len in &[64usize, 256, 1_024, 4_096] {
        let a = sorted_ids(len * 2, 4_000_000, &mut rng);
        let b = sorted_ids(len * 2, 4_000_000, &mut rng);
        group.bench_with_input(BenchmarkId::new("equal-dispatch", len), &len, |bench, _| {
            bench.iter(|| black_box(intersection_size(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("equal-scalar", len), &len, |bench, _| {
            bench.iter(|| black_box(intersection_size_scalar(&a, &b)))
        });
    }
    group.finish();
}

/// Stripe-vs-per-pair kernel scoring: one gatherer's neighborhood against
/// a contiguous run of 64 neighbor views, the exact shape
/// `PlanSimilarityStep::gather_run` hands to [`Similarity::score_stripe`].
/// Both sides go through `&dyn Similarity`, so the delta is the batched
/// entry point itself (one virtual dispatch per stripe, `Γ̂(u)` hot).
fn bench_stripe(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel-stripe");
    let mut rng = StdRng::seed_from_u64(5);
    let u_list = sorted_ids(160, 1_000_000, &mut rng);
    let neighbor_lists: Vec<Vec<VertexId>> = (0..64)
        .map(|_| sorted_ids(160, 1_000_000, &mut rng))
        .collect();
    let views: Vec<NeighborhoodView<'_>> = neighbor_lists
        .iter()
        .map(|l| NeighborhoodView::new(l, l.len()))
        .collect();
    let u_view = NeighborhoodView::new(&u_list, u_list.len());
    let kernel: &dyn Similarity = &Jaccard;
    let mut out = vec![0f32; views.len()];
    group.bench_with_input(
        BenchmarkId::new("jaccard64", "per-pair"),
        &(),
        |bench, ()| {
            bench.iter(|| {
                for (v, slot) in views.iter().zip(out.iter_mut()) {
                    *slot = kernel.score(u_view, *v);
                }
                black_box(&mut out);
            });
        },
    );
    group.bench_with_input(BenchmarkId::new("jaccard64", "stripe"), &(), |bench, ()| {
        bench.iter(|| {
            kernel.score_stripe(u_view, &views, &mut out);
            black_box(&mut out);
        });
    });
    group.finish();
}

/// Cache locality of degree-ordered relabeling: the same
/// common-neighbor gather sweep over the original vs the hub-first
/// relabeled Orkut emulation, plus the one-off cost of building and
/// applying the relabeling itself.
fn bench_relabel(c: &mut Criterion) {
    let mut group = c.benchmark_group("relabel");
    group.sample_size(10);
    let graph = datasets::ORKUT.emulate(0.001, 7);
    let relabeled = Relabeling::degree_order(&graph).apply(&graph);

    fn gather_sweep(g: &CsrGraph) -> u64 {
        let mut total = 0u64;
        for u in g.vertices() {
            let gu = g.out_neighbors(u);
            for &v in gu {
                total += intersection_size(gu, g.out_neighbors(v)) as u64;
            }
        }
        total
    }

    group.bench_with_input(
        BenchmarkId::new("gather-sweep", "original"),
        &(),
        |bench, ()| bench.iter(|| black_box(gather_sweep(&graph))),
    );
    group.bench_with_input(
        BenchmarkId::new("gather-sweep", "degree-relabeled"),
        &(),
        |bench, ()| bench.iter(|| black_box(gather_sweep(&relabeled))),
    );
    group.bench_with_input(
        BenchmarkId::new("build-and-apply", "degree-order"),
        &(),
        |bench, ()| bench.iter(|| black_box(Relabeling::degree_order(&graph).apply(&graph))),
    );
    group.finish();
}

fn bench_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk");
    let mut rng = StdRng::seed_from_u64(2);
    for &n in &[100usize, 1_000, 10_000] {
        let items: Vec<(VertexId, f32)> = (0..n)
            .map(|i| (VertexId::new(i as u32), rng.gen::<f32>()))
            .collect();
        group.bench_with_input(BenchmarkId::new("top5", n), &n, |bench, _| {
            bench.iter(|| black_box(top_k_by_score(items.clone(), 5)));
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict");
    group.sample_size(10);
    let graph = datasets::GOWALLA.emulate(0.01, 7);
    let cluster = ClusterSpec::type_ii(4);
    for &klocal in &[5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("linearSum-gowalla-1pct", klocal),
            &klocal,
            |bench, &kl| {
                bench.iter(|| {
                    let snaple =
                        Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(kl)));
                    let req = PredictRequest::new(&graph, &cluster);
                    black_box(Predictor::predict(&snaple, &req).unwrap())
                });
            },
        );
    }
    group.finish();
}

/// All-vertices vs. targeted (1% query subset) prediction on the emulated
/// GOWALLA dataset — the serving speedup the `QuerySet` API exists for.
/// Tracked in `BENCH_*.json` so regressions in the masked path show up.
fn bench_targeted(c: &mut Criterion) {
    let mut group = c.benchmark_group("targeted");
    group.sample_size(10);
    let graph = datasets::GOWALLA.emulate(0.01, 7);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(SnapleConfig::new(NamedScore::LinearSum).klocal(Some(20)));
    let one_percent = QuerySet::sample(graph.num_vertices(), graph.num_vertices() / 100, 7);

    group.bench_with_input(
        BenchmarkId::new("linearSum-gowalla-1pct", "all-vertices"),
        &(),
        |bench, ()| {
            bench.iter(|| {
                let req = PredictRequest::new(&graph, &cluster);
                black_box(Predictor::predict(&snaple, &req).unwrap())
            });
        },
    );
    group.bench_with_input(
        BenchmarkId::new("linearSum-gowalla-1pct", "query-subset-1pct"),
        &(),
        |bench, ()| {
            bench.iter(|| {
                let req = PredictRequest::new(&graph, &cluster).with_queries(&one_percent);
                black_box(Predictor::predict(&snaple, &req).unwrap())
            });
        },
    );
    group.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_intersection_skew,
    bench_stripe,
    bench_relabel,
    bench_topk,
    bench_end_to_end,
    bench_targeted
);
criterion_main!(benches);
