//! Serve-stream throughput: repeated one-shot `predict` vs the batching
//! [`Server`] on a stream of small query-set requests.
//!
//! This is the benchmark behind the prepare-once/execute-many claim: a
//! stream of N requests, each asking for ~1% of the vertices of an
//! emulated GOWALLA subset, runs through
//!
//! 1. the **one-shot** path — a fresh `Predictor::predict` per request,
//!    which rebuilds the O(edges) vertex-cut partition every time, and
//! 2. the **server** path — one `prepare`, then batches of requests
//!    coalesced into shared masked supersteps.
//!
//! Both paths are verified to produce bit-identical rows for every
//! request before any number is reported. Results are printed and, when
//! the `BENCH_JSON` environment variable names a file, appended as JSON
//! lines (totals, per-request latency, and the end-to-end speedup).
//!
//! Environment knobs (for CI smoke runs): `SERVE_BENCH_REQUESTS`
//! (default 100), `SERVE_BENCH_BATCH` (default 16).

use std::time::Instant;

use snaple_bench::append_bench_json;
use snaple_core::serve::Server;
use snaple_core::{NamedScore, PredictRequest, Predictor, QuerySet, Snaple, SnapleConfig};
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let num_requests = env_usize("SERVE_BENCH_REQUESTS", 100);
    let batch = env_usize("SERVE_BENCH_BATCH", 16).max(1);

    let graph = datasets::GOWALLA.emulate(0.01, 7);
    let cluster = ClusterSpec::type_ii(4);
    let snaple = Snaple::new(
        SnapleConfig::new(NamedScore::LinearSum)
            .k(5)
            .klocal(Some(20)),
    );
    let per_request = (graph.num_vertices() / 100).max(1);
    let requests: Vec<QuerySet> = (0..num_requests)
        .map(|i| QuerySet::sample(graph.num_vertices(), per_request, 1_000 + i as u64))
        .collect();
    println!(
        "serve-throughput: {} requests x {} queries (1%) on gowalla@1% \
         ({} vertices, {} edges), batch {batch}",
        requests.len(),
        per_request,
        graph.num_vertices(),
        graph.num_edges(),
    );

    // --- Path 1: one-shot predict per request. ---------------------------
    let started = Instant::now();
    let one_shot: Vec<_> = requests
        .iter()
        .map(|q| {
            Predictor::predict(
                &snaple,
                &PredictRequest::new(&graph, &cluster).with_queries(q),
            )
            .expect("one-shot predict")
        })
        .collect();
    let one_shot_seconds = started.elapsed().as_secs_f64();

    // --- Path 2: prepare once, serve coalesced batches. ------------------
    let started = Instant::now();
    let mut server = Server::new(&snaple, &graph, &cluster).expect("prepare");
    let mut served: Vec<_> = Vec::with_capacity(requests.len());
    for chunk in requests.chunks(batch) {
        served.extend(server.serve_batch(chunk).expect("serve batch"));
    }
    let server_seconds = started.elapsed().as_secs_f64();

    // --- Verify: every served row is bit-identical to its one-shot twin. -
    for ((request, a), b) in requests.iter().zip(&one_shot).zip(&served) {
        for q in request.iter() {
            assert_eq!(a.for_vertex(q), b.for_vertex(q), "row {q} diverged");
        }
    }

    let n = requests.len().max(1) as f64;
    let speedup = one_shot_seconds / server_seconds.max(1e-12);
    println!(
        "one-shot: {one_shot_seconds:.3} s total, {:.2} ms/request",
        one_shot_seconds / n * 1e3
    );
    println!(
        "server:   {server_seconds:.3} s total, {:.2} ms/request ({})",
        server_seconds / n * 1e3,
        server.stats().summary()
    );
    println!("speedup:  {speedup:.1}x end-to-end (rows verified bit-identical)");

    append_bench_json(&format!(
        "{{\"name\":\"serve-throughput/one-shot-{num_requests}x{per_request}\",\
         \"total_seconds\":{one_shot_seconds:.6},\"per_request_ms\":{:.4}}}",
        one_shot_seconds / n * 1e3
    ));
    append_bench_json(&format!(
        "{{\"name\":\"serve-throughput/server-{num_requests}x{per_request}-batch{batch}\",\
         \"total_seconds\":{server_seconds:.6},\"per_request_ms\":{:.4}}}",
        server_seconds / n * 1e3
    ));
    append_bench_json(&format!(
        "{{\"name\":\"serve-throughput/speedup\",\"value\":{speedup:.3},\
         \"requests\":{num_requests},\"batch\":{batch}}}"
    ));
    append_bench_json(
        &server
            .stats()
            .to_bench_json("serve-throughput/server-stats"),
    );
}
