//! Streaming-update microbenchmarks: incremental `Deployment::apply_delta`
//! vs a full re-prepare, across delta sizes.
//!
//! `apply-delta/churn-X` measures one *steady-state* incremental cycle: a
//! churn delta applied, then its inverse (re-inserting what was removed,
//! retracting what was added), so the deployment returns to its starting
//! state without any untimed cloning inside the loop — one iteration is
//! therefore **two** applies. `full-reprepare/churn-X` measures what a
//! delta-less system pays instead: rebuilding the mutated graph from its
//! edge list plus a cold partition build. The phase benchmarks
//! (`resolve`, `compact`, `partition-build`, `graph-rebuild`) decompose
//! the two paths.
//!
//! Env knobs: `STREAMING_BENCH_SCALE` multiplies the default graph scale
//! (CI smoke runs use a small value).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use snaple_bench::churn_delta;
use snaple_gas::{ClusterSpec, Deployment, PartitionStrategy, PartitionedGraph};
use snaple_graph::gen::datasets;
use snaple_graph::{CsrGraph, GraphBuilder, GraphDelta};

const SEED: u64 = 42;

fn scale() -> f64 {
    let base = 0.02;
    std::env::var("STREAMING_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .map_or(base, |s| base * s)
}

/// The delta that undoes `delta` against `base` (so apply/undo cycles
/// keep the deployment in a steady state).
fn inverse_delta(base: &CsrGraph, delta: &GraphDelta) -> GraphDelta {
    let overlay = delta.resolve(base);
    let mut inverse = GraphDelta::new();
    for (u, v, _) in overlay.inserted_edges() {
        inverse.remove(u.as_u32(), v.as_u32());
    }
    for (u, v) in overlay.removed_edges() {
        inverse.insert(u.as_u32(), v.as_u32());
    }
    inverse
}

fn bench_streaming(c: &mut Criterion) {
    let graph = datasets::GOWALLA.emulate(scale(), SEED);
    let cluster = ClusterSpec::type_ii(4);
    println!(
        "streaming bench graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let mut group = c.benchmark_group("streaming");
    group.sample_size(15);
    for churn in [0.001, 0.01] {
        let delta = churn_delta(&graph, churn, SEED);
        let inverse = inverse_delta(&graph, &delta);

        // Steady-state incremental cycle: one iteration = 2 applies.
        let mut deployment = Deployment::new(
            &graph,
            cluster.clone(),
            PartitionStrategy::RandomVertexCut,
            SEED,
        )
        .expect("deployment");
        group.bench_with_input(
            BenchmarkId::new("apply-delta-x2", format!("churn-{churn}")),
            &churn,
            |b, _| {
                b.iter(|| {
                    deployment.apply_delta(&delta).expect("apply");
                    deployment.apply_delta(&inverse).expect("undo");
                })
            },
        );

        // What the delta-less path pays per update batch.
        let mutated = graph.compact(&delta);
        let mutated_edges: Vec<(u32, u32)> = mutated
            .edges()
            .map(|(u, v)| (u.as_u32(), v.as_u32()))
            .collect();
        group.bench_with_input(
            BenchmarkId::new("full-reprepare", format!("churn-{churn}")),
            &churn,
            |b, _| {
                b.iter(|| {
                    let mut builder = GraphBuilder::with_capacity(mutated_edges.len());
                    builder.reserve_vertices(graph.num_vertices());
                    for &(u, v) in &mutated_edges {
                        builder.add_edge(u, v);
                    }
                    let rebuilt = builder.build();
                    let deployment = Deployment::new(
                        &rebuilt,
                        cluster.clone(),
                        PartitionStrategy::RandomVertexCut,
                        SEED,
                    )
                    .expect("rebuild");
                    deployment.replication_factor()
                })
            },
        );

        // Phase decomposition of the incremental path...
        group.bench_with_input(
            BenchmarkId::new("phase-resolve", format!("churn-{churn}")),
            &churn,
            |b, _| b.iter(|| delta.resolve(&graph)),
        );
        group.bench_with_input(
            BenchmarkId::new("phase-compact", format!("churn-{churn}")),
            &churn,
            |b, _| b.iter(|| graph.compact(&delta)),
        );
        // ...and of the cold path.
        group.bench_with_input(
            BenchmarkId::new("phase-partition-build", format!("churn-{churn}")),
            &churn,
            |b, _| {
                b.iter(|| {
                    PartitionedGraph::build(&mutated, 4, PartitionStrategy::RandomVertexCut, SEED)
                        .expect("partition")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("phase-graph-rebuild", format!("churn-{churn}")),
            &churn,
            |b, _| {
                b.iter(|| {
                    let mut builder = GraphBuilder::with_capacity(mutated_edges.len());
                    builder.reserve_vertices(graph.num_vertices());
                    for &(u, v) in &mutated_edges {
                        builder.add_edge(u, v);
                    }
                    builder.build()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
