//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! partitioner choice (replication factor → traffic) and neighbor-selection
//! policy (Γmax vs Γmin vs Γrnd work profiles).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use snaple_core::{NamedScore, PredictRequest, Predictor, SelectionPolicy, Snaple, SnapleConfig};
use snaple_gas::{ClusterSpec, PartitionStrategy, PartitionedGraph};
use snaple_graph::gen::datasets;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    let graph = datasets::LIVEJOURNAL.emulate(0.002, 3);
    for strategy in PartitionStrategy::all() {
        group.bench_with_input(
            BenchmarkId::new("build-16-nodes", strategy.name()),
            &strategy,
            |bench, &s| {
                bench.iter(|| black_box(PartitionedGraph::build(&graph, 16, s, 1).unwrap()));
            },
        );
    }
    group.finish();
}

fn bench_selection_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("selection-policy");
    group.sample_size(10);
    let graph = datasets::LIVEJOURNAL.emulate(0.001, 3);
    let cluster = ClusterSpec::type_i(8);
    for policy in SelectionPolicy::all() {
        group.bench_with_input(
            BenchmarkId::new("predict-klocal10", policy.name()),
            &policy,
            |bench, &p| {
                bench.iter(|| {
                    let snaple = Snaple::new(
                        SnapleConfig::new(NamedScore::LinearSum)
                            .klocal(Some(10))
                            .selection(p),
                    );
                    let req = PredictRequest::new(&graph, &cluster);
                    black_box(Predictor::predict(&snaple, &req).unwrap())
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners, bench_selection_policies);
criterion_main!(benches);
