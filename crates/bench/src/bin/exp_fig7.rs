//! Reproduces **Figure 7** — the vertex selection mechanism: recall of the
//! `Γmax` / `Γmin` / `Γrnd` neighbor-sampling policies on livejournal for
//! `klocal ∈ {5, 10, 20, 40, 80}` under counter, linearSum and PPR scoring.
//!
//! The paper's claim: selecting the *most similar* neighbors (`Γmax`)
//! dominates for small `klocal` (2× over `Γmin`, +50% over `Γrnd` at
//! `klocal = 5`), and the three converge as `klocal` grows.

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, SelectionPolicy, Snaple, SnapleConfig};
use snaple_eval::{Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-fig7",
        "Figure 7: Γmax vs Γmin vs Γrnd neighbor sampling",
    );
    banner("exp-fig7", "paper Figure 7 (§5.6)", &args);

    let klocals: &[usize] = if args.quick {
        &[5, 20, 80]
    } else {
        &[5, 10, 20, 40, 80]
    };
    let scores = [NamedScore::Counter, NamedScore::LinearSum, NamedScore::Ppr];

    let ds = dataset(&args, "livejournal");
    let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
    let runner = Runner::new(&holdout);
    let cluster = scaled_cluster(ClusterSpec::type_i(32), &ds);

    let mut table = TextTable::new(vec!["score", "klocal", "Γmax", "Γmin", "Γrnd"]);
    for score in scores {
        for &klocal in klocals {
            let mut cells = vec![score.name().to_owned(), klocal.to_string()];
            for policy in SelectionPolicy::all() {
                let config = SnapleConfig::new(score)
                    .klocal(Some(klocal))
                    .selection(policy)
                    .seed(args.seed);
                let m = runner.run(
                    score.name(),
                    &Snaple::new(config),
                    &runner.request(&cluster),
                );
                cells.push(format!("{:.3}", m.recall));
            }
            table.row(cells);
        }
    }
    emit(&args, "fig7", &table);
    println!(
        "expected shape: Γmax >= Γrnd >= Γmin at small klocal, converging as\n\
         klocal grows (paper: Γmax doubles Γmin's recall at klocal = 5)."
    );
}
