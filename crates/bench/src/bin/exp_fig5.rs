//! Reproduces **Figure 5** — scalability: SNAPLE's execution time as a
//! function of graph size (livejournal → orkut → twitter-rv) for
//! `klocal ∈ {40, 80}`, on type-I clusters of 64/128/256 cores and type-II
//! clusters of 80/160 cores. Configurations that do not fit into the
//! (scaled) per-node memory are reported as OOM — the paper's "missing
//! points".

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::table::fmt_seconds;
use snaple_eval::{Outcome, Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-fig5",
        "Figure 5: linear scaling of execution time with graph size",
    );
    banner("exp-fig5", "paper Figure 5 (§5.4)", &args);

    let klocals: &[usize] = if args.quick { &[40] } else { &[40, 80] };
    let type_i_nodes: &[usize] = if args.quick { &[8, 32] } else { &[8, 16, 32] };
    let type_ii_nodes: &[usize] = &[4, 8];

    let mut table = TextTable::new(vec![
        "dataset",
        "edges(M, emu)",
        "cluster",
        "cores",
        "klocal",
        "sim time (s)",
        "recall",
    ]);

    for name in ["livejournal", "orkut", "twitter-rv"] {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        let edges_m = format!("{:.2}", runner.train_graph().num_edges() as f64 / 1e6);

        let mut deployments: Vec<ClusterSpec> = Vec::new();
        deployments.extend(type_i_nodes.iter().map(|&n| ClusterSpec::type_i(n)));
        deployments.extend(type_ii_nodes.iter().map(|&n| ClusterSpec::type_ii(n)));

        for base in deployments {
            let cluster = scaled_cluster(base.clone(), &ds);
            for &klocal in klocals {
                let config = SnapleConfig::new(NamedScore::LinearSum)
                    .klocal(Some(klocal))
                    .seed(args.seed);
                let m = runner.run("linearSum", &Snaple::new(config), &runner.request(&cluster));
                let (time, recall) = match &m.outcome {
                    Outcome::Completed => {
                        (fmt_seconds(m.simulated_seconds), format!("{:.3}", m.recall))
                    }
                    Outcome::OutOfMemory { .. } => ("OOM".into(), "-".into()),
                    Outcome::Failed { detail } => (format!("failed: {detail}"), "-".into()),
                };
                table.row(vec![
                    name.into(),
                    edges_m.clone(),
                    base.name.clone(),
                    cluster.total_cores().to_string(),
                    klocal.to_string(),
                    time,
                    recall,
                ]);
            }
        }
    }
    emit(&args, "fig5", &table);
    println!(
        "series to plot: sim time vs edges, one line per (cluster, cores, klocal);\n\
         the paper's claim is linearity in |E| and a ~70% time increase when\n\
         doubling klocal."
    );
}
