//! Ablation study beyond the paper's figures: sensitivity of recall to
//! the linear combinator's `α` (the paper reports `α = 0.9` "was found to
//! return the best predictions" on its datasets — §5.2) and to the
//! emulator's triad-closure probability (how much 2-hop structure the
//! synthetic datasets carry).

use snaple_bench::{banner, dataset, emit, scaled_cluster, ExpArgs};
use snaple_core::{NamedScore, Snaple, SnapleConfig};
use snaple_eval::{HoldOut, Runner, TextTable};
use snaple_gas::ClusterSpec;

fn main() {
    let args = ExpArgs::parse(
        "exp-ablation",
        "ablations: linear-combinator alpha and emulator triad closure",
    );
    banner(
        "exp-ablation",
        "design-choice ablations (DESIGN.md §8)",
        &args,
    );

    // --- alpha sweep -----------------------------------------------------
    let alphas: &[f32] = if args.quick {
        &[0.1, 0.5, 0.9]
    } else {
        &[0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0]
    };
    let mut alpha_table = TextTable::new(vec!["dataset", "alpha", "recall(linearSum)"]);
    for name in ["gowalla", "livejournal"] {
        let ds = dataset(&args, name);
        let (_graph, holdout) = ds.load_with_holdout(args.seed, 1);
        let runner = Runner::new(&holdout);
        let cluster = scaled_cluster(ClusterSpec::type_ii(4), &ds);
        for &alpha in alphas {
            let config = SnapleConfig::new(NamedScore::LinearSum)
                .klocal(Some(20))
                .alpha(alpha)
                .seed(args.seed);
            let m = runner.run("linearSum", &Snaple::new(config), &runner.request(&cluster));
            alpha_table.row(vec![
                name.into(),
                format!("{alpha:.1}"),
                format!("{:.3}", m.recall),
            ]);
        }
    }
    println!("alpha sensitivity (linear combinator, klocal = 20):");
    emit(&args, "ablation-alpha", &alpha_table);

    // --- triad-closure sweep ----------------------------------------------
    let triads: &[f64] = if args.quick {
        &[0.2, 0.6]
    } else {
        &[0.0, 0.2, 0.4, 0.6, 0.8]
    };
    let mut triad_table = TextTable::new(vec![
        "p_triad",
        "clustering-proxy recall(counter)",
        "recall(linearSum)",
    ]);
    let ds = dataset(&args, "livejournal");
    for &p in triads {
        // Re-emulate livejournal with an overridden closure probability.
        let spec = snaple_graph::gen::datasets::DatasetSpec {
            triad_closure: p,
            ..ds.spec.clone()
        };
        let graph = spec.emulate(ds.scale, args.seed);
        let holdout = HoldOut::remove_edges(&graph, 1, args.seed ^ 0x0ed6e);
        let runner = Runner::new(&holdout);
        let cluster = scaled_cluster(ClusterSpec::type_ii(4), &ds);
        let counter = runner.run(
            "counter",
            &Snaple::new(
                SnapleConfig::new(NamedScore::Counter)
                    .klocal(Some(20))
                    .seed(args.seed),
            ),
            &runner.request(&cluster),
        );
        let linear = runner.run(
            "linearSum",
            &Snaple::new(
                SnapleConfig::new(NamedScore::LinearSum)
                    .klocal(Some(20))
                    .seed(args.seed),
            ),
            &runner.request(&cluster),
        );
        triad_table.row(vec![
            format!("{p:.1}"),
            format!("{:.3}", counter.recall),
            format!("{:.3}", linear.recall),
        ]);
    }
    println!("emulator triad-closure sensitivity (livejournal shape):");
    emit(&args, "ablation-triad", &triad_table);
}
