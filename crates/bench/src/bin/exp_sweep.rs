//! `exp-sweep` — fused multi-score plans vs independent per-config runs.
//!
//! The paper's evaluation sweeps many scoring configurations over the
//! same graph (Table 3's eleven rows, the figures' parameter grids); the
//! supervised extension extracts several score columns per candidate.
//! This experiment measures what the [`ScorePlan`] redesign buys: an
//! N-spec plan compiled to **one** fused superstep sweep versus the
//! naive N independent SNAPLE runs.
//!
//! Three checks per configuration grid:
//!
//! 1. **equivalence** — every fused column must be bit-identical to the
//!    standalone run of its spec (the experiment exits non-zero on any
//!    divergence, which the CI `sweep-smoke` step relies on);
//! 2. **gather ops** — the fused sweep must perform **< 60%** of the
//!    independent runs' combined gather calls (the acceptance bar; a
//!    2-hop plan lands near `1/N`), also enforced by exit code;
//! 3. **wall time** — fused vs independent execution time on shared
//!    prepared deployments, i.e. pure sweep cost with the partition
//!    build already amortized on both sides.
//!
//! Per-plan gather-op counts, wall times and speedups land in
//! `BENCH_JSON` when set.

use std::process::exit;
use std::time::Instant;

use snaple_bench::{append_bench_json, banner, emit, ExpArgs};
use snaple_core::{ExecuteRequest, Predictor, PrepareRequest, ScorePlan};
use snaple_eval::table::fmt_millis;
use snaple_eval::TextTable;
use snaple_gas::ClusterSpec;
use snaple_graph::gen::datasets;

fn main() {
    let args = ExpArgs::parse(
        "exp-sweep",
        "fused N-spec score plans vs N independent per-configuration runs",
    );
    banner(
        "exp-sweep",
        "the ScorePlan fusion (multi-score sweeps share one traversal)",
        &args,
    );

    let scale = if args.quick { 0.004 } else { 0.02 } * args.scale;
    let graph = datasets::GOWALLA.emulate(scale, args.seed);
    let cluster = ClusterSpec::type_ii(4);
    println!(
        "gowalla@{scale:.3}: {} vertices, {} edges, {} cluster\n",
        graph.num_vertices(),
        graph.num_edges(),
        cluster.name
    );

    // The supervised panel (N=4), a Table 3 slice (N=8 full runs only),
    // and a kernel-diverse plan exercising blends and custom aggregators.
    let mut plans: Vec<(&str, String)> = vec![
        ("panel-n4", "linearSum, counter, PPR, euclSum".to_owned()),
        (
            "kernels-n4",
            "jaccard@agg=max, cosine*0.7+common, invdeg@comb=sum, dice@k3".to_owned(),
        ),
    ];
    if !args.quick {
        plans.push((
            "table3-n8",
            "linearSum, euclSum, geomSum, PPR, counter, linearMean, euclMean, geomMean".to_owned(),
        ));
    }

    let mut table = TextTable::new(vec![
        "plan",
        "cols",
        "fused gathers",
        "indep gathers",
        "ratio",
        "fused wall",
        "indep wall",
        "speedup",
        "rows",
    ]);
    let mut failed = false;
    let reps = if args.quick { 2 } else { 3 };

    for (name, scores) in &plans {
        let plan = ScorePlan::parse(scores).expect("plan parses");
        let n = plan.num_columns();
        let prepared = plan
            .prepare_plan(&PrepareRequest::new(&graph, &cluster))
            .expect("prepare plan");

        // --- Fused: one sweep, all columns (best of reps). --------------
        let mut fused_wall = f64::MAX;
        let mut matrix = None;
        for _ in 0..reps {
            let started = Instant::now();
            let m = prepared
                .execute_matrix(&ExecuteRequest::new())
                .expect("fused execute");
            fused_wall = fused_wall.min(started.elapsed().as_secs_f64());
            matrix = Some(m);
        }
        let matrix = matrix.expect("at least one rep");
        let fused_gathers: u64 = matrix.stats.steps.iter().map(|s| s.gather_calls).sum();

        // --- Independent: one standalone run per column, each on its own
        // prepared deployment (sweep cost only, partition amortized). ----
        let mut independent_gathers = 0u64;
        let mut independent_wall = 0f64;
        let mut rows_checked = 0usize;
        for col in 0..n {
            let standalone = plan.column_snaple(col);
            let solo_prepared = standalone
                .prepare(&PrepareRequest::new(&graph, &cluster))
                .expect("prepare standalone");
            let mut solo_wall = f64::MAX;
            let mut solo = None;
            for _ in 0..reps {
                let started = Instant::now();
                let p = solo_prepared
                    .execute(&ExecuteRequest::new())
                    .expect("standalone execute");
                solo_wall = solo_wall.min(started.elapsed().as_secs_f64());
                solo = Some(p);
            }
            let solo = solo.expect("at least one rep");
            independent_wall += solo_wall;
            independent_gathers += solo.stats.steps.iter().map(|s| s.gather_calls).sum::<u64>();
            for (u, fused_rows) in matrix.column_rows(col) {
                if fused_rows != solo.for_vertex(u) {
                    eprintln!(
                        "DIVERGENCE in plan {name}: column {col} ({}) row {u} \
                         differs from its standalone run",
                        matrix.labels()[col]
                    );
                    failed = true;
                }
                rows_checked += 1;
            }
        }

        let ratio = fused_gathers as f64 / independent_gathers.max(1) as f64;
        if ratio >= 0.6 {
            eprintln!(
                "FUSION REGRESSION in plan {name}: fused sweep performs {:.1}% of the \
                 independent gather ops (acceptance bar: < 60%)",
                ratio * 100.0
            );
            failed = true;
        }
        let speedup = independent_wall / fused_wall.max(1e-12);
        table.row(vec![
            (*name).to_owned(),
            n.to_string(),
            fused_gathers.to_string(),
            independent_gathers.to_string(),
            format!("{:.1}%", ratio * 100.0),
            fmt_millis(fused_wall),
            fmt_millis(independent_wall),
            format!("{speedup:.1}x"),
            format!("{rows_checked} identical"),
        ]);
        append_bench_json(&format!(
            "{{\"name\":\"sweep/fused-vs-independent/{name}\",\
             \"columns\":{n},\
             \"fused_gather_calls\":{fused_gathers},\
             \"independent_gather_calls\":{independent_gathers},\
             \"gather_ratio\":{ratio:.4},\
             \"fused_wall_seconds\":{fused_wall:.6},\
             \"independent_wall_seconds\":{independent_wall:.6},\
             \"speedup\":{speedup:.3},\
             \"fused_work_ops\":{},\
             \"rows_checked\":{rows_checked}}}",
            matrix.stats.total_work_ops(),
        ));
    }

    emit(&args, "sweep", &table);
    if failed {
        eprintln!("FAILED: fused plans diverged from standalone runs or missed the fusion bar");
        exit(1);
    }
    println!(
        "equivalence: every fused column bit-identical to its standalone run; \
         all plans under the 60% gather bar"
    );
}
